//! Fleet-level serving: N pipeline replicas behind a request router.
//!
//! [`crate::engine::ServingEngine`] answers what one pipeline replica does
//! under a request stream. Serving heavy traffic is a *fleet* question — how
//! many replicas, and how is the arrival stream spread across them? This
//! module simulates exactly that: a [`ClusterEngine`] owns one
//! [`PipelineSpec`] per replica (homogeneous or not), routes a shared
//! arrival stream across them with a [`RouterPolicy`], and merges the
//! per-replica runs into one [`FleetReport`].
//!
//! Routing is *state-aware*: every replica simulation is advanced to just
//! before each arrival instant (the engine's composable shared-clock form,
//! [`crate::engine`]), so policies like least-outstanding or
//! decode-fill-aware observe live queue depths and decode residency rather
//! than static splits. A one-replica fleet therefore reproduces
//! [`ServingEngine::run`](crate::engine::ServingEngine::run) *exactly* —
//! event order, timelines, and metrics (see
//! `tests/proptest_cluster.rs`).
//!
//! # Examples
//!
//! ```
//! use rago_serving_sim::cluster::ClusterEngine;
//! use rago_serving_sim::engine::{DecodeSpec, LatencyTable, PipelineSpec, StageSpec};
//! use rago_schema::{RouterPolicy, SloTarget};
//! use rago_schema::SequenceProfile;
//! use rago_workloads::{ArrivalProcess, TraceSpec};
//!
//! let spec = PipelineSpec::new(
//!     vec![StageSpec::new("prefix", 0, 8, LatencyTable::constant(8, 0.02))],
//!     DecodeSpec::new(32, LatencyTable::constant(32, 3e-3)),
//! );
//! let trace = TraceSpec {
//!     num_requests: 60,
//!     profile: SequenceProfile::paper_default().with_decode_tokens(16),
//!     arrival: ArrivalProcess::Poisson { rate_rps: 120.0 },
//!     length_jitter: 0.0,
//!     seed: 3,
//! }
//! .generate();
//! let fleet = ClusterEngine::homogeneous(spec, 2, RouterPolicy::LeastOutstanding)
//!     .run_trace(&trace);
//! assert_eq!(fleet.merged.metrics.completed, 60);
//! assert_eq!(fleet.per_replica.len(), 2);
//! let assigned: usize = fleet.per_replica.iter().map(|r| r.assigned).sum();
//! assert_eq!(assigned, 60);
//! assert!(fleet.attainment(&SloTarget::new(5.0, 1.0)) > 0.0);
//! ```

use crate::engine::{
    build_report, CacheProbe, EngineRequest, PipelineSpec, ReplicaSim, RequestTimeline,
    ServingReport, SimAccumulators,
};
use crate::equeue::EventQueueStats;
use crate::sink::{HistogramSink, MetricsMode, StreamingConfig};
use rago_schema::{RouterPolicy, SloTarget};
use rago_workloads::Trace;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One replica's slice of a fleet run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicaReport {
    /// Replica index within the fleet.
    pub replica: usize,
    /// Requests the router assigned to this replica.
    pub assigned: usize,
    /// The replica's own serving report (its timelines and metrics, computed
    /// exactly as a standalone engine run over the routed subset would).
    pub report: ServingReport,
}

/// How evenly the router spread requests across replicas.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadImbalance {
    /// Requests assigned to each replica, by replica index.
    pub assigned_per_replica: Vec<usize>,
    /// Smallest per-replica assignment.
    pub min_assigned: usize,
    /// Largest per-replica assignment.
    pub max_assigned: usize,
    /// Mean per-replica assignment.
    pub mean_assigned: f64,
    /// Coefficient of variation (population standard deviation over mean) of
    /// the per-replica assignments; zero for a perfectly even split or an
    /// empty run.
    pub coefficient_of_variation: f64,
    /// Largest assignment divided by the mean (1.0 for a perfectly even
    /// split; zero for an empty run).
    pub max_over_mean: f64,
}

impl LoadImbalance {
    pub(crate) fn from_counts(assigned: Vec<usize>) -> Self {
        let n = assigned.len().max(1) as f64;
        let total: usize = assigned.iter().sum();
        let mean = total as f64 / n;
        let min = assigned.iter().copied().min().unwrap_or(0);
        let max = assigned.iter().copied().max().unwrap_or(0);
        let variance = assigned
            .iter()
            .map(|&c| {
                let d = c as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        let (cv, max_over_mean) = if mean > 0.0 {
            (variance.sqrt() / mean, max as f64 / mean)
        } else {
            (0.0, 0.0)
        };
        Self {
            assigned_per_replica: assigned,
            min_assigned: min,
            max_assigned: max,
            mean_assigned: mean,
            coefficient_of_variation: cv,
            max_over_mean,
        }
    }
}

/// The merged result of one fleet run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// The fleet-level report: every request's timeline (merged across
    /// replicas in arrival order) and aggregate [`crate::ServingMetrics`]
    /// computed over the whole fleet — the same definitions a single-engine
    /// run uses, so fleet and replica numbers are directly comparable.
    pub merged: ServingReport,
    /// Per-replica breakdowns, by replica index.
    pub per_replica: Vec<ReplicaReport>,
    /// `(request id, replica index)` for every routed request, in arrival
    /// order.
    pub assignments: Vec<(u64, usize)>,
    /// Router load-balance statistics.
    pub imbalance: LoadImbalance,
    /// The routing policy that produced this run.
    pub router: RouterPolicy,
}

impl FleetReport {
    /// Fraction of all requests meeting both latency targets of `slo`.
    pub fn attainment(&self, slo: &SloTarget) -> f64 {
        self.merged.attainment(slo)
    }

    /// Fleet SLO goodput: requests meeting the latency targets divided by
    /// the fleet serving duration (first arrival to last completion).
    pub fn goodput_rps(&self, slo: &SloTarget) -> f64 {
        self.merged.goodput_rps(slo)
    }

    /// Whether the fleet meets `slo` including its attainment requirement.
    pub fn meets_slo(&self, slo: &SloTarget) -> bool {
        self.merged.meets_slo(slo)
    }
}

/// Observability state harvested from one drained replica: its cache-probe
/// log and event-queue counters, captured just before the simulation is
/// consumed. Zero-cost when tracing is off — probes are only collected
/// when the replica's `track_probes` flag was set.
#[derive(Debug, Clone, Default)]
pub(crate) struct ReplicaObs {
    pub(crate) replica: usize,
    pub(crate) probes: Vec<CacheProbe>,
    pub(crate) equeue: EventQueueStats,
}

/// A fleet of pipeline replicas behind a router. See the module docs.
#[derive(Debug, Clone)]
pub struct ClusterEngine {
    replicas: Vec<PipelineSpec>,
    router: RouterPolicy,
    parallel_advance: bool,
    telemetry: rago_telemetry::TelemetryConfig,
}

impl ClusterEngine {
    /// A fleet of `replicas` identical copies of `spec`.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    pub fn homogeneous(spec: PipelineSpec, replicas: usize, router: RouterPolicy) -> Self {
        assert!(replicas > 0, "a fleet needs at least one replica");
        Self {
            replicas: vec![spec; replicas],
            router,
            parallel_advance: false,
            telemetry: rago_telemetry::TelemetryConfig::disabled(),
        }
    }

    /// A fleet with one (possibly different) pipeline per replica — e.g.
    /// distinct schedules from a Pareto frontier serving side by side.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is empty.
    pub fn heterogeneous(replicas: Vec<PipelineSpec>, router: RouterPolicy) -> Self {
        assert!(!replicas.is_empty(), "a fleet needs at least one replica");
        Self {
            replicas,
            router,
            parallel_advance: false,
            telemetry: rago_telemetry::TelemetryConfig::disabled(),
        }
    }

    /// Sets the telemetry config used by [`Self::run_telemetry`] (and by
    /// [`Self::run_traced`] for its gauge cadence). The untraced run paths
    /// never consult it.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: rago_telemetry::TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Advances replicas in parallel between routing points (off by
    /// default). Each replica simulation is independent between arrivals,
    /// so the per-replica state after a parallel advance is identical to a
    /// serial advance regardless of thread interleaving — routing still
    /// inspects the replicas serially, and the resulting [`FleetReport`] is
    /// bit-identical to the serial run (the `scale_stress` bench asserts
    /// this on every run).
    #[must_use]
    pub fn with_parallel_advance(mut self, parallel: bool) -> Self {
        self.parallel_advance = parallel;
        self
    }

    /// Number of replicas in the fleet.
    pub fn num_replicas(&self) -> usize {
        self.replicas.len()
    }

    /// The routing policy.
    pub fn router(&self) -> RouterPolicy {
        self.router
    }

    /// Routes every request of a generated trace through the fleet.
    pub fn run_trace(&self, trace: &Trace) -> FleetReport {
        self.run(trace.requests.iter().map(EngineRequest::from).collect())
    }

    /// [`Self::run_trace`] with an explicit metrics pipeline.
    pub fn run_trace_with_mode(&self, trace: &Trace, mode: &MetricsMode) -> FleetReport {
        self.run_with_mode(
            trace.requests.iter().map(EngineRequest::from).collect(),
            mode,
        )
    }

    /// Runs the fleet over `requests` (sorted by arrival time internally)
    /// and returns the merged report.
    ///
    /// The run interleaves routing with simulation: before each arrival,
    /// every replica is advanced to just before that instant; the router
    /// then inspects live replica state and the request is injected into the
    /// chosen replica. After the last arrival the replicas drain to
    /// completion independently.
    ///
    /// # Panics
    ///
    /// Panics if any arrival time is negative or non-finite, or any request
    /// generates zero tokens.
    pub fn run(&self, requests: Vec<EngineRequest>) -> FleetReport {
        let (sims, assigned_counts, assignments) =
            self.route_all(requests, &mut rago_telemetry::NullRecorder);
        merge_finished_replicas(sims, assigned_counts, assignments, self.router).0
    }

    /// [`Self::run`] with an explicit metrics pipeline.
    ///
    /// In streaming mode the fleet report holds no timelines and no
    /// per-request assignment log — per-replica and merged metrics come
    /// from histogram sinks merged in replica-index order (deterministic,
    /// but the merged floating-point sums may differ in the last bits from
    /// the exact path's arrival-order accumulation).
    pub fn run_with_mode(&self, requests: Vec<EngineRequest>, mode: &MetricsMode) -> FleetReport {
        match mode {
            MetricsMode::Exact => self.run(requests),
            MetricsMode::Streaming(config) => {
                let (sims, assigned_counts, _) =
                    self.route_all(requests, &mut rago_telemetry::NullRecorder);
                merge_finished_replicas_streaming(sims, assigned_counts, self.router, config).0
            }
        }
    }

    /// [`Self::run_with_mode`] recording a trace into `rec`: router picks
    /// (with the chosen replica's load as the "why") live during routing,
    /// and per-replica request spans, cache probes, load gauges (at the
    /// [`Self::with_telemetry`] cadence) and self-profiling counters
    /// derived post-hoc in replica order. A
    /// [`rago_telemetry::NullRecorder`] makes this exactly
    /// [`Self::run_with_mode`].
    pub fn run_traced<R: rago_telemetry::Recorder>(
        &self,
        requests: Vec<EngineRequest>,
        mode: &MetricsMode,
        rec: &mut R,
    ) -> FleetReport {
        let (sims, assigned_counts, assignments) = self.route_all(requests, rec);
        let (report, obs) = match mode {
            MetricsMode::Exact => {
                merge_finished_replicas(sims, assigned_counts, assignments, self.router)
            }
            MetricsMode::Streaming(config) => {
                merge_finished_replicas_streaming(sims, assigned_counts, self.router, config)
            }
        };
        if R::ENABLED {
            record_fleet_observability(rec, &report, &obs, self.telemetry.gauge_cadence_s);
        }
        report
    }

    /// Convenience wrapper: [`Self::run_traced`] with a
    /// [`rago_telemetry::TraceRecorder`] built from the engine's
    /// [`Self::with_telemetry`] config.
    pub fn run_telemetry(
        &self,
        requests: Vec<EngineRequest>,
        mode: &MetricsMode,
    ) -> (FleetReport, rago_telemetry::TraceRecorder) {
        let mut rec = rago_telemetry::TraceRecorder::new(self.telemetry.clone());
        let report = self.run_traced(requests, mode, &mut rec);
        (report, rec)
    }

    /// The routing loop shared by every run mode: advances all replicas to
    /// each arrival (serially, or in parallel when
    /// [`Self::with_parallel_advance`] is set), routes, and injects. The
    /// recorder sees one decision event per pick; it never influences the
    /// pick.
    fn route_all<R: rago_telemetry::Recorder>(
        &self,
        mut requests: Vec<EngineRequest>,
        rec: &mut R,
    ) -> (Vec<ReplicaSim>, Vec<usize>, Vec<(u64, usize)>) {
        crate::engine::sort_by_arrival(&mut requests);
        let mut sims: Vec<ReplicaSim> = self
            .replicas
            .iter()
            .map(|spec| {
                let mut sim = ReplicaSim::new(spec.clone());
                sim.track_probes = R::ENABLED;
                sim
            })
            .collect();
        let mut assignments: Vec<(u64, usize)> = Vec::with_capacity(requests.len());
        let mut assigned_counts = vec![0usize; sims.len()];
        let mut round_robin_next = 0usize;
        for req in &requests {
            advance_all(&mut sims, |s| s, req.arrival_s, self.parallel_advance);
            let replica = route_pick(
                self.router,
                sims.len(),
                |i| &sims[i],
                |i| i,
                &mut round_robin_next,
                req,
            );
            if R::ENABLED {
                crate::telemetry::record_route_pick(
                    rec,
                    req.arrival_s,
                    self.router,
                    replica,
                    req,
                    &sims[replica],
                );
            }
            assignments.push((req.id, replica));
            assigned_counts[replica] += 1;
            sims[replica].inject(*req);
        }
        (sims, assigned_counts, assignments)
    }
}

/// Shared post-hoc derivation over a finished fleet: per-replica spans,
/// probes, gauges and profile counters, walked in replica-index order so
/// the event stream is deterministic on any worker count.
pub(crate) fn record_fleet_observability<R: rago_telemetry::Recorder>(
    rec: &mut R,
    report: &FleetReport,
    obs: &[ReplicaObs],
    gauge_cadence_s: f64,
) {
    if !R::ENABLED {
        return;
    }
    let end_s = report.merged.metrics.makespan_s;
    for rr in &report.per_replica {
        let track = rr.replica as u32;
        crate::telemetry::record_request_spans(rec, track, &rr.report.timelines);
        crate::telemetry::record_load_gauges(
            rec,
            track,
            &rr.report.timelines,
            gauge_cadence_s,
            end_s,
        );
    }
    let mut profile = rago_telemetry::SimProfile::default();
    for (i, ob) in obs.iter().enumerate() {
        crate::telemetry::record_cache_probes(rec, ob.replica as u32, &ob.probes);
        let events = report
            .per_replica
            .get(i)
            .map_or(0, |rr| rr.report.metrics.events_processed);
        profile.merge_from(&crate::telemetry::profile_from_stats(
            &ob.equeue, events, end_s,
        ));
    }
    profile.record_into(rec, end_s, rago_telemetry::FLEET_TRACK);
}

/// Advances every replica to just before `arrival_s`. The replicas share no
/// state between routing points, so the parallel form leaves each replica
/// bit-identical to the serial loop — shared by the fixed fleet and the
/// autoscaler (whose replicas live inside slot structs, hence the
/// accessor).
pub(crate) fn advance_all<T, F>(items: &mut [T], sim_of: F, arrival_s: f64, parallel: bool)
where
    T: Send,
    F: for<'a> Fn(&'a mut T) -> &'a mut ReplicaSim + Sync,
{
    if parallel && items.len() > 1 {
        items
            .iter_mut()
            .par_bridge()
            .fold(
                || (),
                |(), item| {
                    sim_of(item).advance_before(arrival_s);
                },
            )
            .reduce(|| (), |(), ()| ());
    } else {
        for item in items.iter_mut() {
            sim_of(item).advance_before(arrival_s);
        }
    }
}

/// Drains every replica simulation to completion and merges the runs into a
/// [`FleetReport`] — the shared tail of [`ClusterEngine::run`] and the
/// autoscaled run in [`crate::autoscaler`], so fixed and elastic fleets
/// report by one definition.
pub(crate) fn merge_finished_replicas(
    sims: Vec<ReplicaSim>,
    assigned_counts: Vec<usize>,
    assignments: Vec<(u64, usize)>,
    router: RouterPolicy,
) -> (FleetReport, Vec<ReplicaObs>) {
    // The drain is the expensive leg (each replica runs its remaining
    // events to completion with no further routing interaction), so it runs
    // in parallel and the results are re-ordered by replica index before
    // merging — every later step sees exactly the serial order, keeping the
    // report bit-identical to a serial drain.
    let drained = drain_replicas(sims);
    let mut per_replica = Vec::with_capacity(drained.len());
    let mut obs = Vec::with_capacity(drained.len());
    let mut merged_timelines = Vec::with_capacity(assignments.len());
    let mut merged_acc = SimAccumulators::default();
    for (replica, timelines, acc, ob) in drained {
        merged_timelines.extend(timelines.iter().cloned());
        merged_acc.merge_from(&acc);
        per_replica.push(ReplicaReport {
            replica,
            assigned: assigned_counts[replica],
            report: build_report(timelines, &acc),
        });
        obs.push(ob);
    }
    merged_timelines.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s).then(a.id.cmp(&b.id)));
    let report = FleetReport {
        merged: build_report(merged_timelines, &merged_acc),
        per_replica,
        assignments,
        imbalance: LoadImbalance::from_counts(assigned_counts),
        router,
    };
    (report, obs)
}

/// Runs every replica to completion and returns `(replica index, timelines,
/// accumulators, observability)` sorted by replica index — in parallel for
/// a multi-replica fleet, serially otherwise.
fn drain_replicas(
    sims: Vec<ReplicaSim>,
) -> Vec<(usize, Vec<RequestTimeline>, SimAccumulators, ReplicaObs)> {
    let drain = |(replica, mut sim): (usize, ReplicaSim)| {
        sim.run_to_completion();
        let ob = ReplicaObs {
            replica,
            probes: sim.drain_probe_log(),
            equeue: sim.equeue_stats(),
        };
        let (timelines, acc) = sim.finish();
        (replica, timelines, acc, ob)
    };
    let mut drained: Vec<_> = if sims.len() > 1 {
        sims.into_iter()
            .enumerate()
            .par_bridge()
            .fold(Vec::new, |mut acc, item| {
                acc.push(drain(item));
                acc
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            })
    } else {
        sims.into_iter().enumerate().map(drain).collect()
    };
    drained.sort_by_key(|(replica, ..)| *replica);
    drained
}

/// The streaming counterpart of [`merge_finished_replicas`]: each replica
/// drains into its own [`HistogramSink`], and the sinks merge in
/// replica-index order into the fleet report. `O(buckets)` retained state
/// per replica; no timelines, no assignment log.
pub(crate) fn merge_finished_replicas_streaming(
    sims: Vec<ReplicaSim>,
    assigned_counts: Vec<usize>,
    router: RouterPolicy,
    config: &StreamingConfig,
) -> (FleetReport, Vec<ReplicaObs>) {
    let drain = |(replica, mut sim): (usize, ReplicaSim)| {
        sim.run_to_completion();
        let ob = ReplicaObs {
            replica,
            probes: sim.drain_probe_log(),
            equeue: sim.equeue_stats(),
        };
        let mut sink = HistogramSink::new(config);
        sim.drain_outcomes(&mut sink);
        sink.acc = sim.into_accumulators();
        (replica, sink, ob)
    };
    let mut drained: Vec<(usize, HistogramSink, ReplicaObs)> = if sims.len() > 1 {
        sims.into_iter()
            .enumerate()
            .par_bridge()
            .fold(Vec::new, |mut acc, item| {
                acc.push(drain(item));
                acc
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            })
    } else {
        sims.into_iter().enumerate().map(drain).collect()
    };
    drained.sort_by_key(|(replica, ..)| *replica);
    let mut merged = HistogramSink::new(config);
    let mut per_replica = Vec::with_capacity(drained.len());
    let mut obs = Vec::with_capacity(drained.len());
    for (replica, sink, ob) in drained {
        merged.merge_from(&sink);
        per_replica.push(ReplicaReport {
            replica,
            assigned: assigned_counts[replica],
            report: sink.into_report(),
        });
        obs.push(ob);
    }
    let report = FleetReport {
        merged: merged.into_report(),
        per_replica,
        assignments: Vec::new(),
        imbalance: LoadImbalance::from_counts(assigned_counts),
        router,
    };
    (report, obs)
}

/// Picks the replica for the next arrival among the `len` candidates
/// exposed by `sim_at` (returned index is into that candidate order). Ties
/// break toward the lowest index, so routing is deterministic. The
/// accessor form lets the fixed fleet route straight over its replica
/// slice while [`crate::autoscaler`] routes over the currently-routable
/// subset of a changing fleet, with no per-arrival candidate allocation in
/// either. The request itself is consulted only by the content-aware
/// policies (`PrefixHash`, `CacheAffinity`), which hash over `slot_of` —
/// the candidate's *stable* replica slot id, not its position in the
/// candidate order — so a template's hash home does not shift every time
/// the autoscaler changes which replicas are routable.
pub(crate) fn route_pick<'a>(
    router: RouterPolicy,
    len: usize,
    sim_at: impl Fn(usize) -> &'a ReplicaSim,
    slot_of: impl Fn(usize) -> usize,
    round_robin_next: &mut usize,
    req: &EngineRequest,
) -> usize {
    match router {
        RouterPolicy::RoundRobin => {
            let r = *round_robin_next % len;
            *round_robin_next += 1;
            r
        }
        RouterPolicy::LeastOutstanding => argmin_by(len, &sim_at, |s| (s.outstanding(), 0usize)),
        RouterPolicy::JoinShortestQueue => {
            argmin_by(len, &sim_at, |s| (s.queued(), s.outstanding()))
        }
        RouterPolicy::DecodeFillAware => {
            // Lowest decode fill fraction first; least-outstanding breaks
            // fill ties (e.g. several empty replicas at warm-up).
            let mut best = 0usize;
            let mut best_key = (f64::INFINITY, usize::MAX);
            for i in 0..len {
                let sim = sim_at(i);
                let key = (sim.decode_fill_fraction(), sim.outstanding());
                if key.0 < best_key.0 || (key.0 == best_key.0 && key.1 < best_key.1) {
                    best = i;
                    best_key = key;
                }
            }
            best
        }
        RouterPolicy::PrefixHash => match req.identity {
            Some(identity) => hash_home(len, &slot_of, identity.prefix_id),
            None => argmin_by(len, &sim_at, |s| (s.outstanding(), 0usize)),
        },
        RouterPolicy::CacheAffinity => match req.identity {
            Some(identity) => {
                // Prefer the replica whose live prefix cache owns the
                // template (least outstanding among several owners); fall
                // back to the template's hash home so repeated misses of a
                // template build residency in one place instead of
                // scattering it.
                let mut owner: Option<(usize, usize)> = None;
                for i in 0..len {
                    let sim = sim_at(i);
                    if sim.owns_prefix(identity.prefix_id) {
                        let key = sim.outstanding();
                        if owner.map_or(true, |(_, best)| key < best) {
                            owner = Some((i, key));
                        }
                    }
                }
                match owner {
                    Some((i, _)) => i,
                    None => hash_home(len, &slot_of, identity.prefix_id),
                }
            }
            None => argmin_by(len, &sim_at, |s| (s.outstanding(), 0usize)),
        },
    }
}

/// The hash home of a template among the candidates: rendezvous
/// (highest-random-weight) hashing over each candidate's *stable* slot id.
/// Stable while the candidate set is unchanged, and minimally disruptive
/// when it changes — only templates homed on a removed replica move, and a
/// new replica steals only its own share. A plain `prefix_id % len` over
/// candidate *positions* would re-home almost every template at every
/// autoscaler scale event, scattering KV state across the fleet.
fn hash_home(len: usize, slot_of: impl Fn(usize) -> usize, prefix_id: u64) -> usize {
    let mut best = 0usize;
    let mut best_weight = 0u64;
    for i in 0..len {
        let weight = mix64((slot_of(i) as u64) ^ prefix_id.rotate_left(32));
        if i == 0 || weight > best_weight {
            best = i;
            best_weight = weight;
        }
    }
    best
}

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit hash for rendezvous
/// weights.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Index of the candidate minimizing `key`, first occurrence on ties.
fn argmin_by<'a>(
    len: usize,
    sim_at: impl Fn(usize) -> &'a ReplicaSim,
    key: impl Fn(&ReplicaSim) -> (usize, usize),
) -> usize {
    let mut best = 0usize;
    let mut best_key = (usize::MAX, usize::MAX);
    for i in 0..len {
        let k = key(sim_at(i));
        if k < best_key {
            best = i;
            best_key = k;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{DecodeSpec, IterativeSpec, LatencyTable, ServingEngine, StageSpec};
    use rago_schema::SequenceProfile;
    use rago_workloads::{ArrivalProcess, TraceSpec};

    fn one_stage_spec(
        stage_latency: f64,
        batch: u32,
        decode_step: f64,
        decode_batch: u32,
    ) -> PipelineSpec {
        PipelineSpec::new(
            vec![StageSpec::new(
                "prefix",
                0,
                batch,
                LatencyTable::constant(batch, stage_latency),
            )],
            DecodeSpec::new(
                decode_batch,
                LatencyTable::constant(decode_batch, decode_step),
            ),
        )
    }

    fn req(id: u64, arrival: f64, tokens: u32) -> EngineRequest {
        EngineRequest {
            id,
            arrival_s: arrival,
            prefix_tokens: 0,
            decode_tokens: tokens,
            class: 0,
            identity: None,
        }
    }

    #[test]
    fn round_robin_cycles_through_replicas() {
        let fleet = ClusterEngine::homogeneous(
            one_stage_spec(0.1, 1, 0.01, 4),
            2,
            RouterPolicy::RoundRobin,
        );
        let report = fleet.run((0..4).map(|i| req(i, 0.0, 1)).collect());
        let replicas: Vec<usize> = report.assignments.iter().map(|&(_, r)| r).collect();
        assert_eq!(replicas, vec![0, 1, 0, 1]);
        assert_eq!(report.imbalance.max_over_mean, 1.0);
        assert_eq!(report.imbalance.coefficient_of_variation, 0.0);
    }

    #[test]
    fn least_outstanding_avoids_the_busy_replica() {
        // Request 0 occupies replica 0 for a long time; the two later
        // arrivals must both land on replica 1 (0 still has 1 outstanding).
        let fleet = ClusterEngine::homogeneous(
            one_stage_spec(0.01, 4, 0.1, 4),
            2,
            RouterPolicy::LeastOutstanding,
        );
        let report = fleet.run(vec![req(0, 0.0, 100), req(1, 0.5, 1), req(2, 0.7, 1)]);
        let replicas: Vec<usize> = report.assignments.iter().map(|&(_, r)| r).collect();
        assert_eq!(replicas[0], 0);
        assert_eq!(replicas[1], 1);
        // Request 2 arrives at 0.7, when request 1 has already drained on
        // replica 1 (prefix ends 0.51, its one decode step ends 0.61) while
        // request 0 still decodes on replica 0 — so replica 1 wins again.
        assert_eq!(replicas[2], 1);
    }

    #[test]
    fn join_shortest_queue_tracks_queued_not_in_service() {
        // Replica 0 gets a request that decodes for a long time but queues
        // nothing; JSQ sees zero queue on both and ties to replica 0 again,
        // whereas least-outstanding would move on.
        let fleet = ClusterEngine::homogeneous(
            one_stage_spec(0.01, 4, 0.1, 4),
            2,
            RouterPolicy::JoinShortestQueue,
        );
        let report = fleet.run(vec![req(0, 0.0, 100), req(1, 0.5, 1)]);
        let replicas: Vec<usize> = report.assignments.iter().map(|&(_, r)| r).collect();
        // Queue empty on both (request 0 is *in service*), so the
        // least-outstanding tiebreak sends request 1 to replica 1.
        assert_eq!(replicas, vec![0, 1]);
    }

    #[test]
    fn decode_fill_aware_balances_decode_residency() {
        // No pre-decode stages: arrivals go straight to decode. The first
        // long request fills replica 0's decode batch; the policy routes the
        // next arrival to the emptier replica 1.
        let spec = PipelineSpec::new(
            Vec::new(),
            DecodeSpec::new(2, LatencyTable::constant(2, 0.05)),
        );
        let fleet = ClusterEngine::homogeneous(spec, 2, RouterPolicy::DecodeFillAware);
        let report = fleet.run(vec![req(0, 0.0, 50), req(1, 0.5, 50), req(2, 1.0, 1)]);
        let replicas: Vec<usize> = report.assignments.iter().map(|&(_, r)| r).collect();
        assert_eq!(replicas[0], 0);
        assert_eq!(replicas[1], 1);
        // Both replicas now hold one resident sequence (fill 0.5 each);
        // the least-outstanding tiebreak is also tied, so index order wins.
        assert_eq!(replicas[2], 0);
    }

    #[test]
    fn single_replica_fleet_matches_the_engine_exactly() {
        let spec = one_stage_spec(0.02, 4, 2e-3, 16);
        let trace = TraceSpec {
            num_requests: 64,
            profile: SequenceProfile::paper_default().with_decode_tokens(32),
            arrival: ArrivalProcess::Poisson { rate_rps: 100.0 },
            length_jitter: 0.2,
            seed: 3,
        }
        .generate();
        let engine = ServingEngine::from_trace(spec.clone(), &trace).run();
        for policy in RouterPolicy::ALL {
            let fleet = ClusterEngine::homogeneous(spec.clone(), 1, policy).run_trace(&trace);
            assert_eq!(fleet.merged, engine, "policy {policy} diverged");
            assert_eq!(fleet.per_replica[0].report, engine);
        }
    }

    #[test]
    fn single_replica_fleet_matches_the_engine_with_iterative_retrieval() {
        let spec = one_stage_spec(0.02, 4, 2e-3, 16).with_iterative(IterativeSpec {
            retrievals_per_sequence: 2,
            iterative_batch: 4,
            retrieval_prefix_latency_s: 0.03,
            seed: 5,
        });
        let trace = TraceSpec {
            num_requests: 48,
            profile: SequenceProfile::paper_default().with_decode_tokens(32),
            arrival: ArrivalProcess::Poisson { rate_rps: 80.0 },
            length_jitter: 0.2,
            seed: 9,
        }
        .generate();
        let engine = ServingEngine::from_trace(spec.clone(), &trace).run();
        let fleet =
            ClusterEngine::homogeneous(spec, 1, RouterPolicy::LeastOutstanding).run_trace(&trace);
        assert_eq!(fleet.merged, engine);
    }

    #[test]
    fn two_replicas_outperform_one_under_load() {
        let spec = one_stage_spec(0.05, 2, 5e-3, 8);
        let trace = TraceSpec {
            num_requests: 120,
            profile: SequenceProfile::paper_default().with_decode_tokens(24),
            arrival: ArrivalProcess::Poisson { rate_rps: 60.0 },
            length_jitter: 0.0,
            seed: 11,
        }
        .generate();
        let slo = SloTarget::new(0.5, 0.02);
        let one = ClusterEngine::homogeneous(spec.clone(), 1, RouterPolicy::LeastOutstanding)
            .run_trace(&trace);
        let two =
            ClusterEngine::homogeneous(spec, 2, RouterPolicy::LeastOutstanding).run_trace(&trace);
        assert!(two.attainment(&slo) > one.attainment(&slo));
        assert!(two.merged.metrics.ttft.p95_s < one.merged.metrics.ttft.p95_s);
    }

    #[test]
    fn heterogeneous_fleet_shifts_load_to_the_faster_replica() {
        // Replica 0 is 4x slower at the prefix stage; least-outstanding
        // should route more requests to replica 1.
        let slow = one_stage_spec(0.4, 1, 1e-3, 8);
        let fast = one_stage_spec(0.1, 1, 1e-3, 8);
        let fleet = ClusterEngine::heterogeneous(vec![slow, fast], RouterPolicy::LeastOutstanding);
        let trace = TraceSpec {
            num_requests: 80,
            profile: SequenceProfile::paper_default().with_decode_tokens(4),
            arrival: ArrivalProcess::Poisson { rate_rps: 8.0 },
            length_jitter: 0.0,
            seed: 2,
        }
        .generate();
        let report = fleet.run_trace(&trace);
        assert!(
            report.per_replica[1].assigned > report.per_replica[0].assigned,
            "fast replica got {} vs slow {}",
            report.per_replica[1].assigned,
            report.per_replica[0].assigned
        );
        assert!(report.imbalance.max_over_mean > 1.0);
        assert!(report.imbalance.coefficient_of_variation > 0.0);
    }

    #[test]
    fn fleet_metrics_merge_consistently() {
        let spec = one_stage_spec(0.03, 4, 2e-3, 8);
        let trace = TraceSpec {
            num_requests: 90,
            profile: SequenceProfile::paper_default().with_decode_tokens(16),
            arrival: ArrivalProcess::Poisson { rate_rps: 70.0 },
            length_jitter: 0.1,
            seed: 13,
        }
        .generate();
        let fleet = ClusterEngine::homogeneous(spec, 3, RouterPolicy::RoundRobin).run_trace(&trace);
        // Conservation: every request appears exactly once across replicas.
        let per_replica_total: usize = fleet
            .per_replica
            .iter()
            .map(|r| r.report.timelines.len())
            .sum();
        assert_eq!(per_replica_total, 90);
        assert_eq!(fleet.merged.timelines.len(), 90);
        assert_eq!(fleet.assignments.len(), 90);
        // The merged serving window spans the replicas'.
        let makespan = fleet
            .per_replica
            .iter()
            .map(|r| r.report.metrics.makespan_s)
            .fold(0.0f64, f64::max);
        assert!((fleet.merged.metrics.makespan_s - makespan).abs() < 1e-12);
        // Imbalance counts match the reports.
        for r in &fleet.per_replica {
            assert_eq!(r.assigned, fleet.imbalance.assigned_per_replica[r.replica]);
            assert_eq!(r.assigned, r.report.timelines.len());
        }
        // Fleet runs are deterministic.
        let spec = one_stage_spec(0.03, 4, 2e-3, 8);
        let again = ClusterEngine::homogeneous(spec, 3, RouterPolicy::RoundRobin).run_trace(&trace);
        assert_eq!(again, fleet);
    }

    /// Regression for the content-aware routers under autoscaling: the
    /// hash home keys on *stable slot ids* via rendezvous hashing, so a
    /// template whose home replica survives a membership change keeps that
    /// home, and an added replica steals only its own share. The original
    /// `prefix_id % len` over candidate positions re-homed almost every
    /// template at every scale event.
    #[test]
    fn hash_home_is_stable_under_membership_changes() {
        // Removing slot 0 (a scale-in): every template whose home was slot
        // 1 or 2 must keep it.
        for id in 0..200u64 {
            let full = hash_home(3, |i| i, id);
            let reduced_slot = hash_home(2, |i| i + 1, id) + 1;
            if full != 0 {
                assert_eq!(
                    reduced_slot, full,
                    "template {id} re-homed although its home replica survived"
                );
            }
        }
        // Adding slot 3 (a scale-out): only the templates the new replica
        // steals move — and they all move *to* it.
        let mut moved = 0;
        for id in 0..200u64 {
            let before = hash_home(3, |i| i, id);
            let after = hash_home(4, |i| i, id);
            if after != before {
                assert_eq!(after, 3, "template {id} moved to a non-new replica");
                moved += 1;
            }
        }
        assert!(
            moved > 10 && moved < 120,
            "expected roughly a quarter of 200 templates to move, got {moved}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replica_fleets_are_rejected() {
        let _ = ClusterEngine::homogeneous(
            one_stage_spec(0.1, 1, 0.01, 1),
            0,
            RouterPolicy::RoundRobin,
        );
    }
}
