//! Fault injection, SLO-aware admission control, and plan-driven scaling.
//!
//! The fleet engines in [`crate::cluster`] and [`crate::autoscaler`] assume
//! replicas never fail. Real fleets lose replicas mid-peak — crashes, slow
//! nodes, spot preemptions — and the serving literature the roadmap tracks
//! (DistServe's SLO-attained goodput, Splitwise's provisioning headroom)
//! presumes the fleet degrades *proportionally* when that happens. This
//! module makes that claim testable:
//!
//! * **[`FaultSchedule`]** — a deterministic list of [`FaultEvent`]s
//!   (explicit or seeded): replica crashes (in-flight requests re-queued or
//!   failed per [`CrashPolicy`], restart after a configurable delay with
//!   **cold caches**), straggler onset/recovery (all stage and decode
//!   latencies scaled by a factor), and spot preemption with advance notice
//!   (the replica drains during the notice window, then dies).
//! * **[`AdmissionConfig`]** — fleet-level load shedding with per-class
//!   priorities: when the mean queue depth per routable replica exceeds a
//!   class's threshold, the arrival is shed instead of routed. Higher
//!   priority ⇒ higher threshold ⇒ shed later, so best-effort traffic
//!   absorbs the degradation. Shed counts are threaded into the merged
//!   [`crate::ServingMetrics::shed`] and the per-class rows.
//! * **[`ScaleDriver`]** — how capacity follows the trace: a fixed fleet, the
//!   reactive [`AutoscalerPolicy`], or a **predictive** [`ScalingPlan`]
//!   (e.g. derived from `plan_capacity_profile`'s rate-profile schedule in
//!   `rago-core`) that provisions capacity *before* the load arrives.
//! * **[`ChaosReport`]** — the ordinary fleet report plus a [`FaultReport`]
//!   (requests lost/shed/retried, disruption log) and recovery metrics:
//!   windowed attainment timelines, time-to-reattainment, and goodput-dip
//!   area per disruption.
//!
//! Fault events ride a dedicated lane of the event queue
//! (`crate::equeue`) that orders **before** same-instant arrivals and
//! scheduled completions, so a fault landing exactly at an arrival instant
//! is in force before that request is processed — the tie-break is pinned
//! by `tests/golden/fault_*.json`.
//!
//! With an empty schedule, no admission control, and the reactive driver,
//! [`ChaosEngine`] is **bit-identical** to [`crate::AutoscaleEngine`] (and
//! with a static driver, to [`crate::ClusterEngine`]) — the degenerate pins
//! in `tests/golden_regression.rs` hold this exact.
//!
//! # Examples
//!
//! Crash one replica of a three-replica fleet mid-trace and inspect the
//! recovery:
//!
//! ```
//! use rago_serving_sim::faults::{ChaosEngine, FaultEvent, FaultSchedule, ScaleDriver};
//! use rago_serving_sim::engine::{DecodeSpec, LatencyTable, PipelineSpec, StageSpec};
//! use rago_schema::{RouterPolicy, SloTarget};
//! use rago_schema::SequenceProfile;
//! use rago_workloads::{ArrivalProcess, TraceSpec};
//!
//! let spec = PipelineSpec::new(
//!     vec![StageSpec::new("prefix", 0, 4, LatencyTable::constant(4, 0.02))],
//!     DecodeSpec::new(16, LatencyTable::constant(16, 2e-3)),
//! );
//! let trace = TraceSpec {
//!     num_requests: 120,
//!     profile: SequenceProfile::paper_default().with_decode_tokens(16),
//!     arrival: ArrivalProcess::Poisson { rate_rps: 40.0 },
//!     length_jitter: 0.0,
//!     seed: 7,
//! }
//! .generate();
//! let faults = FaultSchedule::new(vec![FaultEvent::Crash {
//!     replica: 0,
//!     at_s: 1.0,
//!     restart_delay_s: 0.5,
//! }]);
//! let report = ChaosEngine::new(spec, RouterPolicy::LeastOutstanding,
//!     ScaleDriver::Static { replicas: 3 })
//!     .with_faults(faults)
//!     .run_trace(&trace);
//! // Every injected request is accounted for exactly once.
//! assert_eq!(report.fault.injected, 120);
//! assert_eq!(
//!     report.fault.completed + report.fault.shed + report.fault.failed,
//!     120,
//! );
//! assert_eq!(report.fault.disruptions.len(), 1);
//! let slo = SloTarget::new(5.0, 1.0);
//! assert!(report.offered_attainment(&slo) > 0.0);
//! ```

use crate::autoscaler::{AutoscalerPolicy, ReplicaLifetime, ScalingAction, ScalingEvent};
use crate::cluster::{advance_all, route_pick, FleetReport, LoadImbalance, ReplicaReport};
use crate::engine::{
    build_report, compute_metrics_for, sort_by_arrival, ClassMetrics, EngineRequest, PipelineSpec,
    ReplicaSim, RequestTimeline, SimAccumulators,
};
use rago_schema::{RouterPolicy, SloTarget};
use rago_workloads::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// One injected fault. Replica indices refer to fleet slots in provisioning
/// order: the initial fleet is `0..initial`, and every later provisioning
/// (scale-out, plan step, restart) appends the next index. A fault whose
/// target slot does not exist — or is already dead — at the fault instant
/// is skipped (counted in [`FaultReport::faults_skipped`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// The replica dies instantly at `at_s`: its caches and queued work are
    /// lost, in-flight requests are re-queued or failed per [`CrashPolicy`],
    /// and — unless `restart_delay_s` is infinite — a **cold** replacement
    /// replica is provisioned `restart_delay_s` later, taking the same
    /// warm-up path as a scale-out.
    Crash {
        /// Target fleet slot.
        replica: usize,
        /// Crash instant, in seconds.
        at_s: f64,
        /// Delay until the cold replacement is provisioned;
        /// `f64::INFINITY` means the replica never restarts.
        restart_delay_s: f64,
    },
    /// The replica degrades at `at_s`: every stage and decode latency is
    /// multiplied by `slowdown` until a matching [`FaultEvent::StragglerEnd`].
    StragglerStart {
        /// Target fleet slot.
        replica: usize,
        /// Onset instant, in seconds.
        at_s: f64,
        /// Latency multiplier (finite, `> 0`; `> 1` slows the replica down).
        slowdown: f64,
    },
    /// The replica recovers to full speed at `at_s`.
    StragglerEnd {
        /// Target fleet slot.
        replica: usize,
        /// Recovery instant, in seconds.
        at_s: f64,
    },
    /// Spot preemption with advance notice: at `at_s` the replica stops
    /// taking new traffic and drains; `notice_s` later it dies, and whatever
    /// is still in flight is re-queued or failed per [`CrashPolicy`]. A
    /// preempted replica never restarts.
    Preempt {
        /// Target fleet slot.
        replica: usize,
        /// Notice instant, in seconds.
        at_s: f64,
        /// Drain window between the notice and the kill, in seconds.
        notice_s: f64,
    },
}

impl FaultEvent {
    /// The fault's injection instant.
    pub fn at_s(&self) -> f64 {
        match *self {
            FaultEvent::Crash { at_s, .. }
            | FaultEvent::StragglerStart { at_s, .. }
            | FaultEvent::StragglerEnd { at_s, .. }
            | FaultEvent::Preempt { at_s, .. } => at_s,
        }
    }

    /// The targeted fleet slot.
    pub fn replica(&self) -> usize {
        match *self {
            FaultEvent::Crash { replica, .. }
            | FaultEvent::StragglerStart { replica, .. }
            | FaultEvent::StragglerEnd { replica, .. }
            | FaultEvent::Preempt { replica, .. } => replica,
        }
    }

    fn assert_valid(&self) {
        let at = self.at_s();
        assert!(
            at.is_finite() && at >= 0.0,
            "fault times must be finite and non-negative"
        );
        match *self {
            FaultEvent::Crash {
                restart_delay_s, ..
            } => assert!(
                restart_delay_s >= 0.0 && !restart_delay_s.is_nan(),
                "restart delays must be non-negative (infinity = never)"
            ),
            FaultEvent::StragglerStart { slowdown, .. } => assert!(
                slowdown.is_finite() && slowdown > 0.0,
                "straggler slowdown factors must be finite and positive"
            ),
            FaultEvent::StragglerEnd { .. } => {}
            FaultEvent::Preempt { notice_s, .. } => assert!(
                notice_s.is_finite() && notice_s >= 0.0,
                "preemption notice must be finite and non-negative"
            ),
        }
    }
}

/// A deterministic fault injection schedule: an explicit event list or a
/// seeded crash process. Events are stably sorted by time, so same-instant
/// events keep their list order — the replay is exactly reproducible and
/// golden-pinnable.
///
/// # Examples
///
/// ```
/// use rago_serving_sim::faults::{FaultEvent, FaultSchedule};
///
/// // Explicit: replica 1 straggles at 4x between t=2 and t=5.
/// let schedule = FaultSchedule::new(vec![
///     FaultEvent::StragglerEnd { replica: 1, at_s: 5.0 },
///     FaultEvent::StragglerStart { replica: 1, at_s: 2.0, slowdown: 4.0 },
/// ]);
/// assert_eq!(schedule.len(), 2);
/// assert_eq!(schedule.events()[0].at_s(), 2.0); // sorted by time
///
/// // Seeded: exponential crash inter-arrivals, reproducible per seed.
/// let a = FaultSchedule::seeded(13, 4, 20.0, 60.0, 5.0);
/// let b = FaultSchedule::seeded(13, 4, 20.0, 60.0, 5.0);
/// assert_eq!(a, b);
/// assert!(!a.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// A schedule of the given events, stably sorted by fault time.
    ///
    /// # Panics
    ///
    /// Panics if any event is malformed (negative or non-finite time,
    /// non-positive slowdown, negative notice or restart delay).
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        for e in &events {
            e.assert_valid();
        }
        events.sort_by(|a, b| a.at_s().total_cmp(&b.at_s()));
        Self { events }
    }

    /// The empty schedule: no faults are ever injected, and the run is
    /// bit-identical to the fault-free engines.
    pub fn empty() -> Self {
        Self::default()
    }

    /// A seeded crash process over `replicas` fleet slots: crash
    /// inter-arrival times are exponential with mean `mtbf_s` (mean time
    /// between failures), targets are uniform over the slots, and every
    /// crash restarts after `restart_delay_s`. Generation stops at
    /// `horizon_s`. Identical seeds produce identical schedules.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero or `mtbf_s`/`horizon_s` are not
    /// positive and finite.
    pub fn seeded(
        seed: u64,
        replicas: usize,
        mtbf_s: f64,
        horizon_s: f64,
        restart_delay_s: f64,
    ) -> Self {
        assert!(replicas > 0, "a seeded schedule needs at least one replica");
        assert!(
            mtbf_s.is_finite() && mtbf_s > 0.0,
            "the mean time between failures must be positive and finite"
        );
        assert!(
            horizon_s.is_finite() && horizon_s > 0.0,
            "the schedule horizon must be positive and finite"
        );
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA17_5EED);
        let mut events = Vec::new();
        let mut t = 0.0f64;
        loop {
            let u: f64 = rng.gen();
            t += -mtbf_s * (1.0 - u).ln();
            if t > horizon_s {
                break;
            }
            let replica = rng.gen_range(0..replicas);
            events.push(FaultEvent::Crash {
                replica,
                at_s: t,
                restart_delay_s,
            });
        }
        Self::new(events)
    }

    /// The events, ascending by fault time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// What happens to a dying replica's in-flight requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CrashPolicy {
    /// Re-queue them into the surviving fleet at the crash instant (their
    /// original arrival times are kept, so TTFT includes the lost time).
    /// Re-queued requests bypass admission control — they were admitted
    /// once. If no replica is routable they wait for the next one.
    #[default]
    Requeue,
    /// Fail them outright; they count in [`FaultReport::failed`].
    Fail,
}

/// Fleet-level, priority-aware admission control. At each arrival the
/// engine measures the mean queue depth per routable replica; the arrival
/// is **shed** when that depth exceeds its class's threshold
///
/// ```text
/// threshold(class) = shed_queue_depth + depth_per_priority × priority(class)
/// ```
///
/// so a higher-priority class tolerates a deeper backlog before shedding —
/// the shed decision is monotone in priority by construction
/// (`tests/proptest_faults.rs` holds this under arbitrary load).
///
/// # Examples
///
/// ```
/// use rago_serving_sim::faults::AdmissionConfig;
///
/// // Shed best-effort traffic above 2 queued per replica; each priority
/// // level buys 4 more.
/// let admission = AdmissionConfig::new(2.0, 4.0)
///     .with_class_priority(1, 2); // class 1 is high priority
/// assert_eq!(admission.priority_of(0), 0);
/// assert_eq!(admission.priority_of(1), 2);
/// assert_eq!(admission.threshold_for(0), 2.0);
/// assert_eq!(admission.threshold_for(2), 10.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Mean queued requests per routable replica above which priority-0
    /// (best-effort) traffic is shed.
    pub shed_queue_depth: f64,
    /// Additional queue depth each priority level tolerates before
    /// shedding.
    pub depth_per_priority: f64,
    /// Priority per workload class, indexed by class id; classes beyond the
    /// table are priority 0. Matches
    /// `rago_workloads::RequestClass::priority` when built from a mix.
    pub class_priorities: Vec<u32>,
}

impl AdmissionConfig {
    /// An admission policy with the given base threshold and per-priority
    /// headroom; every class starts at priority 0.
    ///
    /// # Panics
    ///
    /// Panics if either threshold is negative or non-finite.
    pub fn new(shed_queue_depth: f64, depth_per_priority: f64) -> Self {
        assert!(
            shed_queue_depth.is_finite() && shed_queue_depth >= 0.0,
            "the shed queue depth must be non-negative and finite"
        );
        assert!(
            depth_per_priority.is_finite() && depth_per_priority >= 0.0,
            "the per-priority depth must be non-negative and finite"
        );
        Self {
            shed_queue_depth,
            depth_per_priority,
            class_priorities: Vec::new(),
        }
    }

    /// Sets one class's priority (growing the table as needed).
    #[must_use]
    pub fn with_class_priority(mut self, class: u32, priority: u32) -> Self {
        let idx = class as usize;
        if self.class_priorities.len() <= idx {
            self.class_priorities.resize(idx + 1, 0);
        }
        self.class_priorities[idx] = priority;
        self
    }

    /// The priority of `class` (0 for classes beyond the table).
    pub fn priority_of(&self, class: u32) -> u32 {
        self.class_priorities
            .get(class as usize)
            .copied()
            .unwrap_or(0)
    }

    /// The mean-queue-depth threshold above which priority `priority`
    /// traffic is shed.
    pub fn threshold_for(&self, priority: u32) -> f64 {
        self.shed_queue_depth + self.depth_per_priority * f64::from(priority)
    }
}

/// One shed arrival.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShedEvent {
    /// When the arrival was shed, in seconds.
    pub time_s: f64,
    /// The request id.
    pub id: u64,
    /// The request's workload class.
    pub class: u32,
    /// The class's priority at the time.
    pub priority: u32,
    /// The observed mean queue depth per routable replica.
    pub mean_queue_depth: f64,
}

/// One step of a [`ScalingPlan`]: from `at_s` on, the fleet targets
/// `replicas` provisioned replicas.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlanStep {
    /// When the step takes effect, in seconds.
    pub at_s: f64,
    /// The provisioned-replica target from then on (at least 1).
    pub replicas: u32,
}

/// A feed-forward capacity schedule: the fleet starts at `initial` replicas
/// and re-targets at each step, provisioning *ahead* of predicted load
/// instead of reacting to queue build-up. `rago-core` derives one from
/// `plan_capacity_profile`'s per-window replica counts.
///
/// # Examples
///
/// ```
/// use rago_serving_sim::faults::{PlanStep, ScalingPlan};
///
/// let plan = ScalingPlan::new(1, vec![
///     PlanStep { at_s: 4.0, replicas: 3 },
///     PlanStep { at_s: 10.0, replicas: 1 },
/// ]);
/// assert_eq!(plan.target_at(0.0), 1);
/// assert_eq!(plan.target_at(4.0), 3);
/// assert_eq!(plan.target_at(11.0), 1);
/// // A flat plan is a static fleet.
/// assert_eq!(ScalingPlan::flat(2).target_at(123.0), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingPlan {
    /// Replicas provisioned at the start of the run (at least 1).
    pub initial: u32,
    /// Re-target steps, strictly increasing in time.
    pub steps: Vec<PlanStep>,
}

impl ScalingPlan {
    /// A plan with the given initial size and steps.
    ///
    /// # Panics
    ///
    /// Panics if `initial` or any step target is zero, any step time is
    /// negative or non-finite, or step times are not strictly increasing.
    pub fn new(initial: u32, steps: Vec<PlanStep>) -> Self {
        assert!(initial >= 1, "a plan must start with at least one replica");
        for step in &steps {
            assert!(
                step.at_s.is_finite() && step.at_s >= 0.0,
                "plan step times must be finite and non-negative"
            );
            assert!(step.replicas >= 1, "plan targets must be at least 1");
        }
        assert!(
            steps.windows(2).all(|w| w[0].at_s < w[1].at_s),
            "plan step times must be strictly increasing"
        );
        Self { initial, steps }
    }

    /// A constant plan: `replicas` for the whole run. A predictive driver
    /// with a flat plan is bit-identical to a static fleet of the same
    /// size (`tests/proptest_faults.rs`).
    pub fn flat(replicas: u32) -> Self {
        Self::new(replicas, Vec::new())
    }

    /// The provisioned-replica target in force at time `t`.
    pub fn target_at(&self, t: f64) -> u32 {
        let mut target = self.initial;
        for step in &self.steps {
            if step.at_s <= t {
                target = step.replicas;
            } else {
                break;
            }
        }
        target
    }
}

/// The predictive autoscaler: a [`ScalingPlan`] plus the warm-up delay each
/// newly provisioned replica pays before taking traffic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictivePolicy {
    /// The capacity schedule to feed forward.
    pub plan: ScalingPlan,
    /// Seconds a newly provisioned replica warms up before it is routable.
    pub warmup_s: f64,
}

impl PredictivePolicy {
    /// A predictive policy over `plan` with the given warm-up.
    ///
    /// # Panics
    ///
    /// Panics if the warm-up is negative or non-finite.
    pub fn new(plan: ScalingPlan, warmup_s: f64) -> Self {
        assert!(
            warmup_s.is_finite() && warmup_s >= 0.0,
            "the warm-up delay must be non-negative and finite"
        );
        Self { plan, warmup_s }
    }
}

/// How the chaos engine sizes the fleet while the trace plays.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScaleDriver {
    /// A fixed fleet (no ticks, no scaling; restarts are immediate since a
    /// static fleet has no warm-up concept).
    Static {
        /// Fleet size (at least 1).
        replicas: u32,
    },
    /// The reactive policy of [`crate::AutoscaleEngine`], evaluated at its
    /// interval — with an empty fault schedule and no admission control the
    /// run is bit-identical to that engine.
    Reactive(AutoscalerPolicy),
    /// A feed-forward [`ScalingPlan`]: capacity changes at the plan's step
    /// times regardless of observed load.
    Predictive(PredictivePolicy),
}

impl ScaleDriver {
    fn assert_valid(&self) {
        match self {
            ScaleDriver::Static { replicas } => {
                assert!(*replicas >= 1, "a static fleet needs at least one replica");
            }
            ScaleDriver::Reactive(policy) => policy.assert_valid(),
            ScaleDriver::Predictive(_) => {} // validated at construction
        }
    }

    fn initial_replicas(&self) -> u32 {
        match self {
            ScaleDriver::Static { replicas } => *replicas,
            ScaleDriver::Reactive(policy) => policy.min_replicas,
            ScaleDriver::Predictive(p) => p.plan.initial,
        }
    }

    /// The warm-up a provisioned replica pays — scale-out and restart take
    /// the same path.
    fn warmup_s(&self) -> f64 {
        match self {
            ScaleDriver::Static { .. } => 0.0,
            ScaleDriver::Reactive(policy) => policy.warmup_s,
            ScaleDriver::Predictive(p) => p.warmup_s,
        }
    }

    fn track_completions(&self) -> bool {
        matches!(self, ScaleDriver::Reactive(p) if p.attainment_trigger.is_some())
    }
}

/// The kind of one capacity disruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A crash (instant death).
    Crash,
    /// A spot preemption (death after the notice window).
    Preemption,
}

/// One capacity loss, as recorded for recovery analysis. Preemptions are
/// logged at the *notice* instant — capacity stops there even though the
/// replica drains on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Disruption {
    /// When the fleet lost the capacity, in seconds.
    pub time_s: f64,
    /// The fleet slot that died.
    pub replica: usize,
    /// Crash or preemption.
    pub kind: FaultKind,
}

/// One class's shed count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassShed {
    /// The workload class.
    pub class: u32,
    /// Arrivals of this class shed by admission control.
    pub shed: usize,
}

/// Fault-path accounting of one chaos run. Request conservation holds
/// exactly: `injected == completed + shed + failed`
/// (`tests/proptest_faults.rs`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultReport {
    /// Requests offered to the fleet.
    pub injected: usize,
    /// Requests that finished generation.
    pub completed: usize,
    /// Requests shed by admission control.
    pub shed: usize,
    /// Requests lost to crashes/preemptions under [`CrashPolicy::Fail`],
    /// plus requests still waiting for a routable replica when the run
    /// ended.
    pub failed: usize,
    /// Re-queue occurrences: each time an in-flight request was recovered
    /// from a dying replica and re-queued (a request crashed twice counts
    /// twice).
    pub retried: usize,
    /// Fault events that found their target alive and were applied.
    pub faults_applied: usize,
    /// Fault events whose target slot did not exist or was already dead.
    pub faults_skipped: usize,
    /// Shed counts per class, ascending by class id.
    pub shed_by_class: Vec<ClassShed>,
    /// Every shed arrival, in time order.
    pub shed_log: Vec<ShedEvent>,
    /// Every capacity loss, in time order.
    pub disruptions: Vec<Disruption>,
}

/// One window of the attainment timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttainmentWindow {
    /// Window start, in seconds.
    pub start_s: f64,
    /// Window end, in seconds.
    pub end_s: f64,
    /// Requests completing inside the window.
    pub completed: usize,
    /// Of those, requests meeting the SLO.
    pub met: usize,
    /// `met / completed`; **zero** for an empty window — a fleet completing
    /// nothing is attaining nothing, which is exactly the dip the recovery
    /// metrics integrate.
    pub attainment: f64,
}

/// Per-disruption recovery metrics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryMetrics {
    /// The disruption instant, in seconds.
    pub fault_s: f64,
    /// The fleet slot that died.
    pub replica: usize,
    /// Crash or preemption.
    pub kind: FaultKind,
    /// Seconds from the disruption until the start of the first window at
    /// or above the SLO's attainment target *after the dip*: the scan
    /// starts at the disruption, waits for the first window that falls
    /// below target (queued work often keeps the fleet healthy for a few
    /// windows after a crash), and then measures to the first recovered
    /// window. `Some(0.0)` when attainment never dipped at all; `None`
    /// when it dipped and never recovered within the run.
    pub reattainment_s: Option<f64>,
    /// Integral of the attainment shortfall (target minus windowed
    /// attainment, clamped at zero) from the disruption to reattainment —
    /// or to the end of the run if attainment never recovered. Seconds of
    /// full outage contribute `target × window` each; zero when attainment
    /// never dipped.
    pub dip_area: f64,
}

/// The result of one chaos run: the ordinary fleet report and scaling
/// history, plus fault accounting and recovery analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosReport {
    /// The merged fleet report — same definitions as
    /// [`crate::ClusterEngine`] / [`crate::AutoscaleEngine`] runs, with one
    /// row per fleet slot ever provisioned (dead slots report what they
    /// completed before dying). [`crate::ServingMetrics::shed`] carries the
    /// admission-control counts in the merged and per-class rows.
    pub fleet: FleetReport,
    /// Every *policy* scaling decision, in time order (restarts appear in
    /// [`Self::lifetimes`], not here).
    pub events: Vec<ScalingEvent>,
    /// Per-slot provisioning windows, by slot index. A crashed slot retires
    /// at its death; its cold replacement is a new slot.
    pub lifetimes: Vec<ReplicaLifetime>,
    /// Largest number of provisioned replicas at any instant.
    pub peak_provisioned: u32,
    /// Smallest number of provisioned replicas at any instant (crashes
    /// count: a fleet reduced to zero reads zero here).
    pub min_provisioned: u32,
    /// Integral of provisioned replicas over time, in replica-seconds —
    /// dead time between a crash and its restart is *not* paid.
    pub replica_seconds: f64,
    /// Fault accounting.
    pub fault: FaultReport,
}

impl ChaosReport {
    /// Mean provisioned replicas over the run (`replica_seconds` divided
    /// by the makespan; zero for an empty run).
    pub fn mean_provisioned(&self) -> f64 {
        let makespan = self.fleet.merged.metrics.makespan_s;
        if makespan <= 0.0 {
            return 0.0;
        }
        self.replica_seconds / makespan
    }

    /// Attainment against everything *offered*: requests meeting `slo`
    /// divided by all injected requests, so shed and failed requests count
    /// against the fleet (1.0 when nothing was injected). The plain
    /// [`FleetReport::attainment`] scores completions only.
    pub fn offered_attainment(&self, slo: &SloTarget) -> f64 {
        if self.fault.injected == 0 {
            return 1.0;
        }
        let met = self
            .fleet
            .merged
            .timelines
            .iter()
            .filter(|t| slo.meets(t.ttft_s(), t.tpot_s()))
            .count();
        met as f64 / self.fault.injected as f64
    }

    /// The windowed attainment timeline: completions bucketed by completion
    /// time into `window_s`-wide windows from `t = 0` to the run's
    /// makespan. Empty windows read zero attainment (see
    /// [`AttainmentWindow::attainment`]). Returns an empty vector for an
    /// empty run or a non-positive window.
    pub fn attainment_timeline(&self, slo: &SloTarget, window_s: f64) -> Vec<AttainmentWindow> {
        if !window_s.is_finite() || window_s <= 0.0 || self.fleet.merged.timelines.is_empty() {
            return Vec::new();
        }
        let makespan = self.fleet.merged.metrics.makespan_s;
        let n = (makespan / window_s).floor() as usize + 1;
        let mut windows: Vec<AttainmentWindow> = (0..n)
            .map(|k| AttainmentWindow {
                start_s: k as f64 * window_s,
                end_s: (k + 1) as f64 * window_s,
                completed: 0,
                met: 0,
                attainment: 0.0,
            })
            .collect();
        for t in &self.fleet.merged.timelines {
            let k = ((t.completion_s / window_s).floor() as usize).min(n - 1);
            windows[k].completed += 1;
            if slo.meets(t.ttft_s(), t.tpot_s()) {
                windows[k].met += 1;
            }
        }
        for w in &mut windows {
            if w.completed > 0 {
                w.attainment = w.met as f64 / w.completed as f64;
            }
        }
        windows
    }

    /// Recovery metrics per disruption: time-to-reattainment and the
    /// goodput-dip area, measured on the `window_s`-wide attainment
    /// timeline against `slo` (whose `attainment` field is the recovery
    /// target).
    ///
    /// The dip is detected, not assumed: in-flight and queued work often
    /// keeps windowed attainment at target for a while after a crash, so
    /// the scan runs from the disruption to the *first window below
    /// target*, and measures reattainment from the disruption to the first
    /// at-target window after that. A disruption the fleet absorbs without
    /// ever dipping reports `reattainment_s = Some(0.0)` and a zero dip.
    pub fn recovery(&self, slo: &SloTarget, window_s: f64) -> Vec<RecoveryMetrics> {
        let timeline = self.attainment_timeline(slo, window_s);
        self.fault
            .disruptions
            .iter()
            .map(|d| {
                let mut dip = 0.0;
                let mut dipped = false;
                let mut reattainment = None;
                for w in timeline.iter().filter(|w| w.start_s >= d.time_s) {
                    let at_target = w.completed > 0 && w.attainment >= slo.attainment;
                    if !dipped {
                        if at_target {
                            continue;
                        }
                        dipped = true;
                    } else if at_target {
                        reattainment = Some(w.start_s - d.time_s);
                        break;
                    }
                    dip += (slo.attainment - w.attainment).max(0.0) * window_s;
                }
                if !dipped {
                    reattainment = Some(0.0);
                }
                RecoveryMetrics {
                    fault_s: d.time_s,
                    replica: d.replica,
                    kind: d.kind,
                    reattainment_s: reattainment,
                    dip_area: dip,
                }
            })
            .collect()
    }
}

/// One fleet slot of the chaos engine. `sim` is `None` once the replica is
/// dead (crashed or killed); its pre-death results are parked until the
/// merge.
struct ChaosSlot {
    sim: Option<ReplicaSim>,
    provisioned_s: f64,
    routable_s: f64,
    decommissioned_s: Option<f64>,
    /// Death instant of a crashed/preempted slot — its chips are released
    /// here, unlike a decommissioned-but-draining slot.
    retired_at: Option<f64>,
    assigned: usize,
    completion_cursor: usize,
}

impl ChaosSlot {
    fn fresh(sim: ReplicaSim, provisioned_s: f64, routable_s: f64) -> Self {
        Self {
            sim: Some(sim),
            provisioned_s,
            routable_s,
            decommissioned_s: None,
            retired_at: None,
            assigned: 0,
            completion_cursor: 0,
        }
    }

    fn alive(&self) -> bool {
        self.sim.is_some()
    }

    fn routable_at(&self, t: f64) -> bool {
        self.alive() && self.routable_s <= t && self.decommissioned_s.is_none()
    }
}

/// One pending fault-lane action of the run's agenda.
#[derive(Debug, Clone, Copy)]
enum Action {
    Crash { slot: usize, restart_delay_s: f64 },
    Slowdown { slot: usize, factor: f64 },
    PreemptNotice { slot: usize, notice_s: f64 },
    Kill { slot: usize },
    Restart,
}

struct Agendum {
    t: f64,
    seq: u64,
    action: Action,
}

/// The chaos-ready fleet engine: replicas of one pipeline behind a router,
/// sized by a [`ScaleDriver`], degraded by a [`FaultSchedule`], and guarded
/// by optional [`AdmissionConfig`] load shedding. See the module docs.
#[derive(Debug, Clone)]
pub struct ChaosEngine {
    spec: PipelineSpec,
    router: RouterPolicy,
    driver: ScaleDriver,
    faults: FaultSchedule,
    crash_policy: CrashPolicy,
    admission: Option<AdmissionConfig>,
    parallel_advance: bool,
    telemetry: rago_telemetry::TelemetryConfig,
}

impl ChaosEngine {
    /// A chaos engine with no faults and no admission control — in that
    /// configuration the run is bit-identical to the fault-free engines.
    ///
    /// # Panics
    ///
    /// Panics if the driver is malformed (zero replicas, invalid reactive
    /// policy).
    pub fn new(spec: PipelineSpec, router: RouterPolicy, driver: ScaleDriver) -> Self {
        driver.assert_valid();
        Self {
            spec,
            router,
            driver,
            faults: FaultSchedule::empty(),
            crash_policy: CrashPolicy::default(),
            admission: None,
            parallel_advance: false,
            telemetry: rago_telemetry::TelemetryConfig::disabled(),
        }
    }

    /// Sets the telemetry config used by [`Self::run_telemetry`] (and by
    /// [`Self::run_traced`] for its gauge cadence). The untraced run paths
    /// never consult it.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: rago_telemetry::TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Injects a fault schedule.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultSchedule) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the in-flight policy for dying replicas (default
    /// [`CrashPolicy::Requeue`]).
    #[must_use]
    pub fn with_crash_policy(mut self, policy: CrashPolicy) -> Self {
        self.crash_policy = policy;
        self
    }

    /// Enables priority-aware admission control.
    #[must_use]
    pub fn with_admission(mut self, admission: AdmissionConfig) -> Self {
        self.admission = Some(admission);
        self
    }

    /// Advances replicas in parallel between clock points (off by default);
    /// bit-identical to the serial run, as for
    /// [`crate::ClusterEngine::with_parallel_advance`].
    #[must_use]
    pub fn with_parallel_advance(mut self, parallel: bool) -> Self {
        self.parallel_advance = parallel;
        self
    }

    /// The scale driver.
    pub fn driver(&self) -> &ScaleDriver {
        &self.driver
    }

    fn new_sim(&self, track_probes: bool) -> ReplicaSim {
        let mut sim = ReplicaSim::new(self.spec.clone());
        sim.track_completions = self.driver.track_completions();
        sim.track_probes = track_probes;
        sim
    }

    /// Runs a generated trace through the chaos fleet.
    pub fn run_trace(&self, trace: &Trace) -> ChaosReport {
        self.run(trace.requests.iter().map(EngineRequest::from).collect())
    }

    /// Runs the fleet over `requests` (sorted by arrival time internally).
    ///
    /// The run interleaves four chronological streams under one clock, with
    /// a pinned tie-break at equal instants: **fault actions** first, then
    /// **pending-request flushes** (requests that arrived while no replica
    /// was routable), then **policy ticks / plan steps**, then **arrivals**
    /// — a fault or scaling decision at an arrival's instant is in force
    /// before that arrival is routed, exactly as in
    /// [`crate::AutoscaleEngine::run`]. No policy scaling happens after the
    /// last arrival, but faults (and restarts) keep firing through the
    /// drain.
    ///
    /// # Panics
    ///
    /// Panics if any arrival time is negative or non-finite, or any request
    /// generates zero tokens.
    pub fn run(&self, requests: Vec<EngineRequest>) -> ChaosReport {
        self.run_recorded(requests, &mut rago_telemetry::NullRecorder)
            .0
    }

    /// [`Self::run`] recording a trace into `rec`: router picks (including
    /// crash-requeue re-picks) live during routing; admission sheds, fault
    /// disruptions, scaling decisions, replica lifecycle instants, and the
    /// per-replica fleet observability derived post-hoc from the ledgers
    /// the report already carries. A [`rago_telemetry::NullRecorder`]
    /// makes this exactly [`Self::run`].
    pub fn run_traced<R: rago_telemetry::Recorder>(
        &self,
        requests: Vec<EngineRequest>,
        rec: &mut R,
    ) -> ChaosReport {
        let (report, obs) = self.run_recorded(requests, rec);
        if R::ENABLED {
            let end_s = report.fleet.merged.metrics.makespan_s;
            crate::cluster::record_fleet_observability(
                rec,
                &report.fleet,
                &obs,
                self.telemetry.gauge_cadence_s,
            );
            crate::telemetry::record_scaling_events(rec, &report.events);
            crate::telemetry::record_replica_lifetimes(rec, &report.lifetimes);
            crate::telemetry::record_routable_gauge(
                rec,
                &report.lifetimes,
                self.telemetry.gauge_cadence_s,
                end_s,
            );
            crate::telemetry::record_shed_events(rec, &report.fault.shed_log);
            crate::telemetry::record_disruptions(rec, &report.fault.disruptions);
        }
        report
    }

    /// Convenience wrapper: [`Self::run_traced`] with a
    /// [`rago_telemetry::TraceRecorder`] built from the engine's
    /// [`Self::with_telemetry`] config.
    pub fn run_telemetry(
        &self,
        requests: Vec<EngineRequest>,
    ) -> (ChaosReport, rago_telemetry::TraceRecorder) {
        let mut rec = rago_telemetry::TraceRecorder::new(self.telemetry.clone());
        let report = self.run_traced(requests, &mut rec);
        (report, rec)
    }

    /// The shared chaos run body; the recorder sees router picks only
    /// (everything else is derived from the returned ledgers).
    fn run_recorded<R: rago_telemetry::Recorder>(
        &self,
        mut requests: Vec<EngineRequest>,
        rec: &mut R,
    ) -> (ChaosReport, Vec<crate::cluster::ReplicaObs>) {
        sort_by_arrival(&mut requests);
        let injected = requests.len();
        let initial = self.driver.initial_replicas();
        let mut slots: Vec<ChaosSlot> = (0..initial)
            .map(|_| ChaosSlot::fresh(self.new_sim(R::ENABLED), 0.0, 0.0))
            .collect();
        let mut events: Vec<ScalingEvent> = Vec::new();
        let mut assignments: Vec<(u64, usize)> = Vec::with_capacity(requests.len());
        let mut round_robin_next = 0usize;
        let mut last_action_s = f64::NEG_INFINITY;
        let mut peak_provisioned = initial;
        let mut min_provisioned = initial;

        // Fault-lane state.
        let mut agenda: Vec<Agendum> = self
            .faults
            .events()
            .iter()
            .enumerate()
            .map(|(i, e)| Agendum {
                t: e.at_s(),
                seq: i as u64,
                action: match *e {
                    FaultEvent::Crash {
                        replica,
                        restart_delay_s,
                        ..
                    } => Action::Crash {
                        slot: replica,
                        restart_delay_s,
                    },
                    FaultEvent::StragglerStart {
                        replica, slowdown, ..
                    } => Action::Slowdown {
                        slot: replica,
                        factor: slowdown,
                    },
                    FaultEvent::StragglerEnd { replica, .. } => Action::Slowdown {
                        slot: replica,
                        factor: 1.0,
                    },
                    FaultEvent::Preempt {
                        replica, notice_s, ..
                    } => Action::PreemptNotice {
                        slot: replica,
                        notice_s,
                    },
                },
            })
            .collect();
        let mut next_seq = agenda.len() as u64;
        let mut pending: VecDeque<EngineRequest> = VecDeque::new();
        let mut dead: BTreeMap<usize, DeadReplica> = BTreeMap::new();
        let mut shed_total = 0usize;
        let mut shed_by_class: BTreeMap<u32, usize> = BTreeMap::new();
        let mut shed_log: Vec<ShedEvent> = Vec::new();
        let mut failed = 0usize;
        let mut retried = 0usize;
        let mut faults_applied = 0usize;
        let mut faults_skipped = 0usize;
        let mut disruptions: Vec<Disruption> = Vec::new();

        let last_arrival = requests.last().map(|r| r.arrival_s).unwrap_or(0.0);
        let mut next_req = 0usize;
        // Reactive tick state / predictive step cursor.
        let mut next_tick = match &self.driver {
            ScaleDriver::Reactive(policy) => policy.evaluation_interval_s,
            _ => f64::INFINITY,
        };
        let mut next_step = 0usize;

        loop {
            let arrival_t = requests.get(next_req).map(|r| r.arrival_s);
            let agenda_pick = agenda
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.t.total_cmp(&b.t).then(a.seq.cmp(&b.seq)))
                .map(|(i, a)| (i, a.t));
            let flush_t = if pending.is_empty() {
                None
            } else {
                slots
                    .iter()
                    .filter(|s| s.alive() && s.decommissioned_s.is_none())
                    .map(|s| s.routable_s)
                    .min_by(f64::total_cmp)
            };
            let tick_t: Option<f64> = match &self.driver {
                ScaleDriver::Reactive(_) => (next_tick <= last_arrival).then_some(next_tick),
                ScaleDriver::Predictive(p) => p
                    .plan
                    .steps
                    .get(next_step)
                    .map(|s| s.at_s)
                    .filter(|&t| t <= last_arrival),
                ScaleDriver::Static { .. } => None,
            };

            // Earliest wins; ties break fault < flush < tick < arrival.
            let agenda_t = agenda_pick.map(|(_, t)| t);
            let best = [agenda_t, flush_t, tick_t, arrival_t]
                .iter()
                .enumerate()
                .filter_map(|(lane, t)| t.map(|t| (lane, t)))
                .min_by(|(la, ta), (lb, tb)| ta.total_cmp(tb).then(la.cmp(lb)));
            let Some((lane, now)) = best else {
                break;
            };

            match lane {
                0 => {
                    let (idx, _) = agenda_pick.expect("lane 0 implies an agenda entry");
                    let Agendum { action, .. } = agenda.remove(idx);
                    self.apply_action(
                        action,
                        now,
                        &mut slots,
                        &mut agenda,
                        &mut next_seq,
                        &mut dead,
                        &mut pending,
                        &mut assignments,
                        &mut round_robin_next,
                        &mut peak_provisioned,
                        &mut min_provisioned,
                        &mut failed,
                        &mut retried,
                        &mut faults_applied,
                        &mut faults_skipped,
                        &mut disruptions,
                        rec,
                    );
                }
                1 => {
                    // Flush: a replica just became routable; drain pending
                    // arrivals through admission + routing at this instant.
                    advance_live(&mut slots, now, self.parallel_advance);
                    while let Some(req) = pending.pop_front() {
                        let routable = routable_indices(&slots, now);
                        if routable.is_empty() {
                            // The candidate replica died in this same
                            // instant: put the request back and wait again.
                            pending.push_front(req);
                            break;
                        }
                        if self.shed_check(
                            &req,
                            now,
                            &slots,
                            &routable,
                            &mut shed_total,
                            &mut shed_by_class,
                            &mut shed_log,
                        ) {
                            continue;
                        }
                        let replica = self.route_into(
                            &req,
                            now,
                            &routable,
                            &slots,
                            &mut round_robin_next,
                            rec,
                        );
                        assignments.push((req.id, replica));
                        slots[replica].assigned += 1;
                        slots[replica]
                            .sim
                            .as_mut()
                            .expect("routable slots are alive")
                            .inject_delayed(req, now);
                    }
                }
                2 => match &self.driver {
                    ScaleDriver::Reactive(policy) => {
                        next_tick += policy.evaluation_interval_s;
                        advance_live(&mut slots, now, self.parallel_advance);
                        self.evaluate_reactive(
                            policy,
                            now,
                            &mut slots,
                            &mut events,
                            &mut last_action_s,
                            &mut peak_provisioned,
                            &mut min_provisioned,
                            R::ENABLED,
                        );
                    }
                    ScaleDriver::Predictive(p) => {
                        let target = p.plan.steps[next_step].replicas;
                        next_step += 1;
                        advance_live(&mut slots, now, self.parallel_advance);
                        self.apply_plan_target(
                            target,
                            p.warmup_s,
                            now,
                            &mut slots,
                            &mut events,
                            &mut peak_provisioned,
                            &mut min_provisioned,
                            R::ENABLED,
                        );
                    }
                    ScaleDriver::Static { .. } => unreachable!("static drivers have no ticks"),
                },
                _ => {
                    let req = requests[next_req];
                    next_req += 1;
                    advance_live(&mut slots, req.arrival_s, self.parallel_advance);
                    let routable = routable_indices(&slots, req.arrival_s);
                    if routable.is_empty() {
                        pending.push_back(req);
                    } else if !self.shed_check(
                        &req,
                        req.arrival_s,
                        &slots,
                        &routable,
                        &mut shed_total,
                        &mut shed_by_class,
                        &mut shed_log,
                    ) {
                        let replica = self.route_into(
                            &req,
                            req.arrival_s,
                            &routable,
                            &slots,
                            &mut round_robin_next,
                            rec,
                        );
                        assignments.push((req.id, replica));
                        slots[replica].assigned += 1;
                        slots[replica]
                            .sim
                            .as_mut()
                            .expect("routable slots are alive")
                            .inject(req);
                    }
                }
            }
        }

        // Requests that never found a routable replica fail.
        failed += pending.len();
        pending.clear();

        self.finish_run(
            slots,
            dead,
            assignments,
            events,
            peak_provisioned,
            min_provisioned,
            FaultTally {
                injected,
                shed_total,
                shed_by_class,
                shed_log,
                failed,
                retried,
                faults_applied,
                faults_skipped,
                disruptions,
            },
        )
    }
}

/// Advances every live replica to just before `t`.
fn advance_live(slots: &mut [ChaosSlot], t: f64, parallel: bool) {
    let mut live: Vec<&mut ReplicaSim> = slots.iter_mut().filter_map(|s| s.sim.as_mut()).collect();
    advance_all(&mut live, |s| &mut **s, t, parallel);
}

/// Slot indices routable at `t`, ascending.
fn routable_indices(slots: &[ChaosSlot], t: f64) -> Vec<usize> {
    slots
        .iter()
        .enumerate()
        .filter(|(_, s)| s.routable_at(t))
        .map(|(i, _)| i)
        .collect()
}

/// Mean queued requests per routable replica.
fn mean_queue_depth(slots: &[ChaosSlot], routable: &[usize]) -> f64 {
    routable
        .iter()
        .map(|&i| {
            slots[i]
                .sim
                .as_ref()
                .expect("routable slots are alive")
                .queued()
        })
        .sum::<usize>() as f64
        / routable.len() as f64
}

/// A dead replica's parked results plus the observability harvested at its
/// death instant.
struct DeadReplica {
    timelines: Vec<RequestTimeline>,
    acc: SimAccumulators,
    obs: crate::cluster::ReplicaObs,
}

struct FaultTally {
    injected: usize,
    shed_total: usize,
    shed_by_class: BTreeMap<u32, usize>,
    shed_log: Vec<ShedEvent>,
    failed: usize,
    retried: usize,
    faults_applied: usize,
    faults_skipped: usize,
    disruptions: Vec<Disruption>,
}

impl ChaosEngine {
    /// Returns `true` (and records the shed) when admission control rejects
    /// `req` at `t` given the routable fleet state.
    #[allow(clippy::too_many_arguments)]
    fn shed_check(
        &self,
        req: &EngineRequest,
        t: f64,
        slots: &[ChaosSlot],
        routable: &[usize],
        shed_total: &mut usize,
        shed_by_class: &mut BTreeMap<u32, usize>,
        shed_log: &mut Vec<ShedEvent>,
    ) -> bool {
        let Some(admission) = &self.admission else {
            return false;
        };
        let depth = mean_queue_depth(slots, routable);
        let priority = admission.priority_of(req.class);
        if depth > admission.threshold_for(priority) {
            *shed_total += 1;
            *shed_by_class.entry(req.class).or_insert(0) += 1;
            shed_log.push(ShedEvent {
                time_s: t,
                id: req.id,
                class: req.class,
                priority,
                mean_queue_depth: depth,
            });
            true
        } else {
            false
        }
    }

    /// Routes `req` over the routable candidates, returning the chosen slot
    /// index. The recorder sees one decision event per pick; it never
    /// influences the pick.
    fn route_into<R: rago_telemetry::Recorder>(
        &self,
        req: &EngineRequest,
        t: f64,
        routable: &[usize],
        slots: &[ChaosSlot],
        round_robin_next: &mut usize,
        rec: &mut R,
    ) -> usize {
        let pick = route_pick(
            self.router,
            routable.len(),
            |i| {
                slots[routable[i]]
                    .sim
                    .as_ref()
                    .expect("routable slots are alive")
            },
            |i| routable[i],
            round_robin_next,
            req,
        );
        let replica = routable[pick];
        if R::ENABLED {
            crate::telemetry::record_route_pick(
                rec,
                t,
                self.router,
                replica,
                req,
                slots[replica]
                    .sim
                    .as_ref()
                    .expect("routable slots are alive"),
            );
        }
        replica
    }

    /// Applies one fault-lane action at time `now`.
    #[allow(clippy::too_many_arguments)]
    fn apply_action<R: rago_telemetry::Recorder>(
        &self,
        action: Action,
        now: f64,
        slots: &mut Vec<ChaosSlot>,
        agenda: &mut Vec<Agendum>,
        next_seq: &mut u64,
        dead: &mut BTreeMap<usize, DeadReplica>,
        pending: &mut VecDeque<EngineRequest>,
        assignments: &mut Vec<(u64, usize)>,
        round_robin_next: &mut usize,
        peak_provisioned: &mut u32,
        min_provisioned: &mut u32,
        failed: &mut usize,
        retried: &mut usize,
        faults_applied: &mut usize,
        faults_skipped: &mut usize,
        disruptions: &mut Vec<Disruption>,
        rec: &mut R,
    ) {
        match action {
            Action::Slowdown { slot, factor } => {
                match slots.get_mut(slot).and_then(|s| s.sim.as_mut()) {
                    Some(sim) => {
                        // Rides the sim's own fault lane: in force before
                        // any same-instant arrival is processed.
                        sim.schedule_slowdown(now, factor);
                        *faults_applied += 1;
                    }
                    None => *faults_skipped += 1,
                }
            }
            Action::Crash {
                slot,
                restart_delay_s,
            } => {
                if slots.get(slot).map_or(true, |s| !s.alive()) {
                    *faults_skipped += 1;
                    return;
                }
                *faults_applied += 1;
                self.kill_slot(
                    slot,
                    now,
                    FaultKind::Crash,
                    slots,
                    dead,
                    pending,
                    assignments,
                    round_robin_next,
                    min_provisioned,
                    failed,
                    retried,
                    rec,
                );
                disruptions.push(Disruption {
                    time_s: now,
                    replica: slot,
                    kind: FaultKind::Crash,
                });
                if restart_delay_s.is_finite() {
                    agenda.push(Agendum {
                        t: now + restart_delay_s,
                        seq: *next_seq,
                        action: Action::Restart,
                    });
                    *next_seq += 1;
                }
            }
            Action::PreemptNotice { slot, notice_s } => {
                if slots.get(slot).map_or(true, |s| !s.alive()) {
                    *faults_skipped += 1;
                    return;
                }
                *faults_applied += 1;
                // Capacity stops at the notice: the replica drains, the
                // router excludes it, and the disruption clock starts now.
                if slots[slot].decommissioned_s.is_none() {
                    slots[slot].decommissioned_s = Some(now);
                }
                let provisioned = provisioned_count(slots);
                *min_provisioned = (*min_provisioned).min(provisioned);
                disruptions.push(Disruption {
                    time_s: now,
                    replica: slot,
                    kind: FaultKind::Preemption,
                });
                agenda.push(Agendum {
                    t: now + notice_s,
                    seq: *next_seq,
                    action: Action::Kill { slot },
                });
                *next_seq += 1;
            }
            Action::Kill { slot } => {
                // The preemption deadline; skip silently if the replica
                // already crashed during the notice window.
                if slots.get(slot).map_or(true, |s| !s.alive()) {
                    return;
                }
                self.kill_slot(
                    slot,
                    now,
                    FaultKind::Preemption,
                    slots,
                    dead,
                    pending,
                    assignments,
                    round_robin_next,
                    min_provisioned,
                    failed,
                    retried,
                    rec,
                );
            }
            Action::Restart => {
                // A cold replacement replica: same provisioning path as a
                // scale-out (fresh caches, full warm-up).
                slots.push(ChaosSlot::fresh(
                    self.new_sim(R::ENABLED),
                    now,
                    now + self.driver.warmup_s(),
                ));
                let provisioned = provisioned_count(slots);
                *peak_provisioned = (*peak_provisioned).max(provisioned);
            }
        }
    }

    /// Tears one replica down at `now`: its completed work is parked for
    /// the merge, its in-flight requests are re-queued or failed, and its
    /// chips are released.
    #[allow(clippy::too_many_arguments)]
    fn kill_slot<R: rago_telemetry::Recorder>(
        &self,
        slot: usize,
        now: f64,
        _kind: FaultKind,
        slots: &mut [ChaosSlot],
        dead: &mut BTreeMap<usize, DeadReplica>,
        pending: &mut VecDeque<EngineRequest>,
        assignments: &mut Vec<(u64, usize)>,
        round_robin_next: &mut usize,
        min_provisioned: &mut u32,
        failed: &mut usize,
        retried: &mut usize,
        rec: &mut R,
    ) {
        // Work completing strictly before the death instant survives; work
        // completing exactly at it is lost with the replica (the pinned
        // `advance_before` semantics).
        advance_live(slots, now, self.parallel_advance);
        let mut sim = slots[slot]
            .sim
            .take()
            .expect("kill_slot targets live slots");
        let obs = crate::cluster::ReplicaObs {
            replica: slot,
            probes: sim.drain_probe_log(),
            equeue: sim.equeue_stats(),
        };
        let (timelines, in_flight, acc) = sim.dismantle();
        dead.insert(
            slot,
            DeadReplica {
                timelines,
                acc,
                obs,
            },
        );
        if slots[slot].decommissioned_s.is_none() {
            slots[slot].decommissioned_s = Some(now);
        }
        slots[slot].retired_at = Some(now);
        let provisioned = provisioned_count(slots);
        *min_provisioned = (*min_provisioned).min(provisioned);
        match self.crash_policy {
            CrashPolicy::Fail => *failed += in_flight.len(),
            CrashPolicy::Requeue => {
                for req in in_flight {
                    *retried += 1;
                    let routable = routable_indices(slots, now);
                    if routable.is_empty() {
                        pending.push_back(req);
                    } else {
                        // Retries bypass admission — they were admitted
                        // once; TTFT keeps accruing from the original
                        // arrival.
                        let replica =
                            self.route_into(&req, now, &routable, slots, round_robin_next, rec);
                        assignments.push((req.id, replica));
                        slots[replica].assigned += 1;
                        slots[replica]
                            .sim
                            .as_mut()
                            .expect("routable slots are alive")
                            .inject_delayed(req, now);
                    }
                }
            }
        }
    }

    /// One reactive policy evaluation — the exact decision procedure of
    /// [`crate::AutoscaleEngine`], over the live subset of the chaos fleet.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_reactive(
        &self,
        policy: &AutoscalerPolicy,
        now: f64,
        slots: &mut Vec<ChaosSlot>,
        events: &mut Vec<ScalingEvent>,
        last_action_s: &mut f64,
        peak_provisioned: &mut u32,
        min_provisioned: &mut u32,
        track_probes: bool,
    ) {
        let routable = routable_indices(slots, now);
        let provisioned = provisioned_count(slots);
        if routable.is_empty() {
            return;
        }
        let n = routable.len() as f64;
        let mean_queue_depth = routable
            .iter()
            .map(|&i| {
                slots[i]
                    .sim
                    .as_ref()
                    .expect("routable slots are alive")
                    .queued()
            })
            .sum::<usize>() as f64
            / n;
        let mean_outstanding = routable
            .iter()
            .map(|&i| {
                slots[i]
                    .sim
                    .as_ref()
                    .expect("routable slots are alive")
                    .outstanding()
            })
            .sum::<usize>() as f64
            / n;

        let queue_trigger = mean_queue_depth > policy.scale_out_queue_depth;
        let attainment_trigger = if let Some(t) = &policy.attainment_trigger {
            let mut met = 0usize;
            let mut total = 0usize;
            for slot in slots.iter_mut() {
                let Some(sim) = slot.sim.as_ref() else {
                    continue;
                };
                for &(_, ttft, tpot) in sim.completions_up_to(&mut slot.completion_cursor, now) {
                    total += 1;
                    if t.slo.meets(ttft, tpot) {
                        met += 1;
                    }
                }
            }
            total > 0 && (met as f64 / total as f64) < t.floor
        } else {
            false
        };

        if (queue_trigger || attainment_trigger) && provisioned < policy.max_replicas {
            let replica = slots.len();
            slots.push(ChaosSlot::fresh(
                self.new_sim(track_probes),
                now,
                now + policy.warmup_s,
            ));
            *last_action_s = now;
            *peak_provisioned = (*peak_provisioned).max(provisioned + 1);
            events.push(ScalingEvent {
                time_s: now,
                action: ScalingAction::ScaleOut,
                replica,
                provisioned_after: provisioned + 1,
                routable_after: routable.len() as u32 + u32::from(policy.warmup_s <= 0.0),
                mean_queue_depth,
                mean_outstanding,
            });
        } else if mean_outstanding < policy.scale_in_outstanding
            && routable.len() as u32 > policy.min_replicas
            && now - *last_action_s >= policy.cooldown_s
        {
            let victim = routable
                .iter()
                .copied()
                .min_by_key(|&i| {
                    (
                        slots[i]
                            .sim
                            .as_ref()
                            .expect("routable slots are alive")
                            .outstanding(),
                        usize::MAX - i,
                    )
                })
                .expect("routable is non-empty");
            slots[victim].decommissioned_s = Some(now);
            *last_action_s = now;
            *min_provisioned = (*min_provisioned).min(provisioned - 1);
            events.push(ScalingEvent {
                time_s: now,
                action: ScalingAction::ScaleIn,
                replica: victim,
                provisioned_after: provisioned - 1,
                routable_after: routable.len() as u32 - 1,
                mean_queue_depth,
                mean_outstanding,
            });
        }
    }

    /// One predictive plan step: provision or decommission until the live
    /// fleet matches `target`.
    #[allow(clippy::too_many_arguments)]
    fn apply_plan_target(
        &self,
        target: u32,
        warmup_s: f64,
        now: f64,
        slots: &mut Vec<ChaosSlot>,
        events: &mut Vec<ScalingEvent>,
        peak_provisioned: &mut u32,
        min_provisioned: &mut u32,
        track_probes: bool,
    ) {
        let routable = routable_indices(slots, now);
        let mean_queue_depth = if routable.is_empty() {
            0.0
        } else {
            routable
                .iter()
                .map(|&i| {
                    slots[i]
                        .sim
                        .as_ref()
                        .expect("routable slots are alive")
                        .queued()
                })
                .sum::<usize>() as f64
                / routable.len() as f64
        };
        let mean_outstanding = if routable.is_empty() {
            0.0
        } else {
            routable
                .iter()
                .map(|&i| {
                    slots[i]
                        .sim
                        .as_ref()
                        .expect("routable slots are alive")
                        .outstanding()
                })
                .sum::<usize>() as f64
                / routable.len() as f64
        };

        let mut provisioned = provisioned_count(slots);
        let mut routable_now = routable.len() as u32;
        while provisioned < target {
            let replica = slots.len();
            slots.push(ChaosSlot::fresh(
                self.new_sim(track_probes),
                now,
                now + warmup_s,
            ));
            provisioned += 1;
            if warmup_s <= 0.0 {
                routable_now += 1;
            }
            *peak_provisioned = (*peak_provisioned).max(provisioned);
            events.push(ScalingEvent {
                time_s: now,
                action: ScalingAction::ScaleOut,
                replica,
                provisioned_after: provisioned,
                routable_after: routable_now,
                mean_queue_depth,
                mean_outstanding,
            });
        }
        while provisioned > target {
            // Decommission the emptiest routable replica; never take the
            // last one (warming replicas cannot drain the backlog).
            let victims = routable_indices(slots, now);
            if victims.len() <= 1 {
                break;
            }
            let victim = victims
                .iter()
                .copied()
                .min_by_key(|&i| {
                    (
                        slots[i]
                            .sim
                            .as_ref()
                            .expect("routable slots are alive")
                            .outstanding(),
                        usize::MAX - i,
                    )
                })
                .expect("victims is non-empty");
            slots[victim].decommissioned_s = Some(now);
            provisioned -= 1;
            routable_now = routable_now.saturating_sub(1);
            *min_provisioned = (*min_provisioned).min(provisioned);
            events.push(ScalingEvent {
                time_s: now,
                action: ScalingAction::ScaleIn,
                replica: victim,
                provisioned_after: provisioned,
                routable_after: routable_now,
                mean_queue_depth,
                mean_outstanding,
            });
        }
    }

    /// Drains the surviving replicas, merges them with the dead replicas'
    /// parked results, patches shed counts into the metrics, and assembles
    /// the report — the chaos counterpart of the cluster merge, and
    /// bit-identical to it when no replica ever died and nothing was shed.
    #[allow(clippy::too_many_arguments)]
    fn finish_run(
        &self,
        mut slots: Vec<ChaosSlot>,
        dead: BTreeMap<usize, DeadReplica>,
        assignments: Vec<(u64, usize)>,
        events: Vec<ScalingEvent>,
        peak_provisioned: u32,
        min_provisioned: u32,
        tally: FaultTally,
    ) -> (ChaosReport, Vec<crate::cluster::ReplicaObs>) {
        let assigned_counts: Vec<usize> = slots.iter().map(|s| s.assigned).collect();
        let alive: Vec<(usize, ReplicaSim)> = slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, s)| s.sim.take().map(|sim| (i, sim)))
            .collect();
        let drain = |(replica, mut sim): (usize, ReplicaSim)| {
            sim.run_to_completion();
            let obs = crate::cluster::ReplicaObs {
                replica,
                probes: sim.drain_probe_log(),
                equeue: sim.equeue_stats(),
            };
            let (timelines, acc) = sim.finish();
            (replica, timelines, acc, obs)
        };
        type Drained = (
            usize,
            Vec<RequestTimeline>,
            SimAccumulators,
            crate::cluster::ReplicaObs,
        );
        let mut drained: Vec<Drained> = if alive.len() > 1 {
            alive
                .into_iter()
                .par_bridge()
                .fold(Vec::new, |mut acc, item| {
                    acc.push(drain(item));
                    acc
                })
                .reduce(Vec::new, |mut a, mut b| {
                    a.append(&mut b);
                    a
                })
        } else {
            alive.into_iter().map(drain).collect()
        };
        for (replica, d) in dead {
            drained.push((replica, d.timelines, d.acc, d.obs));
        }
        drained.sort_by_key(|(replica, ..)| *replica);

        let mut per_replica = Vec::with_capacity(drained.len());
        let mut obs_out = Vec::with_capacity(drained.len());
        let mut merged_timelines = Vec::with_capacity(assignments.len());
        let mut merged_acc = SimAccumulators::default();
        for (replica, timelines, acc, obs) in drained {
            merged_timelines.extend(timelines.iter().cloned());
            merged_acc.merge_from(&acc);
            per_replica.push(ReplicaReport {
                replica,
                assigned: assigned_counts[replica],
                report: build_report(timelines, &acc),
            });
            obs_out.push(obs);
        }
        merged_timelines.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s).then(a.id.cmp(&b.id)));
        let mut merged = build_report(merged_timelines, &merged_acc);

        // Thread the shed counts into the merged and per-class rows —
        // untouched when nothing was shed, preserving bit-identity.
        if tally.shed_total > 0 {
            merged.metrics.shed = tally.shed_total;
            for row in &mut merged.per_class {
                row.metrics.shed = tally.shed_by_class.get(&row.class).copied().unwrap_or(0);
            }
            for (&class, &count) in &tally.shed_by_class {
                if !merged.per_class.iter().any(|r| r.class == class) {
                    // A class shed in its entirety still gets a row: zero
                    // completions, its shed count, shared-resource fields
                    // repeating the run-level values like every class row.
                    let mut metrics = compute_metrics_for(&[], Some(class), &merged_acc);
                    metrics.shed = count;
                    merged.per_class.push(ClassMetrics { class, metrics });
                }
            }
            merged.per_class.sort_by_key(|r| r.class);
        }

        let completed = merged.metrics.completed;
        debug_assert_eq!(
            tally.injected,
            completed + tally.shed_total + tally.failed,
            "request conservation must hold"
        );

        let fleet = FleetReport {
            merged,
            per_replica,
            assignments,
            imbalance: LoadImbalance::from_counts(assigned_counts),
            router: self.router,
        };

        // Cost accounting: dead replicas release their chips at death;
        // surviving ones follow the autoscaler's retirement rules.
        let makespan = fleet.merged.metrics.makespan_s;
        let mut lifetimes = Vec::with_capacity(slots.len());
        let mut replica_seconds = 0.0;
        for (replica, slot) in slots.iter().enumerate() {
            let report = &fleet.per_replica[replica].report;
            let last_completion = report.metrics.makespan_s.max(slot.provisioned_s);
            let retired_s = match slot.retired_at {
                Some(death) => death,
                None => match slot.decommissioned_s {
                    Some(d) => d.max(last_completion),
                    None => makespan.max(slot.provisioned_s),
                },
            };
            replica_seconds += retired_s - slot.provisioned_s;
            lifetimes.push(ReplicaLifetime {
                replica,
                provisioned_s: slot.provisioned_s,
                routable_s: slot.routable_s,
                decommissioned_s: slot.decommissioned_s,
                retired_s,
                assigned: fleet.per_replica[replica].assigned,
            });
        }

        let report = ChaosReport {
            fleet,
            events,
            lifetimes,
            peak_provisioned,
            min_provisioned,
            replica_seconds,
            fault: FaultReport {
                injected: tally.injected,
                completed,
                shed: tally.shed_total,
                failed: tally.failed,
                retried: tally.retried,
                faults_applied: tally.faults_applied,
                faults_skipped: tally.faults_skipped,
                shed_by_class: tally
                    .shed_by_class
                    .iter()
                    .map(|(&class, &shed)| ClassShed { class, shed })
                    .collect(),
                shed_log: tally.shed_log,
                disruptions: tally.disruptions,
            },
        };
        (report, obs_out)
    }
}

/// Live, non-decommissioned replicas — the autoscaler's "provisioned"
/// count, with dead slots excluded.
fn provisioned_count(slots: &[ChaosSlot]) -> u32 {
    slots
        .iter()
        .filter(|s| s.alive() && s.decommissioned_s.is_none())
        .count() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autoscaler::AutoscaleEngine;
    use crate::cluster::ClusterEngine;
    use crate::engine::{DecodeSpec, LatencyTable, StageSpec};
    use rago_schema::SequenceProfile;
    use rago_workloads::{ArrivalProcess, TraceSpec};

    fn one_stage_spec(stage_latency: f64, batch: u32) -> PipelineSpec {
        PipelineSpec::new(
            vec![StageSpec::new(
                "prefix",
                0,
                batch,
                LatencyTable::constant(batch, stage_latency),
            )],
            DecodeSpec::new(8, LatencyTable::constant(8, 2e-3)),
        )
    }

    fn poisson_trace(n: usize, rate: f64, seed: u64) -> Trace {
        TraceSpec {
            num_requests: n,
            profile: SequenceProfile::paper_default().with_decode_tokens(16),
            arrival: ArrivalProcess::Poisson { rate_rps: rate },
            length_jitter: 0.0,
            seed,
        }
        .generate()
    }

    fn spike_trace(n: usize) -> Trace {
        TraceSpec {
            num_requests: n,
            profile: SequenceProfile::paper_default().with_decode_tokens(16),
            arrival: ArrivalProcess::Spike {
                base_rps: 2.0,
                spike_rps: 80.0,
                start_s: 3.0,
                duration_s: 3.0,
            },
            length_jitter: 0.0,
            seed: 5,
        }
        .generate()
    }

    fn req(id: u64, arrival: f64, class: u32, tokens: u32) -> EngineRequest {
        EngineRequest {
            id,
            arrival_s: arrival,
            prefix_tokens: 0,
            decode_tokens: tokens,
            class,
            identity: None,
        }
    }

    /// The degenerate pin behind the golden suite: no faults, no admission,
    /// reactive driver ⇒ bit-identical to the autoscaler, field by field.
    #[test]
    fn degenerate_reactive_matches_the_autoscaler_exactly() {
        let spec = one_stage_spec(0.04, 2);
        let trace = spike_trace(220);
        let policy = AutoscalerPolicy::new(1, 6)
            .with_evaluation_interval(0.25)
            .with_scale_out_queue_depth(1.5)
            .with_scale_in_outstanding(1.0)
            .with_cooldown(1.0)
            .with_warmup(0.5);
        for router in [RouterPolicy::LeastOutstanding, RouterPolicy::PrefixHash] {
            let baseline = AutoscaleEngine::new(spec.clone(), router, policy).run_trace(&trace);
            let chaos = ChaosEngine::new(spec.clone(), router, ScaleDriver::Reactive(policy))
                .run_trace(&trace);
            assert_eq!(
                chaos.fleet, baseline.fleet,
                "router {router} fleet diverged"
            );
            assert_eq!(chaos.events, baseline.events);
            assert_eq!(chaos.lifetimes, baseline.lifetimes);
            assert_eq!(chaos.peak_provisioned, baseline.peak_provisioned);
            assert_eq!(chaos.min_provisioned, baseline.min_provisioned);
            assert_eq!(chaos.replica_seconds, baseline.replica_seconds);
            assert_eq!(chaos.fault.shed, 0);
            assert_eq!(chaos.fault.failed, 0);
            assert_eq!(chaos.fault.retried, 0);
        }
    }

    /// Same pin with the attainment trigger on (exercises the completion
    /// cursors through the chaos slot wrappers).
    #[test]
    fn degenerate_reactive_matches_with_attainment_trigger() {
        let spec = one_stage_spec(0.04, 2);
        let trace = spike_trace(180);
        let policy = AutoscalerPolicy::new(1, 5)
            .with_evaluation_interval(0.5)
            .with_scale_out_queue_depth(100.0)
            .with_attainment_trigger(SloTarget::new(0.5, 0.01), 0.9);
        let baseline = AutoscaleEngine::new(spec.clone(), RouterPolicy::LeastOutstanding, policy)
            .run_trace(&trace);
        let chaos = ChaosEngine::new(
            spec,
            RouterPolicy::LeastOutstanding,
            ScaleDriver::Reactive(policy),
        )
        .run_trace(&trace);
        assert_eq!(chaos.fleet, baseline.fleet);
        assert_eq!(chaos.events, baseline.events);
    }

    /// Static driver, no faults ⇒ bit-identical to the fixed fleet.
    #[test]
    fn degenerate_static_matches_the_cluster_exactly() {
        let spec = one_stage_spec(0.03, 4);
        let trace = poisson_trace(150, 60.0, 11);
        for router in RouterPolicy::ALL {
            let baseline = ClusterEngine::homogeneous(spec.clone(), 3, router).run_trace(&trace);
            let chaos = ChaosEngine::new(spec.clone(), router, ScaleDriver::Static { replicas: 3 })
                .run_trace(&trace);
            assert_eq!(chaos.fleet, baseline, "router {router} diverged");
            assert!(chaos.events.is_empty());
        }
    }

    /// A predictive driver with a flat plan is a static fleet, bit-exact.
    #[test]
    fn predictive_flat_plan_matches_static_exactly() {
        let spec = one_stage_spec(0.03, 2);
        let trace = poisson_trace(140, 50.0, 23);
        let baseline = ChaosEngine::new(
            spec.clone(),
            RouterPolicy::LeastOutstanding,
            ScaleDriver::Static { replicas: 2 },
        )
        .run_trace(&trace);
        let predictive = ChaosEngine::new(
            spec,
            RouterPolicy::LeastOutstanding,
            ScaleDriver::Predictive(PredictivePolicy::new(ScalingPlan::flat(2), 0.5)),
        )
        .run_trace(&trace);
        assert_eq!(predictive.fleet, baseline.fleet);
        assert_eq!(predictive.replica_seconds, baseline.replica_seconds);
        assert!(predictive.events.is_empty());
    }

    #[test]
    fn crash_requeues_in_flight_and_restarts_cold() {
        let spec = one_stage_spec(0.05, 2);
        let trace = poisson_trace(120, 40.0, 7);
        let faults = FaultSchedule::new(vec![FaultEvent::Crash {
            replica: 0,
            at_s: 1.0,
            restart_delay_s: 0.5,
        }]);
        let report = ChaosEngine::new(
            spec,
            RouterPolicy::LeastOutstanding,
            ScaleDriver::Static { replicas: 2 },
        )
        .with_faults(faults)
        .run_trace(&trace);
        // Conservation: everything completes (requeue policy, surviving
        // replica plus restart).
        assert_eq!(report.fault.injected, 120);
        assert_eq!(report.fault.completed, 120);
        assert_eq!(report.fault.failed, 0);
        assert!(report.fault.retried > 0, "the crash held no in-flight work");
        assert_eq!(report.fault.faults_applied, 1);
        assert_eq!(report.fault.disruptions.len(), 1);
        // The replacement slot exists, provisioned at crash + delay, cold.
        assert_eq!(report.lifetimes.len(), 3);
        let dead = &report.lifetimes[0];
        assert_eq!(dead.retired_s, 1.0);
        assert_eq!(dead.decommissioned_s, Some(1.0));
        let replacement = &report.lifetimes[2];
        assert!((replacement.provisioned_s - 1.5).abs() < 1e-12);
        // Static driver: restart is immediately routable (no warm-up).
        assert_eq!(replacement.routable_s, replacement.provisioned_s);
        // Chips: the dead replica is paid only until the crash.
        assert!(report.replica_seconds < 3.0 * report.fleet.merged.metrics.makespan_s);
        // Requests re-queued kept their original arrival: TTFT of retried
        // requests spans the crash.
        assert!(report.fleet.merged.metrics.ttft.max_s >= 0.0);
    }

    #[test]
    fn crash_fail_policy_fails_in_flight() {
        let spec = one_stage_spec(0.05, 2);
        let trace = poisson_trace(120, 40.0, 7);
        let faults = FaultSchedule::new(vec![FaultEvent::Crash {
            replica: 0,
            at_s: 1.0,
            restart_delay_s: f64::INFINITY,
        }]);
        let report = ChaosEngine::new(
            spec,
            RouterPolicy::LeastOutstanding,
            ScaleDriver::Static { replicas: 2 },
        )
        .with_faults(faults)
        .with_crash_policy(CrashPolicy::Fail)
        .run_trace(&trace);
        assert!(report.fault.failed > 0, "the crash held no in-flight work");
        assert_eq!(report.fault.retried, 0);
        assert_eq!(
            report.fault.completed + report.fault.failed,
            report.fault.injected
        );
        // No restart: only the two initial slots exist.
        assert_eq!(report.lifetimes.len(), 2);
    }

    #[test]
    fn straggler_slows_completions_then_recovers() {
        let spec = one_stage_spec(0.02, 4);
        let trace = poisson_trace(200, 50.0, 3);
        let healthy = ChaosEngine::new(
            spec.clone(),
            RouterPolicy::RoundRobin,
            ScaleDriver::Static { replicas: 2 },
        )
        .run_trace(&trace);
        let faults = FaultSchedule::new(vec![
            FaultEvent::StragglerStart {
                replica: 0,
                at_s: 0.5,
                slowdown: 8.0,
            },
            FaultEvent::StragglerEnd {
                replica: 0,
                at_s: 2.5,
            },
        ]);
        let degraded = ChaosEngine::new(
            spec,
            RouterPolicy::RoundRobin,
            ScaleDriver::Static { replicas: 2 },
        )
        .with_faults(faults)
        .run_trace(&trace);
        assert_eq!(degraded.fault.faults_applied, 2);
        assert_eq!(degraded.fault.completed, 200);
        // The straggler window shows up as worse tail latency.
        assert!(
            degraded.fleet.merged.metrics.latency.p99_s
                > healthy.fleet.merged.metrics.latency.p99_s
        );
        // Recovery: the run still ends, and the post-recovery completions
        // are as fast as the healthy run's steady state.
        assert!(
            degraded.fleet.merged.metrics.makespan_s >= healthy.fleet.merged.metrics.makespan_s
        );
    }

    #[test]
    fn admission_sheds_low_priority_first() {
        let spec = one_stage_spec(0.2, 1); // slow: queues build fast
                                           // Two classes, same arrivals: class 1 is high priority.
        let mut requests = Vec::new();
        for i in 0..40u64 {
            let t = i as f64 * 0.01;
            requests.push(req(2 * i, t, 0, 8));
            requests.push(req(2 * i + 1, t, 1, 8));
        }
        let admission = AdmissionConfig::new(1.0, 100.0).with_class_priority(1, 1);
        let report = ChaosEngine::new(
            spec,
            RouterPolicy::LeastOutstanding,
            ScaleDriver::Static { replicas: 1 },
        )
        .with_admission(admission)
        .run(requests);
        assert!(report.fault.shed > 0, "overload never shed");
        // Only the best-effort class was shed (class 1's threshold is far
        // higher).
        for s in &report.fault.shed_log {
            assert_eq!(s.class, 0, "high-priority request {} was shed", s.id);
        }
        // Shed counts are threaded into the metrics.
        assert_eq!(report.fleet.merged.metrics.shed, report.fault.shed);
        let class0 = report
            .fleet
            .merged
            .per_class
            .iter()
            .find(|r| r.class == 0)
            .expect("class 0 row");
        assert_eq!(class0.metrics.shed, report.fault.shed);
        let class1 = report
            .fleet
            .merged
            .per_class
            .iter()
            .find(|r| r.class == 1)
            .expect("class 1 row");
        assert_eq!(class1.metrics.shed, 0);
        // Conservation.
        assert_eq!(
            report.fault.completed + report.fault.shed + report.fault.failed,
            report.fault.injected
        );
    }

    /// The warm-up regression the restart path exposed: a replica
    /// provisioned by a *restart* must take the same warm-up path as a
    /// scale-out — crash one replica right after a scale-out event and
    /// check both replacements pay the identical warm-up window.
    #[test]
    fn restart_takes_the_same_warmup_path_as_scale_out() {
        let spec = one_stage_spec(0.05, 1);
        let trace = spike_trace(200);
        let policy = AutoscalerPolicy::new(2, 6)
            .with_evaluation_interval(0.25)
            .with_scale_out_queue_depth(1.0)
            .with_warmup(0.75);
        let faults = FaultSchedule::new(vec![FaultEvent::Crash {
            replica: 0,
            at_s: 3.6, // right after the spike's first scale-out ticks
            restart_delay_s: 0.25,
        }]);
        let report = ChaosEngine::new(
            spec,
            RouterPolicy::LeastOutstanding,
            ScaleDriver::Reactive(policy),
        )
        .with_faults(faults)
        .run_trace(&trace);
        assert!(
            report
                .events
                .iter()
                .any(|e| e.action == ScalingAction::ScaleOut && e.time_s < 3.6),
            "the spike never scaled out before the crash"
        );
        // Every non-initial slot — scale-outs AND the restart replacement —
        // pays exactly the policy warm-up.
        let late: Vec<_> = report
            .lifetimes
            .iter()
            .filter(|l| l.provisioned_s > 0.0)
            .collect();
        assert!(late.len() >= 2, "need both a scale-out and a restart");
        for l in late {
            assert!(
                (l.routable_s - l.provisioned_s - 0.75).abs() < 1e-12,
                "slot {} warm-up window is {} not 0.75",
                l.replica,
                l.routable_s - l.provisioned_s
            );
            // And no request reached it before it became routable.
            let r = &report.fleet.per_replica[l.replica].report;
            assert!(r.timelines.iter().all(|t| t.arrival_s >= 0.0));
        }
        assert_eq!(report.fault.completed, 200);
    }

    #[test]
    fn preemption_drains_during_the_notice_window() {
        let spec = one_stage_spec(0.05, 2);
        let trace = poisson_trace(120, 40.0, 9);
        let faults = FaultSchedule::new(vec![FaultEvent::Preempt {
            replica: 0,
            at_s: 1.0,
            notice_s: 0.5,
        }]);
        let report = ChaosEngine::new(
            spec,
            RouterPolicy::LeastOutstanding,
            ScaleDriver::Static { replicas: 2 },
        )
        .with_faults(faults)
        .run_trace(&trace);
        assert_eq!(report.fault.disruptions.len(), 1);
        assert_eq!(report.fault.disruptions[0].kind, FaultKind::Preemption);
        assert_eq!(report.fault.disruptions[0].time_s, 1.0);
        // The preempted slot stopped taking traffic at the notice and died
        // at the deadline.
        let preempted = &report.lifetimes[0];
        assert_eq!(preempted.decommissioned_s, Some(1.0));
        assert_eq!(preempted.retired_s, 1.5);
        // No request was routed to it after the notice.
        let r = &report.fleet.per_replica[0].report;
        assert!(r.timelines.iter().all(|t| t.arrival_s <= 1.0 + 1e-12));
        assert_eq!(
            report.fault.completed + report.fault.failed,
            report.fault.injected
        );
    }

    #[test]
    fn predictive_plan_steps_resize_the_fleet() {
        let spec = one_stage_spec(0.04, 2);
        let trace = poisson_trace(200, 40.0, 13);
        let plan = ScalingPlan::new(
            1,
            vec![
                PlanStep {
                    at_s: 1.0,
                    replicas: 3,
                },
                PlanStep {
                    at_s: 3.0,
                    replicas: 1,
                },
            ],
        );
        let report = ChaosEngine::new(
            spec,
            RouterPolicy::LeastOutstanding,
            ScaleDriver::Predictive(PredictivePolicy::new(plan, 0.25)),
        )
        .run_trace(&trace);
        assert_eq!(report.peak_provisioned, 3);
        let outs = report
            .events
            .iter()
            .filter(|e| e.action == ScalingAction::ScaleOut)
            .count();
        let ins = report
            .events
            .iter()
            .filter(|e| e.action == ScalingAction::ScaleIn)
            .count();
        assert_eq!(outs, 2, "step to 3 provisions two replicas");
        assert_eq!(ins, 2, "step back to 1 decommissions two");
        assert!(report
            .events
            .iter()
            .all(|e| e.time_s == 1.0 || e.time_s == 3.0));
        assert_eq!(report.fault.completed, 200);
    }

    #[test]
    fn recovery_metrics_see_the_dip_and_the_reattainment() {
        let spec = one_stage_spec(0.03, 4);
        let trace = poisson_trace(400, 50.0, 17);
        let faults = FaultSchedule::new(vec![FaultEvent::Crash {
            replica: 0,
            at_s: 2.0,
            restart_delay_s: 1.0,
        }]);
        let report = ChaosEngine::new(
            spec,
            RouterPolicy::LeastOutstanding,
            ScaleDriver::Static { replicas: 2 },
        )
        .with_faults(faults)
        .run_trace(&trace);
        let slo = SloTarget::new(0.5, 0.02).with_attainment(0.9);
        let recovery = report.recovery(&slo, 0.5);
        assert_eq!(recovery.len(), 1);
        let r = &recovery[0];
        assert_eq!(r.fault_s, 2.0);
        assert_eq!(r.kind, FaultKind::Crash);
        assert!(r.dip_area >= 0.0);
        // The timeline covers the run and windows sum to the completions.
        let timeline = report.attainment_timeline(&slo, 0.5);
        assert!(!timeline.is_empty());
        let total: usize = timeline.iter().map(|w| w.completed).sum();
        assert_eq!(total, report.fault.completed);
        for w in &timeline {
            assert!(w.met <= w.completed);
            assert!((0.0..=1.0).contains(&w.attainment));
        }
    }

    #[test]
    fn crash_at_time_zero_with_restart_still_serves() {
        let spec = one_stage_spec(0.03, 2);
        let trace = poisson_trace(60, 20.0, 19);
        let faults = FaultSchedule::new(vec![FaultEvent::Crash {
            replica: 0,
            at_s: 0.0,
            restart_delay_s: 0.5,
        }]);
        let report = ChaosEngine::new(
            spec,
            RouterPolicy::LeastOutstanding,
            ScaleDriver::Static { replicas: 1 },
        )
        .with_faults(faults)
        .run_trace(&trace);
        // Arrivals before the restart wait (pending) and are flushed once
        // the replacement is routable; everything completes.
        assert_eq!(report.fault.completed, 60);
        assert_eq!(report.fault.failed, 0);
        assert_eq!(report.min_provisioned, 0);
        // The pre-restart arrivals were served no earlier than the restart.
        let replacement = &report.fleet.per_replica[1].report;
        assert!(replacement.timelines.iter().all(|t| t.first_token_s >= 0.5));
    }

    #[test]
    fn crash_without_restart_fails_unroutable_pending() {
        let spec = one_stage_spec(0.03, 2);
        let trace = poisson_trace(60, 20.0, 19);
        let faults = FaultSchedule::new(vec![FaultEvent::Crash {
            replica: 0,
            at_s: 0.0,
            restart_delay_s: f64::INFINITY,
        }]);
        let report = ChaosEngine::new(
            spec,
            RouterPolicy::LeastOutstanding,
            ScaleDriver::Static { replicas: 1 },
        )
        .with_faults(faults)
        .run_trace(&trace);
        assert_eq!(report.fault.completed, 0);
        assert_eq!(report.fault.failed, 60);
        assert_eq!(report.fault.injected, 60);
    }

    #[test]
    fn faults_on_missing_replicas_are_skipped() {
        let spec = one_stage_spec(0.03, 2);
        let trace = poisson_trace(40, 20.0, 21);
        let faults = FaultSchedule::new(vec![
            FaultEvent::Crash {
                replica: 7, // never exists
                at_s: 0.5,
                restart_delay_s: 0.1,
            },
            FaultEvent::StragglerStart {
                replica: 9,
                at_s: 0.6,
                slowdown: 2.0,
            },
        ]);
        let baseline = ChaosEngine::new(
            spec.clone(),
            RouterPolicy::RoundRobin,
            ScaleDriver::Static { replicas: 2 },
        )
        .run_trace(&trace);
        let report = ChaosEngine::new(
            spec,
            RouterPolicy::RoundRobin,
            ScaleDriver::Static { replicas: 2 },
        )
        .with_faults(faults)
        .run_trace(&trace);
        assert_eq!(report.fault.faults_skipped, 2);
        assert_eq!(report.fault.faults_applied, 0);
        // Skipped faults leave the run bit-identical.
        assert_eq!(report.fleet, baseline.fleet);
    }

    #[test]
    fn seeded_schedules_are_reproducible_and_bounded() {
        let a = FaultSchedule::seeded(42, 3, 5.0, 30.0, 1.0);
        let b = FaultSchedule::seeded(42, 3, 5.0, 30.0, 1.0);
        assert_eq!(a, b);
        let c = FaultSchedule::seeded(43, 3, 5.0, 30.0, 1.0);
        assert_ne!(a, c, "different seeds should differ");
        for e in a.events() {
            assert!(e.at_s() <= 30.0);
            assert!(e.replica() < 3);
            assert!(matches!(e, FaultEvent::Crash { .. }));
        }
        assert!(a.events().windows(2).all(|w| w[0].at_s() <= w[1].at_s()));
    }

    #[test]
    fn chaos_runs_are_deterministic() {
        let run = || {
            ChaosEngine::new(
                one_stage_spec(0.04, 2),
                RouterPolicy::LeastOutstanding,
                ScaleDriver::Reactive(
                    AutoscalerPolicy::new(1, 4)
                        .with_evaluation_interval(0.3)
                        .with_scale_out_queue_depth(1.0),
                ),
            )
            .with_faults(FaultSchedule::seeded(7, 4, 2.0, 8.0, 0.5))
            .with_admission(AdmissionConfig::new(6.0, 4.0))
            .run_trace(&spike_trace(180))
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_plans_are_rejected() {
        let _ = ScalingPlan::new(
            1,
            vec![
                PlanStep {
                    at_s: 2.0,
                    replicas: 2,
                },
                PlanStep {
                    at_s: 2.0,
                    replicas: 3,
                },
            ],
        );
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn malformed_fault_times_are_rejected() {
        let _ = FaultSchedule::new(vec![FaultEvent::Crash {
            replica: 0,
            at_s: f64::NAN,
            restart_delay_s: 1.0,
        }]);
    }
}
