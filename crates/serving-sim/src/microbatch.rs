//! Micro-batched execution of the pre-decode pipeline stages.
//!
//! A burst of user requests can be split into micro-batches that flow through
//! the stages leading up to the main LLM's prefix (encoder, rewriter,
//! retrieval, reranker, prefix). Two resource regimes are modelled, matching
//! Figure 14 of the paper:
//!
//! * **Pipelined (disaggregated)** — every stage owns its own resources, so
//!   stage `s` can process micro-batch `m` while stage `s+1` processes
//!   micro-batch `m-1`.
//! * **Collocated (time-multiplexed)** — all stages share one accelerator
//!   group; only one (stage, micro-batch) job runs at a time, and the
//!   execution order prioritises finishing later stages early (the "optimal
//!   collocation execution order" of Figure 14).
//!
//! Stage costs are supplied as closures mapping a batch size to a latency, so
//! the caller (typically `rago-core`) can plug in the analytical cost models.

use serde::{Deserialize, Serialize};

/// Per-request completion statistics of a burst pushed through the pre-decode
/// stages.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstResult {
    /// Completion time of the first micro-batch (best-case TTFT contribution).
    pub first_completion_s: f64,
    /// Mean completion time across all requests of the burst.
    pub mean_completion_s: f64,
    /// Completion time of the last request (makespan).
    pub makespan_s: f64,
    /// Number of micro-batches the burst was split into.
    pub num_microbatches: u32,
}

/// Splits `burst` requests into micro-batches of at most `microbatch` each.
fn split(burst: u32, microbatch: u32) -> Vec<u32> {
    assert!(burst > 0, "burst must contain at least one request");
    assert!(microbatch > 0, "micro-batch size must be at least 1");
    let mut sizes = Vec::new();
    let mut remaining = burst;
    while remaining > 0 {
        let b = remaining.min(microbatch);
        sizes.push(b);
        remaining -= b;
    }
    sizes
}

/// Simulates a burst flowing through disaggregated stages (each stage has its
/// own resources and processes micro-batches in order, overlapping with the
/// other stages).
///
/// `stage_latency[s](b)` must return the latency of stage `s` on a batch of
/// `b` requests.
///
/// # Examples
///
/// ```
/// use rago_serving_sim::microbatch::simulate_pipelined_burst;
///
/// // Two stages, 0.1 s per micro-batch each; 8 requests in micro-batches
/// // of 4 pipeline across the stages: 0.2 s for the first batch, then one
/// // more 0.1 s slot for the second.
/// let s1 = |_b: u32| 0.1;
/// let s2 = |_b: u32| 0.1;
/// let stages: Vec<&dyn Fn(u32) -> f64> = vec![&s1, &s2];
/// let r = simulate_pipelined_burst(&stages, 8, 4);
/// assert_eq!(r.num_microbatches, 2);
/// assert!((r.first_completion_s - 0.2).abs() < 1e-12);
/// assert!((r.makespan_s - 0.3).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if there are no stages, the burst is empty, or the micro-batch size
/// is zero.
pub fn simulate_pipelined_burst(
    stage_latency: &[&dyn Fn(u32) -> f64],
    burst: u32,
    microbatch: u32,
) -> BurstResult {
    assert!(!stage_latency.is_empty(), "at least one stage is required");
    let sizes = split(burst, microbatch);
    let stages = stage_latency.len();
    // finish[s] holds the completion time of the previous micro-batch at
    // stage s (0 when none processed yet).
    let mut stage_free = vec![0.0f64; stages];
    let mut completions = Vec::with_capacity(sizes.len());
    let mut prev_stage_done = vec![0.0f64; sizes.len()];
    for (m, &size) in sizes.iter().enumerate() {
        let mut ready = 0.0f64; // burst arrives at t=0
        for (s, latency) in stage_latency.iter().enumerate() {
            let start = ready.max(stage_free[s]);
            let done = start + latency(size);
            stage_free[s] = done;
            ready = done;
        }
        prev_stage_done[m] = ready;
        completions.push((ready, size));
    }
    summarize(&completions, sizes.len() as u32)
}

/// Simulates a burst flowing through stages collocated on a single shared
/// resource: only one (stage, micro-batch) job executes at a time. Jobs become
/// ready when their micro-batch has finished the previous stage; among ready
/// jobs the scheduler picks the one belonging to the **latest** stage (and,
/// within a stage, the earliest micro-batch), which minimizes the average
/// completion time of the final stage (Figure 14's optimal order).
///
/// # Examples
///
/// ```
/// use rago_serving_sim::microbatch::{simulate_collocated_burst, simulate_pipelined_burst};
///
/// let s1 = |b: u32| 0.01 * f64::from(b);
/// let s2 = |b: u32| 0.01 * f64::from(b);
/// let stages: Vec<&dyn Fn(u32) -> f64> = vec![&s1, &s2];
/// let collocated = simulate_collocated_burst(&stages, 8, 4);
/// let pipelined = simulate_pipelined_burst(&stages, 8, 4);
/// // Sharing one resource can never beat dedicated per-stage resources.
/// assert!(pipelined.makespan_s <= collocated.makespan_s + 1e-12);
/// ```
///
/// # Panics
///
/// Panics if there are no stages, the burst is empty, or the micro-batch size
/// is zero.
pub fn simulate_collocated_burst(
    stage_latency: &[&dyn Fn(u32) -> f64],
    burst: u32,
    microbatch: u32,
) -> BurstResult {
    assert!(!stage_latency.is_empty(), "at least one stage is required");
    let sizes = split(burst, microbatch);
    let stages = stage_latency.len();
    let num_mb = sizes.len();
    // next_stage[m] = index of the next stage micro-batch m must execute.
    let mut next_stage = vec![0usize; num_mb];
    // ready_at[m] = time micro-batch m becomes ready for its next stage.
    let mut ready_at = vec![0.0f64; num_mb];
    let mut completions: Vec<(f64, u32)> = vec![(0.0, 0); num_mb];
    let mut now = 0.0f64;
    let mut remaining = num_mb * stages;

    while remaining > 0 {
        // Ready jobs: micro-batches whose next stage exists and whose
        // ready time has passed.
        let candidates: Vec<usize> = (0..num_mb)
            .filter(|&m| next_stage[m] < stages && ready_at[m] <= now + 1e-12)
            .collect();
        if candidates.is_empty() {
            // Advance time to the earliest ready job.
            now = (0..num_mb)
                .filter(|&m| next_stage[m] < stages)
                .map(|m| ready_at[m])
                .fold(f64::INFINITY, f64::min);
            continue;
        }
        // Prefer the job at the latest stage; break ties by micro-batch index.
        let &job = candidates
            .iter()
            .max_by(|&&a, &&b| {
                next_stage[a]
                    .cmp(&next_stage[b])
                    .then(next_stage.len().cmp(&next_stage.len()))
                    .then(b.cmp(&a))
            })
            .expect("candidates is non-empty");
        let s = next_stage[job];
        let latency = stage_latency[s](sizes[job]);
        now += latency;
        next_stage[job] += 1;
        ready_at[job] = now;
        remaining -= 1;
        if next_stage[job] == stages {
            completions[job] = (now, sizes[job]);
        }
    }
    summarize(&completions, num_mb as u32)
}

fn summarize(completions: &[(f64, u32)], num_microbatches: u32) -> BurstResult {
    let first = completions
        .iter()
        .map(|(t, _)| *t)
        .fold(f64::INFINITY, f64::min);
    let makespan = completions.iter().map(|(t, _)| *t).fold(0.0f64, f64::max);
    let total_requests: u32 = completions.iter().map(|(_, n)| *n).sum();
    let weighted: f64 = completions
        .iter()
        .map(|(t, n)| t * f64::from(*n))
        .sum::<f64>();
    BurstResult {
        first_completion_s: first,
        mean_completion_s: weighted / f64::from(total_requests.max(1)),
        makespan_s: makespan,
        num_microbatches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A stage whose latency is `base + per_item * batch`.
    fn affine(base: f64, per_item: f64) -> impl Fn(u32) -> f64 {
        move |b: u32| base + per_item * f64::from(b)
    }

    #[test]
    fn single_batch_equals_sum_of_stage_latencies() {
        let s1 = affine(0.01, 0.001);
        let s2 = affine(0.02, 0.002);
        let stages: Vec<&dyn Fn(u32) -> f64> = vec![&s1, &s2];
        let r = simulate_pipelined_burst(&stages, 8, 8);
        let expected = (0.01 + 0.001 * 8.0) + (0.02 + 0.002 * 8.0);
        assert!((r.makespan_s - expected).abs() < 1e-12);
        assert_eq!(r.num_microbatches, 1);
        assert!((r.first_completion_s - r.makespan_s).abs() < 1e-12);
    }

    #[test]
    fn microbatching_reduces_first_and_mean_completion_for_compute_heavy_stages() {
        // Stages with negligible fixed overhead: smaller batches finish the
        // first requests much earlier (Figure 19b regime).
        let s1 = affine(1e-4, 0.01);
        let s2 = affine(1e-4, 0.02);
        let stages: Vec<&dyn Fn(u32) -> f64> = vec![&s1, &s2];
        let whole = simulate_pipelined_burst(&stages, 32, 32);
        let micro = simulate_pipelined_burst(&stages, 32, 4);
        assert!(micro.first_completion_s < whole.first_completion_s * 0.5);
        assert!(micro.mean_completion_s < whole.mean_completion_s);
        assert_eq!(micro.num_microbatches, 8);
    }

    #[test]
    fn microbatching_does_not_help_latency_floor_stages() {
        // A stage dominated by a fixed per-batch cost (like the vector search
        // below batch 16 in Figure 19a) sees no benefit from smaller batches —
        // and the mean gets worse because later micro-batches queue.
        let s1 = affine(0.05, 1e-5);
        let stages: Vec<&dyn Fn(u32) -> f64> = vec![&s1];
        let whole = simulate_pipelined_burst(&stages, 16, 16);
        let micro = simulate_pipelined_burst(&stages, 16, 2);
        assert!(micro.first_completion_s >= whole.first_completion_s * 0.95);
        assert!(micro.mean_completion_s > whole.mean_completion_s);
    }

    #[test]
    fn pipelined_is_no_slower_than_collocated() {
        let s1 = affine(0.01, 0.005);
        let s2 = affine(0.02, 0.001);
        let s3 = affine(0.005, 0.002);
        let stages: Vec<&dyn Fn(u32) -> f64> = vec![&s1, &s2, &s3];
        for mb in [1u32, 2, 4, 8] {
            let pipe = simulate_pipelined_burst(&stages, 16, mb);
            let col = simulate_collocated_burst(&stages, 16, mb);
            assert!(
                pipe.makespan_s <= col.makespan_s + 1e-9,
                "mb={mb}: pipelined {} > collocated {}",
                pipe.makespan_s,
                col.makespan_s
            );
            assert!(pipe.mean_completion_s <= col.mean_completion_s + 1e-9);
        }
    }

    #[test]
    fn collocated_single_microbatch_matches_serial_sum() {
        let s1 = affine(0.01, 0.001);
        let s2 = affine(0.03, 0.0);
        let stages: Vec<&dyn Fn(u32) -> f64> = vec![&s1, &s2];
        let r = simulate_collocated_burst(&stages, 4, 4);
        let expected = (0.01 + 0.004) + 0.03;
        assert!((r.makespan_s - expected).abs() < 1e-12);
    }

    #[test]
    fn collocated_scheduler_prioritizes_finishing_requests() {
        // With two micro-batches and two stages on a shared resource, the
        // optimal order finishes micro-batch 1's last stage before starting
        // micro-batch 2's first stage (Figure 14(b)): the first completion
        // must equal s1(b) + s2(b), not 2*s1(b) + s2(b).
        let s1 = affine(0.0, 0.01);
        let s2 = affine(0.0, 0.01);
        let stages: Vec<&dyn Fn(u32) -> f64> = vec![&s1, &s2];
        let r = simulate_collocated_burst(&stages, 8, 4);
        assert!(
            (r.first_completion_s - 0.08).abs() < 1e-9,
            "{}",
            r.first_completion_s
        );
        // And the makespan is all four jobs back to back.
        assert!((r.makespan_s - 0.16).abs() < 1e-9);
    }

    #[test]
    fn burst_smaller_than_microbatch_is_one_batch() {
        let s1 = affine(0.01, 0.001);
        let stages: Vec<&dyn Fn(u32) -> f64> = vec![&s1];
        let r = simulate_pipelined_burst(&stages, 3, 16);
        assert_eq!(r.num_microbatches, 1);
    }

    #[test]
    #[should_panic(expected = "micro-batch")]
    fn zero_microbatch_panics() {
        let s1 = affine(0.01, 0.001);
        let stages: Vec<&dyn Fn(u32) -> f64> = vec![&s1];
        let _ = simulate_pipelined_burst(&stages, 4, 0);
    }
}
