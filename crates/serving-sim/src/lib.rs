//! Discrete-event simulation of RAG serving pipelines.
//!
//! The analytical cost models (`rago-accel-sim`, `rago-retrieval-sim`) give
//! the steady-state cost of each stage in isolation. The effects studied by
//! the RAGO paper's system-level evaluation are inherently *dynamic* and need
//! simulation on top of those per-batch costs:
//!
//! * **Iterative-retrieval stalls** (§5.3, Figures 9 and 10): when decoding
//!   pauses to issue mid-generation retrievals, the achieved TPOT depends on
//!   how retrieval requests are batched against the set of actively decoding
//!   sequences. [`iterative::IterativeDecodeSim`] reproduces that behaviour,
//!   including the pure batching-idleness study of Figure 10 (zero-latency
//!   retrieval + prefix).
//! * **Micro-batched execution of the pre-decode stages** (§6.1, Figures 14
//!   and 19): a burst of requests can be split into micro-batches that flow
//!   through the encoder/rewriter/retrieval/rerank/prefix stages either on
//!   disaggregated resources (pipelined) or on one collocated resource
//!   (time-multiplexed with an execution-order policy).
//!   [`microbatch`] computes per-request completion times for both policies.
//! * **Request streams** — the general case subsuming both: [`engine`] is a
//!   request-level discrete-event engine that drives whole requests through
//!   the full pipeline (encode → rewrite → retrieve → rerank → prefix →
//!   decode, with optional iterative retrieval) under any
//!   [`rago_workloads::ArrivalProcess`], with per-resource queues,
//!   continuous batching for decode, and per-request timelines. It reports
//!   TTFT/TPOT distributions, queueing-versus-service breakdown, and SLO
//!   attainment/goodput against a [`rago_schema::SloTarget`] — and it
//!   reproduces the two special-case simulators above as degenerate cases
//!   (`tests/engine_equivalence.rs`).
//! * **Fleets of replicas** — the scale dimension on top of all three:
//!   [`cluster::ClusterEngine`] runs N replicas of a pipeline (optionally
//!   heterogeneous) behind a state-aware router
//!   ([`rago_schema::RouterPolicy`]), dispatching a shared arrival stream
//!   and merging the runs into fleet-level metrics with per-replica
//!   breakdowns and load-imbalance statistics. A one-replica fleet
//!   reproduces [`engine::ServingEngine::run`] exactly
//!   (`tests/proptest_cluster.rs`).
//! * **Time-varying traffic and autoscaling** — the fleet size itself as a
//!   dynamic quantity: [`autoscaler::AutoscaleEngine`] re-evaluates a
//!   reactive [`autoscaler::AutoscalerPolicy`] while the simulation runs,
//!   scaling out on queue-depth (or recent-SLO-attainment) triggers,
//!   scaling in only after a cooldown, and holding new replicas out of the
//!   router during their warm-up — the provisioning loop a diurnal or spiky
//!   [`rago_workloads::ArrivalProcess`] exercises. Requests carry
//!   workload-class tags ([`rago_workloads::WorkloadMix`]), and every
//!   report breaks metrics down per tenant class
//!   ([`engine::ClassMetrics`]).
//! * **Faults, admission control, and planned scaling** — the chaos
//!   dimension: [`faults::ChaosEngine`] wraps the same replica fleet with a
//!   deterministic [`faults::FaultSchedule`] (replica crashes with cold
//!   restarts, stragglers, spot preemptions with advance notice), SLO-aware
//!   admission control that sheds excess load in priority order
//!   ([`faults::AdmissionConfig`]), and a third scaling driver — a
//!   [`faults::PredictivePolicy`] that executes a precomputed
//!   [`faults::ScalingPlan`] instead of reacting to queue depth. Reports
//!   add a fault ledger, per-class shed counts, windowed attainment
//!   timelines, and per-disruption recovery metrics
//!   ([`faults::RecoveryMetrics`]). With no faults and no admission
//!   config, the chaos engine is bit-identical to the engines it wraps
//!   (`tests/proptest_faults.rs`, `tests/golden_regression.rs`).
//! * **Disaggregated prefill/decode pools** — the placement dimension:
//!   [`pools::DisaggEngine`] splits the fleet into a typed Prefill pool and
//!   a Decode pool (Splitwise/DistServe style). A request finishing its
//!   pre-decode stages on a prefill replica emits its first token there and
//!   hands its KV state across the interconnect — priced by a
//!   [`rago_schema::KvTransferModel`] — before a phase-aware
//!   [`pools::PoolRouter`] re-injects it into a decode replica. Crashes are
//!   per pool: un-transferred work re-queues to prefill survivors only. A
//!   1+1 split at zero transfer cost reproduces the monolithic engine's
//!   per-request timings exactly (`tests/proptest_pools.rs`).
//! * **Caching** — the content-reuse dimension on top of everything: a
//!   [`engine::CachePlan`] attaches the deterministic cache simulators of
//!   `rago-cache` to a pipeline. Each replica owns cold, replica-local
//!   cache state: a prefix-KV hit charges the prefix stage only for the
//!   uncached token suffix, a retrieval-result hit skips the retrieve and
//!   rerank stages outright, and the content-aware router policies
//!   (`PrefixHash`, `CacheAffinity`) steer requests toward the replica
//!   owning their template. Reports carry hit/miss/eviction counters
//!   ([`engine::CacheUsage`]), and identity-free or zero-capacity runs are
//!   bit-identical to the cache-less engine.
//!
//! # Examples
//!
//! ```
//! use rago_serving_sim::iterative::{IterativeDecodeParams, IterativeDecodeSim};
//!
//! // 64 decoding sequences, 4 retrievals each, retrieval batch of 16.
//! let params = IterativeDecodeParams {
//!     decode_batch: 64,
//!     iterative_batch: 16,
//!     decode_len: 256,
//!     retrievals_per_sequence: 4,
//!     step_latency_s: 5e-3,
//!     retrieval_prefix_latency_s: 0.05,
//!     seed: 7,
//! };
//! let result = IterativeDecodeSim::new(params).run();
//! assert!(result.tpot_worst_s >= result.tpot_mean_s);
//! assert!(result.normalized_decode_latency >= 1.0);
//! ```
//!
//! Driving a Poisson request stream through a two-stage pipeline with the
//! request-level engine:
//!
//! ```
//! use rago_serving_sim::engine::{DecodeSpec, LatencyTable, PipelineSpec, ServingEngine, StageSpec};
//! use rago_workloads::{ArrivalProcess, TraceSpec};
//! use rago_schema::SequenceProfile;
//!
//! let spec = PipelineSpec::new(
//!     vec![StageSpec::new("prefix", 0, 8, LatencyTable::constant(8, 0.02))],
//!     DecodeSpec::new(32, LatencyTable::constant(32, 3e-3)),
//! );
//! let trace = TraceSpec {
//!     num_requests: 40,
//!     profile: SequenceProfile::paper_default().with_decode_tokens(16),
//!     arrival: ArrivalProcess::Poisson { rate_rps: 30.0 },
//!     length_jitter: 0.0,
//!     seed: 1,
//! }
//! .generate();
//! let report = ServingEngine::from_trace(spec, &trace).run();
//! assert_eq!(report.metrics.completed, 40);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autoscaler;
pub mod cluster;
pub mod engine;
mod equeue;
pub mod faults;
pub mod iterative;
pub mod microbatch;
pub mod pools;
pub mod sink;
pub mod telemetry;

pub use autoscaler::{
    AttainmentTrigger, AutoscaleEngine, AutoscaleReport, AutoscalerPolicy, ReplicaLifetime,
    ScalingAction, ScalingEvent,
};
pub use cluster::{ClusterEngine, FleetReport, LoadImbalance, ReplicaReport};
pub use engine::{
    sustained_throughput_knee, CachePlan, CacheProbe, CacheUsage, ClassCacheUsage, ClassMetrics,
    DecodeSpec, EngineRequest, IterativeSpec, LatencyStats, LatencyTable, PipelineSpec,
    RequestTimeline, ServingEngine, ServingMetrics, ServingReport, StageSpec,
};
pub use equeue::EventQueueStats;
pub use faults::{
    AdmissionConfig, AttainmentWindow, ChaosEngine, ChaosReport, ClassShed, CrashPolicy,
    Disruption, FaultEvent, FaultKind, FaultReport, FaultSchedule, PlanStep, PredictivePolicy,
    RecoveryMetrics, ScaleDriver, ScalingPlan, ShedEvent,
};
pub use iterative::{IterativeDecodeParams, IterativeDecodeResult, IterativeDecodeSim};
pub use microbatch::{simulate_collocated_burst, simulate_pipelined_burst, BurstResult};
pub use pools::{DisaggEngine, DisaggReport, PoolCrash, PoolReport, PoolRouter, TransferStats};
pub use sink::{
    ClassSloScore, ExactSink, HistogramSink, LatencyHistogram, MetricsMode, MetricsSink,
    RequestOutcome, StreamedScores, StreamingConfig,
};
pub use telemetry::{
    profile_from_stats, record_cache_probes, record_load_gauges, record_request_spans,
};
