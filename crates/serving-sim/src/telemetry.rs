//! Post-hoc trace derivation: turns the engines' deterministic ledgers —
//! [`RequestTimeline`]s, cache-probe logs, event-queue stats — into
//! [`rago_telemetry`] event streams.
//!
//! The design keeps the hot paths recorder-free: the DES loops record
//! almost nothing live (only router picks and KV-transfer deliveries,
//! which happen in serial orchestration code). Everything else is derived
//! *after* the run from state the engines already produce, in a
//! deterministic order — per-replica ledgers walked in replica-index
//! order, requests in ledger order — so a seeded run yields a
//! byte-identical event stream on any worker count.
//!
//! Spans and gauges need retained timelines, so they are only derivable
//! under [`crate::sink::MetricsMode::Exact`]; a streaming run still gets
//! decision events and self-profiling counters.

use crate::engine::{CacheProbe, EngineRequest, ReplicaSim, RequestTimeline};
use crate::equeue::EventQueueStats;
use rago_schema::RouterPolicy;
use rago_telemetry::{Lane, Recorder, SimProfile, TraceEvent};

/// Records one router decision: which replica the pick landed on (the
/// event's track), and *why* — the policy plus the chosen replica's live
/// load at pick time. Called from the serial routing loops only, so the
/// event order is the arrival order regardless of worker count.
pub(crate) fn record_route_pick<R: Recorder>(
    rec: &mut R,
    time_s: f64,
    router: RouterPolicy,
    replica: usize,
    req: &EngineRequest,
    sim: &ReplicaSim,
) {
    if !R::ENABLED {
        return;
    }
    rec.record(
        TraceEvent::instant(time_s, replica as u32, Lane::Decision, "route.pick")
            .with_req(req.id)
            .with_class(req.class)
            .with_value(replica as f64)
            .with_detail(format!(
                "policy={router} outstanding={} queued={} decode_fill={:.3}",
                sim.outstanding(),
                sim.queued(),
                sim.decode_fill_fraction(),
            )),
    );
}

/// Records one completed KV-cache handoff as a span on the Transfer lane
/// of the receiving decode replica's track: begin when the prefill leg
/// emitted the handoff, end at delivery, payload bytes as the value.
pub(crate) fn record_kv_transfer<R: Recorder>(
    rec: &mut R,
    track: u32,
    delivered_s: f64,
    latency_s: f64,
    bytes: f64,
    req: &EngineRequest,
) {
    if !R::ENABLED {
        return;
    }
    rec.record(
        TraceEvent::begin(
            delivered_s - latency_s,
            track,
            Lane::Transfer,
            "kv_transfer",
        )
        .with_req(req.id)
        .with_class(req.class),
    );
    rec.record(
        TraceEvent::end(delivered_s, track, Lane::Transfer, "kv_transfer")
            .with_req(req.id)
            .with_class(req.class)
            .with_value(bytes),
    );
}

/// When the request first entered service: its first executed pre-decode
/// stage, or its decode join for stage-less pipelines. `None` for a
/// request that died waiting.
fn service_start_s(tl: &RequestTimeline) -> Option<f64> {
    tl.stage_starts_s
        .iter()
        .copied()
        .find(|s| s.is_finite())
        .or_else(|| tl.decode_join_s.is_finite().then_some(tl.decode_join_s))
}

/// Records the per-request lifecycle spans of `timelines` onto `track`:
/// a `queue` span from arrival to first service, one `stage N` span per
/// executed pre-decode stage, a `decode` residency span, and a
/// `first_token` instant. Unfinished phases (a request that died mid-run)
/// emit nothing, so every recorded begin has a matching end.
pub fn record_request_spans<R: Recorder>(rec: &mut R, track: u32, timelines: &[RequestTimeline]) {
    if !R::ENABLED {
        return;
    }
    for tl in timelines {
        if let Some(start) = service_start_s(tl) {
            rec.record(
                TraceEvent::begin(tl.arrival_s, track, Lane::Request, "queue")
                    .with_req(tl.id)
                    .with_class(tl.class),
            );
            rec.record(
                TraceEvent::end(start, track, Lane::Request, "queue")
                    .with_req(tl.id)
                    .with_class(tl.class),
            );
        }
        for (i, (&s, &e)) in tl
            .stage_starts_s
            .iter()
            .zip(tl.stage_ends_s.iter())
            .enumerate()
        {
            if s.is_finite() && e.is_finite() && e >= s {
                let name = format!("stage {i}");
                rec.record(
                    TraceEvent::begin(s, track, Lane::Request, name.clone())
                        .with_req(tl.id)
                        .with_class(tl.class),
                );
                rec.record(
                    TraceEvent::end(e, track, Lane::Request, name)
                        .with_req(tl.id)
                        .with_class(tl.class),
                );
            }
        }
        if tl.decode_join_s.is_finite() && tl.completion_s.is_finite() {
            rec.record(
                TraceEvent::begin(tl.decode_join_s, track, Lane::Request, "decode")
                    .with_req(tl.id)
                    .with_class(tl.class),
            );
            rec.record(
                TraceEvent::end(tl.completion_s, track, Lane::Request, "decode")
                    .with_req(tl.id)
                    .with_class(tl.class)
                    .with_value(f64::from(tl.decode_tokens)),
            );
        }
        if tl.first_token_s.is_finite() {
            rec.record(
                TraceEvent::instant(tl.first_token_s, track, Lane::Request, "first_token")
                    .with_req(tl.id)
                    .with_class(tl.class),
            );
        }
    }
}

/// Records one instant per cache probe (`cache.prefix.hit`,
/// `cache.retrieval.miss`, ...) onto `track`, with prefix hit-tokens as
/// the value.
pub fn record_cache_probes<R: Recorder>(rec: &mut R, track: u32, probes: &[CacheProbe]) {
    if !R::ENABLED {
        return;
    }
    for p in probes {
        let name = match (p.prefix, p.hit) {
            (true, true) => "cache.prefix.hit",
            (true, false) => "cache.prefix.miss",
            (false, true) => "cache.retrieval.hit",
            (false, false) => "cache.retrieval.miss",
        };
        let mut ev = TraceEvent::instant(p.time_s, track, Lane::Request, name)
            .with_req(p.id)
            .with_class(p.class);
        if p.prefix {
            ev = ev.with_value(f64::from(p.hit_tokens));
        }
        rec.record(ev);
    }
}

/// Samples `queue_depth` (arrived but not yet in service) and
/// `decode_fill` (resident in the decode batch) gauges from `timelines`
/// every `cadence_s` simulated seconds over `[0, end_s]`, onto `track`.
/// No-op when the cadence is zero or negative.
pub fn record_load_gauges<R: Recorder>(
    rec: &mut R,
    track: u32,
    timelines: &[RequestTimeline],
    cadence_s: f64,
    end_s: f64,
) {
    if !R::ENABLED || cadence_s <= 0.0 || !end_s.is_finite() {
        return;
    }
    // Delta lists: +1 when a request enters the state, -1 when it leaves.
    let mut queue: Vec<(f64, i64)> = Vec::with_capacity(2 * timelines.len());
    let mut decode: Vec<(f64, i64)> = Vec::with_capacity(2 * timelines.len());
    for tl in timelines {
        if let Some(start) = service_start_s(tl) {
            queue.push((tl.arrival_s, 1));
            queue.push((start, -1));
        }
        if tl.decode_join_s.is_finite() && tl.completion_s.is_finite() {
            decode.push((tl.decode_join_s, 1));
            decode.push((tl.completion_s, -1));
        }
    }
    queue.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    decode.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

    let samples = (end_s / cadence_s).floor() as u64;
    let (mut qi, mut di) = (0usize, 0usize);
    let (mut qlevel, mut dlevel) = (0i64, 0i64);
    for k in 0..=samples {
        let t = k as f64 * cadence_s;
        while qi < queue.len() && queue[qi].0 <= t {
            qlevel += queue[qi].1;
            qi += 1;
        }
        while di < decode.len() && decode[di].0 <= t {
            dlevel += decode[di].1;
            di += 1;
        }
        rec.record(TraceEvent::counter(
            t,
            track,
            Lane::Gauge,
            "queue_depth",
            qlevel as f64,
        ));
        rec.record(TraceEvent::counter(
            t,
            track,
            Lane::Gauge,
            "decode_fill",
            dlevel as f64,
        ));
    }
}

/// Records one decision instant per scaling action: `autoscale.scale_out`
/// or `autoscale.scale_in` on the affected replica's track, with the
/// observed mean queue depth (the queue trigger's input) as the value and
/// the full post-action fleet shape in the detail.
pub(crate) fn record_scaling_events<R: Recorder>(
    rec: &mut R,
    events: &[crate::autoscaler::ScalingEvent],
) {
    if !R::ENABLED {
        return;
    }
    for ev in events {
        let name = match ev.action {
            crate::autoscaler::ScalingAction::ScaleOut => "autoscale.scale_out",
            crate::autoscaler::ScalingAction::ScaleIn => "autoscale.scale_in",
        };
        rec.record(
            TraceEvent::instant(ev.time_s, ev.replica as u32, Lane::Decision, name)
                .with_value(ev.mean_queue_depth)
                .with_detail(format!(
                    "provisioned_after={} routable_after={} mean_outstanding={:.3}",
                    ev.provisioned_after, ev.routable_after, ev.mean_outstanding,
                )),
        );
    }
}

/// Records replica lifecycle instants from the provisioning ledger:
/// `replica.provisioned`, `replica.routable`, and (when it happened)
/// `replica.decommissioned`, each on the replica's own track.
pub(crate) fn record_replica_lifetimes<R: Recorder>(
    rec: &mut R,
    lifetimes: &[crate::autoscaler::ReplicaLifetime],
) {
    if !R::ENABLED {
        return;
    }
    for lt in lifetimes {
        let track = lt.replica as u32;
        rec.record(TraceEvent::instant(
            lt.provisioned_s,
            track,
            Lane::Decision,
            "replica.provisioned",
        ));
        rec.record(TraceEvent::instant(
            lt.routable_s,
            track,
            Lane::Decision,
            "replica.routable",
        ));
        if let Some(d) = lt.decommissioned_s {
            rec.record(TraceEvent::instant(
                d,
                track,
                Lane::Decision,
                "replica.decommissioned",
            ));
        }
    }
}

/// Records one decision instant per admission shed: `admission.shed` on
/// the fleet track, with the mean queue depth that triggered the shed as
/// the value and the request's priority in the detail.
pub(crate) fn record_shed_events<R: Recorder>(rec: &mut R, shed_log: &[crate::faults::ShedEvent]) {
    if !R::ENABLED {
        return;
    }
    for ev in shed_log {
        rec.record(
            TraceEvent::instant(
                ev.time_s,
                rago_telemetry::FLEET_TRACK,
                Lane::Decision,
                "admission.shed",
            )
            .with_req(ev.id)
            .with_class(ev.class)
            .with_value(ev.mean_queue_depth)
            .with_detail(format!("priority={}", ev.priority)),
        );
    }
}

/// Records one decision instant per capacity disruption (`fault.crash`,
/// `fault.preemption`) on the struck replica's track.
pub(crate) fn record_disruptions<R: Recorder>(
    rec: &mut R,
    disruptions: &[crate::faults::Disruption],
) {
    if !R::ENABLED {
        return;
    }
    for d in disruptions {
        let name = match d.kind {
            crate::faults::FaultKind::Crash => "fault.crash",
            crate::faults::FaultKind::Preemption => "fault.preemption",
        };
        rec.record(TraceEvent::instant(
            d.time_s,
            d.replica as u32,
            Lane::Decision,
            name,
        ));
    }
}

/// Samples a fleet-track `routable_replicas` gauge from the provisioning
/// ledger every `cadence_s` simulated seconds over `[0, end_s]`.
pub(crate) fn record_routable_gauge<R: Recorder>(
    rec: &mut R,
    lifetimes: &[crate::autoscaler::ReplicaLifetime],
    cadence_s: f64,
    end_s: f64,
) {
    if !R::ENABLED || cadence_s <= 0.0 || !end_s.is_finite() {
        return;
    }
    let mut deltas: Vec<(f64, i64)> = Vec::with_capacity(2 * lifetimes.len());
    for lt in lifetimes {
        deltas.push((lt.routable_s, 1));
        if let Some(d) = lt.decommissioned_s {
            deltas.push((d, -1));
        }
    }
    deltas.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let samples = (end_s / cadence_s).floor() as u64;
    let mut i = 0usize;
    let mut level = 0i64;
    for k in 0..=samples {
        let t = k as f64 * cadence_s;
        while i < deltas.len() && deltas[i].0 <= t {
            level += deltas[i].1;
            i += 1;
        }
        rec.record(TraceEvent::counter(
            t,
            rago_telemetry::FLEET_TRACK,
            Lane::Gauge,
            "routable_replicas",
            level as f64,
        ));
    }
}

/// Folds one event queue's counters (plus the DES event total) into a
/// [`SimProfile`].
pub fn profile_from_stats(stats: &EventQueueStats, events: u64, sim_time_s: f64) -> SimProfile {
    SimProfile {
        sim_time_s,
        events,
        fault_pops: stats.fault_pops,
        arrival_pops: stats.arrival_pops,
        scheduled_pops: stats.scheduled_pops,
        calendar_rebuilds: stats.rebuilds,
        calendar_fallback_scans: stats.fallback_scans,
        calendar_buckets: stats.buckets,
        calendar_width_s: stats.width_s,
        ..SimProfile::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rago_telemetry::{Phase, TelemetryConfig, TraceRecorder};

    fn finished(id: u64) -> RequestTimeline {
        RequestTimeline {
            id,
            arrival_s: 0.0,
            stage_starts_s: vec![1.0],
            stage_ends_s: vec![2.0],
            class: 3,
            decode_join_s: 2.0,
            first_token_s: 2.0,
            completion_s: 5.0,
            queueing_s: 1.0,
            decode_tokens: 16,
        }
    }

    fn dead_in_queue(id: u64) -> RequestTimeline {
        RequestTimeline {
            id,
            arrival_s: 0.5,
            stage_starts_s: vec![f64::NEG_INFINITY],
            stage_ends_s: vec![f64::NEG_INFINITY],
            class: 0,
            decode_join_s: f64::NEG_INFINITY,
            first_token_s: f64::NEG_INFINITY,
            completion_s: f64::NEG_INFINITY,
            queueing_s: 0.0,
            decode_tokens: 8,
        }
    }

    #[test]
    fn spans_balance_even_for_dead_requests() {
        let mut rec = TraceRecorder::new(TelemetryConfig::full(0.0));
        record_request_spans(&mut rec, 0, &[finished(1), dead_in_queue(2)]);
        let begins = rec
            .events()
            .iter()
            .filter(|e| e.phase == Phase::Begin)
            .count();
        let ends = rec
            .events()
            .iter()
            .filter(|e| e.phase == Phase::End)
            .count();
        assert_eq!(begins, ends);
        assert_eq!(
            begins, 3,
            "queue + stage 0 + decode for the finished request"
        );
        assert!(rec.events().iter().all(|e| e.req != Some(2)));
    }

    #[test]
    fn gauges_track_queue_and_decode_levels() {
        let mut rec = TraceRecorder::new(TelemetryConfig::full(1.0));
        record_load_gauges(&mut rec, 0, &[finished(1)], 1.0, 6.0);
        let at = |t: f64, name: &str| {
            rec.events()
                .iter()
                .find(|e| e.time_s == t && e.name == name)
                .and_then(|e| e.value)
                .expect("gauge sample present")
        };
        assert_eq!(at(0.0, "queue_depth"), 1.0);
        assert_eq!(at(1.0, "queue_depth"), 0.0);
        assert_eq!(at(2.0, "decode_fill"), 1.0);
        assert_eq!(at(5.0, "decode_fill"), 0.0);
        assert_eq!(rec.events().len(), 2 * 7);
    }
}
