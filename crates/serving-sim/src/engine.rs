//! A request-level discrete-event serving engine for the full RAG pipeline.
//!
//! The two special-case simulators in this crate answer narrow questions:
//! [`crate::iterative`] models one decode batch with mid-generation
//! retrievals, and [`crate::microbatch`] pushes one burst through the
//! pre-decode stages. This module generalizes both into a single engine that
//! drives **whole requests** — encode → rewrite → retrieve → rerank → prefix
//! → decode, with optional iterative retrieval — from their arrival
//! timestamps to their last generated token, under any arrival process from
//! `rago-workloads`:
//!
//! * **Per-resource queues.** Every pipeline stage is mapped to a resource
//!   (an accelerator group or the retrieval CPU pool). A resource executes
//!   one micro-batch at a time; stages collocated on the same resource
//!   compete for it, and the dispatcher prefers the *latest* stage (the
//!   optimal collocation execution order of Figure 14). Dispatch is
//!   work-conserving: a free resource immediately takes up to
//!   [`StageSpec::batch`] queued requests rather than waiting for a full
//!   batch.
//! * **Continuous batching for decode.** Requests join the decode batch as
//!   soon as a slot frees up and leave on their final token; membership
//!   changes at step boundaries, and the step latency follows the current
//!   batch fill through a [`LatencyTable`].
//! * **Iterative retrieval.** With an [`IterativeSpec`], sequences pause at
//!   sampled token positions and their retrievals dispatch in batches,
//!   exactly as in [`crate::iterative::IterativeDecodeSim`] — the engine
//!   reproduces that simulator's numbers when configured as its degenerate
//!   case (see `tests/engine_equivalence.rs`).
//!
//! The result is a [`ServingReport`]: a per-request [`RequestTimeline`] and
//! aggregate [`ServingMetrics`] — TTFT/TPOT distributions (p50/p95/p99),
//! queueing-versus-service breakdown, and throughput — plus SLO attainment
//! and goodput against a [`rago_schema::SloTarget`].
//!
//! # Examples
//!
//! ```
//! use rago_serving_sim::engine::{
//!     DecodeSpec, LatencyTable, PipelineSpec, ServingEngine, StageSpec,
//! };
//! use rago_schema::SloTarget;
//! use rago_workloads::{ArrivalProcess, TraceSpec};
//! use rago_schema::SequenceProfile;
//!
//! // Retrieval on its own CPU pool, then prefix on an XPU group.
//! let spec = PipelineSpec::new(
//!     vec![
//!         StageSpec::new("retrieval", 0, 16, LatencyTable::from_fn(16, |b| 0.02 + 1e-4 * f64::from(b))),
//!         StageSpec::new("prefix", 1, 8, LatencyTable::from_fn(8, |b| 0.01 * f64::from(b))),
//!     ],
//!     DecodeSpec::new(64, LatencyTable::constant(64, 5e-3)),
//! );
//! let trace = TraceSpec {
//!     num_requests: 50,
//!     profile: SequenceProfile::paper_default().with_decode_tokens(32),
//!     arrival: ArrivalProcess::Poisson { rate_rps: 20.0 },
//!     length_jitter: 0.0,
//!     seed: 7,
//! }
//! .generate();
//! let report = ServingEngine::from_trace(spec, &trace).run();
//! assert_eq!(report.metrics.completed, 50);
//! assert!(report.metrics.ttft.p99_s >= report.metrics.ttft.p50_s);
//! let slo = SloTarget::new(1.0, 0.05);
//! assert!(report.attainment(&slo) > 0.0);
//! ```

use crate::equeue::EventQueue;
use crate::iterative::sample_positions;
use rago_cache::{
    CacheConfig, CacheCounters, PrefixKvCache, PrefixLookup, RetrievalLookup, RetrievalResultCache,
};
use rago_schema::SloTarget;
use rago_workloads::{ContentIdentity, Request, Trace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Tolerance used when comparing event timestamps, matching the resume
/// tolerance of [`crate::iterative::IterativeDecodeSim`].
const TIME_EPS: f64 = 1e-12;

/// A latency model as a table indexed by batch fill (1-based), saturating at
/// the largest entry.
///
/// Tables keep the engine configuration concrete and cheap to evaluate: the
/// caller (typically `rago-core`) samples its analytical cost models once per
/// fill level instead of handing the engine a closure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyTable {
    per_fill: Vec<f64>,
}

impl LatencyTable {
    /// Builds a table from per-fill latencies (`per_fill[b - 1]` is the
    /// latency of a batch of `b`).
    ///
    /// # Panics
    ///
    /// Panics if the table is empty or any entry is negative or non-finite.
    pub fn from_table(per_fill: Vec<f64>) -> Self {
        assert!(
            !per_fill.is_empty(),
            "a latency table needs at least one entry"
        );
        assert!(
            per_fill.iter().all(|l| l.is_finite() && *l >= 0.0),
            "latencies must be finite and non-negative"
        );
        Self { per_fill }
    }

    /// Samples `f` at every fill in `1..=max_batch`.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero or `f` produces a negative or non-finite
    /// latency.
    pub fn from_fn(max_batch: u32, f: impl Fn(u32) -> f64) -> Self {
        assert!(max_batch > 0, "max_batch must be at least 1");
        Self::from_table((1..=max_batch).map(f).collect())
    }

    /// A fill-independent latency.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero or the latency is negative or
    /// non-finite.
    pub fn constant(max_batch: u32, latency_s: f64) -> Self {
        Self::from_fn(max_batch, |_| latency_s)
    }

    /// The latency of a batch of `fill` requests (saturating above the
    /// table).
    pub fn latency(&self, fill: u32) -> f64 {
        let idx = (fill.max(1) as usize - 1).min(self.per_fill.len() - 1);
        self.per_fill[idx]
    }

    /// The largest fill the table distinguishes.
    pub fn max_fill(&self) -> u32 {
        self.per_fill.len() as u32
    }
}

/// One pre-decode pipeline stage: its resource, micro-batch cap, and latency
/// model.
#[derive(Debug, Clone)]
pub struct StageSpec {
    /// Stage name used in reports (e.g. `"retrieval"`, `"prefix"`).
    pub name: String,
    /// Index of the resource executing this stage. Stages sharing an index
    /// are collocated (time-multiplexed with latest-stage-first priority);
    /// distinct indices run disaggregated (pipelined).
    pub resource: usize,
    /// Maximum micro-batch size dispatched to this stage at once.
    pub batch: u32,
    /// Latency of one micro-batch as a function of its fill.
    pub latency: LatencyTable,
}

impl StageSpec {
    /// Creates a stage spec.
    ///
    /// # Panics
    ///
    /// Panics if the batch cap is zero.
    pub fn new(
        name: impl Into<String>,
        resource: usize,
        batch: u32,
        latency: LatencyTable,
    ) -> Self {
        assert!(batch > 0, "stage micro-batch must be at least 1");
        Self {
            name: name.into(),
            resource,
            batch,
            latency,
        }
    }
}

/// The decode stage under continuous batching.
#[derive(Debug, Clone)]
pub struct DecodeSpec {
    /// Maximum number of resident sequences (active or paused) in the decode
    /// batch — paused sequences keep their slot because their KV cache stays
    /// on the accelerator.
    pub max_batch: u32,
    /// Latency of one decode step as a function of the number of sequences
    /// actively stepping.
    pub step_latency: LatencyTable,
}

impl DecodeSpec {
    /// Creates a decode spec.
    ///
    /// # Panics
    ///
    /// Panics if the batch cap is zero or any step latency is not strictly
    /// positive (a zero-latency decode step would let simulated time stall).
    pub fn new(max_batch: u32, step_latency: LatencyTable) -> Self {
        assert!(max_batch > 0, "decode batch must be at least 1");
        assert!(
            (1..=step_latency.max_fill()).all(|f| step_latency.latency(f) > 0.0),
            "decode step latency must be strictly positive"
        );
        Self {
            max_batch,
            step_latency,
        }
    }
}

/// Iterative mid-generation retrieval configuration (Case III).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterativeSpec {
    /// Retrievals each sequence issues *during* generation (beyond the
    /// pre-decode retrieval). Zero disables pausing.
    pub retrievals_per_sequence: u32,
    /// Batch size of the iterative retrieval + re-prefix pass.
    pub iterative_batch: u32,
    /// Latency of one iterative retrieval + re-prefix pass, in seconds.
    pub retrieval_prefix_latency_s: f64,
    /// RNG seed controlling the per-sequence trigger positions (same scheme
    /// as [`crate::iterative::IterativeDecodeParams::seed`]).
    pub seed: u64,
}

/// How the caches of `rago-cache` attach to a pipeline: which capacities to
/// provision per replica, and which stage indices they act on.
///
/// Every replica built from a spec with a cache plan owns *its own* cache
/// state, created cold — a freshly provisioned autoscaler replica therefore
/// pays cache warm-up on top of its provisioning warm-up window.
#[derive(Debug, Clone, PartialEq)]
pub struct CachePlan {
    /// The cache capacities and policies (a zero-capacity half always
    /// misses, reproducing the cache-less run bit-exactly).
    pub config: CacheConfig,
    /// Index of the main-prefix stage in [`PipelineSpec::stages`]: a
    /// prefix-KV hit charges this stage's latency only for the uncached
    /// token suffix of the micro-batch. Required when
    /// [`CacheConfig::prefix`] is configured.
    pub prefix_stage: Option<usize>,
    /// Stage indices a retrieval-result hit skips entirely (retrieve +
    /// rerank), strictly ascending.
    pub retrieval_stages: Vec<usize>,
}

/// A complete serving pipeline: the ordered pre-decode stages, the decode
/// stage, optional iterative retrieval, and optional caches.
#[derive(Debug, Clone)]
pub struct PipelineSpec {
    /// Pre-decode stages in pipeline order (may be empty for decode-only
    /// studies).
    pub stages: Vec<StageSpec>,
    /// The decode stage.
    pub decode: DecodeSpec,
    /// Iterative retrieval, or `None` when decoding never pauses.
    pub iterative: Option<IterativeSpec>,
    /// Cache plan, or `None` for the cache-less pipeline.
    pub cache: Option<CachePlan>,
    /// `true` for a prefill-pool replica in a disaggregated fleet: a
    /// request *completes* at the end of its last pre-decode stage —
    /// emitting its first token and a KV-handoff record for the cross-pool
    /// transfer — instead of joining decode admission. The decode spec is
    /// carried but never exercised.
    pub handoff: bool,
}

impl PipelineSpec {
    /// Creates a pipeline without iterative retrieval or caches.
    pub fn new(stages: Vec<StageSpec>, decode: DecodeSpec) -> Self {
        Self {
            stages,
            decode,
            iterative: None,
            cache: None,
            handoff: false,
        }
    }

    /// Marks the pipeline as a prefill-pool replica (see
    /// [`PipelineSpec::handoff`]).
    ///
    /// # Panics
    ///
    /// Panics when the pipeline has no pre-decode stages (nothing to
    /// prefill) or carries iterative retrieval (a decode-phase feature).
    #[must_use]
    pub fn with_handoff(mut self) -> Self {
        assert!(
            !self.stages.is_empty(),
            "a prefill-pool replica needs at least one pre-decode stage"
        );
        assert!(
            self.iterative.is_none(),
            "iterative retrieval is a decode-phase feature; a prefill-pool \
             replica cannot carry it"
        );
        self.handoff = true;
        self
    }

    /// The decode-only counterpart of a prefill-pool replica: no pre-decode
    /// stages, so every arriving request (a completed KV transfer) goes
    /// straight to decode admission.
    pub fn decode_only(decode: DecodeSpec, iterative: Option<IterativeSpec>) -> Self {
        let base = Self::new(Vec::new(), decode);
        match iterative {
            Some(it) => base.with_iterative(it),
            None => base,
        }
    }

    /// Attaches a cache plan. Each replica simulation instantiates its own
    /// cold caches from it.
    ///
    /// # Panics
    ///
    /// Panics if a referenced stage index is out of range, the retrieval
    /// stages are not strictly ascending, the prefix stage is also listed as
    /// a retrieval stage, or a prefix cache is configured without naming a
    /// prefix stage.
    pub fn with_cache(mut self, plan: CachePlan) -> Self {
        if let Some(stage) = plan.prefix_stage {
            assert!(
                stage < self.stages.len(),
                "prefix stage {stage} is out of range for {} stages",
                self.stages.len()
            );
        }
        assert!(
            plan.config.prefix.is_none() || plan.prefix_stage.is_some(),
            "a prefix-KV cache needs a prefix stage to act on"
        );
        assert!(
            plan.config.retrieval.is_none() || !plan.retrieval_stages.is_empty(),
            "a retrieval-result cache needs at least one retrieval stage to skip \
             (otherwise it would report hits that save no work)"
        );
        assert!(
            plan.retrieval_stages.windows(2).all(|w| w[0] < w[1]),
            "retrieval stages must be strictly ascending"
        );
        for &stage in &plan.retrieval_stages {
            assert!(
                stage < self.stages.len(),
                "retrieval stage {stage} is out of range for {} stages",
                self.stages.len()
            );
            assert!(
                plan.prefix_stage != Some(stage),
                "stage {stage} cannot be both the prefix stage and a skipped retrieval stage"
            );
        }
        self.cache = Some(plan);
        self
    }

    /// Adds iterative mid-generation retrieval.
    ///
    /// # Panics
    ///
    /// Panics if the iterative batch is zero while retrievals are requested,
    /// or the retrieval latency is negative or non-finite.
    pub fn with_iterative(mut self, iterative: IterativeSpec) -> Self {
        assert!(
            iterative.retrievals_per_sequence == 0 || iterative.iterative_batch > 0,
            "iterative_batch must be at least 1 when retrievals are issued"
        );
        assert!(
            iterative.retrieval_prefix_latency_s.is_finite()
                && iterative.retrieval_prefix_latency_s >= 0.0,
            "retrieval latency must be finite and non-negative"
        );
        self.iterative = Some(iterative);
        self
    }

    /// Number of distinct resources referenced by the pre-decode stages.
    pub fn num_resources(&self) -> usize {
        self.stages
            .iter()
            .map(|s| s.resource + 1)
            .max()
            .unwrap_or(0)
    }
}

/// One request entering the engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineRequest {
    /// Request identifier carried through to the timeline.
    pub id: u64,
    /// Arrival time in seconds.
    pub arrival_s: f64,
    /// Prompt-prefix length in tokens. Only consulted by the prefix-KV
    /// cache (to apportion prefill cost between cached prefix and uncached
    /// suffix); cache-less pipelines ignore it entirely, so untagged test
    /// requests may leave it zero.
    pub prefix_tokens: u32,
    /// Output tokens to generate.
    pub decode_tokens: u32,
    /// Workload-class tag (0 for untagged traffic), carried through to the
    /// timeline so reports can break metrics down per tenant class.
    pub class: u32,
    /// Content identity (shared-prefix template and retrieval key), or
    /// `None` for identity-free requests, which never touch any cache and
    /// behave exactly as before caching existed.
    pub identity: Option<ContentIdentity>,
}

impl From<&Request> for EngineRequest {
    fn from(r: &Request) -> Self {
        Self {
            id: r.id,
            arrival_s: r.arrival_s,
            prefix_tokens: r.prefix_tokens,
            decode_tokens: r.decode_tokens.max(1),
            class: r.class,
            identity: r.identity,
        }
    }
}

/// The per-request record of a simulated lifetime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestTimeline {
    /// Request identifier.
    pub id: u64,
    /// Arrival time, in seconds.
    pub arrival_s: f64,
    /// Start of service at each pre-decode stage (pipeline order).
    pub stage_starts_s: Vec<f64>,
    /// Completion of each pre-decode stage (pipeline order).
    pub stage_ends_s: Vec<f64>,
    /// Workload-class tag of the request (0 for untagged traffic).
    pub class: u32,
    /// Time the request joined the decode batch.
    pub decode_join_s: f64,
    /// Time the first output token was emitted (end of the main prefix, or
    /// of the first decode step when the pipeline has no pre-decode stages).
    pub first_token_s: f64,
    /// Time the final token was emitted.
    pub completion_s: f64,
    /// Total time spent waiting in queues (stage queues and decode
    /// admission).
    pub queueing_s: f64,
    /// Output tokens generated.
    pub decode_tokens: u32,
}

impl RequestTimeline {
    /// Time-to-first-token of this request.
    pub fn ttft_s(&self) -> f64 {
        self.first_token_s - self.arrival_s
    }

    /// Achieved time-per-output-token: decode residency divided by tokens
    /// generated (the quantity [`crate::iterative::IterativeDecodeSim`]
    /// reports).
    pub fn tpot_s(&self) -> f64 {
        (self.completion_s - self.decode_join_s) / f64::from(self.decode_tokens.max(1))
    }

    /// End-to-end latency from arrival to final token.
    pub fn latency_s(&self) -> f64 {
        self.completion_s - self.arrival_s
    }

    /// Time in service (everything not spent queueing).
    pub fn service_s(&self) -> f64 {
        (self.latency_s() - self.queueing_s).max(0.0)
    }
}

/// Summary statistics of one latency distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Arithmetic mean, in seconds.
    pub mean_s: f64,
    /// Median (nearest-rank), in seconds.
    pub p50_s: f64,
    /// 95th percentile (nearest-rank), in seconds.
    pub p95_s: f64,
    /// 99th percentile (nearest-rank), in seconds.
    pub p99_s: f64,
    /// Maximum, in seconds.
    pub max_s: f64,
}

impl LatencyStats {
    /// Computes the stats of `samples` (order irrelevant; empty input yields
    /// all-zero stats).
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self {
                mean_s: 0.0,
                p50_s: 0.0,
                p95_s: 0.0,
                p99_s: 0.0,
                max_s: 0.0,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        Self::from_sorted(&sorted)
    }

    /// Computes the stats of an already ascending-sorted sample buffer
    /// without copying it. The mean is summed over the *sorted* order —
    /// the same order [`Self::from_samples`] has always summed in — so the
    /// two constructors are bit-identical on equal sample sets.
    ///
    /// The engine sorts each sample buffer once in place at report time and
    /// slices it here for p50/p95/p99, instead of cloning the buffer per
    /// metric family.
    pub fn from_sorted(sorted: &[f64]) -> Self {
        if sorted.is_empty() {
            return Self {
                mean_s: 0.0,
                p50_s: 0.0,
                p95_s: 0.0,
                p99_s: 0.0,
                max_s: 0.0,
            };
        }
        debug_assert!(sorted.windows(2).all(|w| w[0].total_cmp(&w[1]).is_le()));
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Self {
            mean_s: mean,
            p50_s: percentile(sorted, 50.0),
            p95_s: percentile(sorted, 95.0),
            p99_s: percentile(sorted, 99.0),
            max_s: *sorted.last().expect("non-empty"),
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted slice.
///
/// The rank is `ceil(p/100 · n)`, computed with a small downward tolerance
/// so a floating-point product that lands an epsilon *above* an exact
/// integer does not bump the rank (e.g. `0.2 × 5 = 1.0000000000000002`
/// must select rank 1, not 2).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = ((p / 100.0) * sorted.len() as f64 - 1e-9).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Aggregate metrics of one engine run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingMetrics {
    /// Requests submitted.
    pub requests: usize,
    /// Requests that finished generation (the engine always runs to
    /// completion, so this equals `requests`).
    pub completed: usize,
    /// Earliest arrival time, in seconds (zero when no requests ran).
    pub first_arrival_s: f64,
    /// Latest arrival time, in seconds (zero when no requests ran).
    pub last_arrival_s: f64,
    /// Time of the last completion, in seconds.
    pub makespan_s: f64,
    /// Span from the first arrival to the last completion, in seconds — the
    /// window the system actually served traffic. Rates are measured over
    /// this window so a trace whose first arrival is late (e.g. a shifted
    /// burst) does not deflate them.
    pub serving_duration_s: f64,
    /// Time spent draining in-flight requests after the last arrival, in
    /// seconds. Capacity planning can discount this tail: it is paid once
    /// per trace, not per unit of sustained traffic.
    pub drain_tail_s: f64,
    /// Completed requests divided by the serving duration (first arrival to
    /// last completion).
    pub throughput_rps: f64,
    /// Time-to-first-token distribution.
    pub ttft: LatencyStats,
    /// Time-per-output-token distribution.
    pub tpot: LatencyStats,
    /// End-to-end request latency distribution.
    pub latency: LatencyStats,
    /// Mean per-request time spent waiting in queues.
    pub queueing_mean_s: f64,
    /// Mean per-request time in service.
    pub service_mean_s: f64,
    /// Time-weighted mean number of actively stepping decode sequences.
    pub mean_decode_fill: f64,
    /// Iterative retrieval batches dispatched.
    pub retrieval_batches: u32,
    /// Mean fill of dispatched iterative retrieval batches.
    pub mean_retrieval_batch_fill: f64,
    /// Discrete events the simulation processed (arrivals, stage and step
    /// completions, retrieval completions). Like the retrieval counters this
    /// describes the shared pipeline: fleet reports sum it across replicas
    /// and per-class rows repeat the run-level value. The `scale_stress`
    /// bench divides it by wall-clock time for its events/sec figure.
    pub events_processed: u64,
    /// Requests shed by fleet-level admission control before reaching a
    /// replica. Always zero for plain engine and cluster runs; the chaos
    /// path ([`crate::faults`]) patches it into merged and per-class rows.
    /// Shed requests are excluded from `requests`/`completed` and from every
    /// latency distribution — they never executed.
    #[serde(default)]
    pub shed: usize,
}

/// One workload class's slice of a run's metrics.
///
/// Request-level quantities (counts, TTFT/TPOT/latency distributions,
/// queueing, throughput over the class's own serving window) are computed
/// from the class's timelines alone. Shared-resource quantities
/// (`mean_decode_fill`, `retrieval_batches`, `mean_retrieval_batch_fill`)
/// describe the pipeline the classes share and repeat the run-level values
/// in every row — a tenant does not have a decode fill of its own.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassMetrics {
    /// The workload-class tag.
    pub class: u32,
    /// The class's serving metrics (see the struct docs for which fields
    /// are class-local versus shared).
    pub metrics: ServingMetrics,
}

/// One workload class's cache accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassCacheUsage {
    /// The workload-class tag.
    pub class: u32,
    /// Prefix-KV cache counters of this class's accesses.
    pub prefix: CacheCounters,
    /// Retrieval-result cache counters of this class's accesses.
    pub retrieval: CacheCounters,
}

/// Cache accounting of one run (all-zero for cache-less runs). Like the
/// iterative-retrieval counters, these describe the shared pipeline: a
/// fleet report sums them across replicas, and the per-class rows slice the
/// same accesses by the requesting tenant.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheUsage {
    /// Prefix-KV cache counters (hits save prefill tokens).
    pub prefix: CacheCounters,
    /// Retrieval-result cache counters (hits skip retrieve + rerank).
    pub retrieval: CacheCounters,
    /// Per-class slices, ascending by class id — only classes that
    /// performed at least one lookup appear.
    pub per_class: Vec<ClassCacheUsage>,
}

/// The full result of one engine run: per-request timelines plus aggregate
/// metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingReport {
    /// Per-request lifetimes, in arrival order.
    pub timelines: Vec<RequestTimeline>,
    /// Aggregate distributions and throughput.
    pub metrics: ServingMetrics,
    /// Per-workload-class breakdowns, sorted by class id — one row per
    /// distinct class tag in the run. For a single-class (or untagged) run
    /// this is one row whose metrics equal [`Self::metrics`] exactly.
    pub per_class: Vec<ClassMetrics>,
    /// Cache hit/miss/eviction accounting (all-zero when the pipeline has
    /// no cache plan).
    pub cache: CacheUsage,
    /// Online SLO scores when the run used the streaming metrics pipeline
    /// ([`crate::sink::MetricsMode::Streaming`]); `None` for exact runs,
    /// whose timelines answer any SLO query after the fact. When set,
    /// [`Self::timelines`] is empty and the SLO accessors answer from
    /// these counts instead.
    pub streamed: Option<crate::sink::StreamedScores>,
}

impl ServingReport {
    /// Builds the report of an exact (timeline-retaining) run — the
    /// identity path, bit-identical to [`ServingEngine::run`].
    pub fn from_exact_sink(sink: crate::sink::ExactSink) -> Self {
        build_report(sink.timelines, &sink.acc)
    }

    /// Builds the `O(buckets)` report of a streaming run: no timelines,
    /// histogram-derived percentiles, and online SLO scores.
    pub fn from_histogram_sink(sink: crate::sink::HistogramSink) -> Self {
        sink.into_report()
    }

    /// Fraction of requests meeting both latency targets of `slo`.
    ///
    /// # Panics
    ///
    /// For a streaming report, panics unless `slo` is the SLO that was
    /// configured in the run's [`crate::sink::StreamingConfig`].
    pub fn attainment(&self, slo: &SloTarget) -> f64 {
        if let Some(streamed) = &self.streamed {
            if self.metrics.requests == 0 {
                return 1.0;
            }
            return streamed.run_met(slo) as f64 / self.metrics.requests as f64;
        }
        if self.timelines.is_empty() {
            return 1.0;
        }
        let met = self
            .timelines
            .iter()
            .filter(|t| slo.meets(t.ttft_s(), t.tpot_s()))
            .count();
        met as f64 / self.timelines.len() as f64
    }

    /// The distinct workload-class tags of the run, ascending.
    pub fn classes(&self) -> Vec<u32> {
        self.per_class.iter().map(|c| c.class).collect()
    }

    /// Fraction of class `class`'s requests meeting both latency targets of
    /// `slo` (1.0 when the class has no requests, mirroring
    /// [`Self::attainment`] on an empty run).
    pub fn class_attainment(&self, class: u32, slo: &SloTarget) -> f64 {
        let (met, total) = self.class_slo_counts(class, slo);
        if total == 0 {
            return 1.0;
        }
        met as f64 / total as f64
    }

    /// Class `class`'s SLO goodput: its requests meeting `slo` divided by
    /// the *class's own* serving window (its first arrival to its last
    /// completion), in requests per second. Zero when the class has no
    /// requests or a degenerate window.
    pub fn class_goodput_rps(&self, class: u32, slo: &SloTarget) -> f64 {
        let duration = self
            .per_class
            .iter()
            .find(|c| c.class == class)
            .map(|c| c.metrics.serving_duration_s)
            .unwrap_or(0.0);
        if duration <= 0.0 {
            return 0.0;
        }
        let (met, _) = self.class_slo_counts(class, slo);
        met as f64 / duration
    }

    /// `(met, total)`: how many of class `class`'s requests meet both
    /// latency targets of `slo`, and how many requests the class has at
    /// all. The counting primitive behind [`Self::class_attainment`] and
    /// [`Self::class_goodput_rps`] — public so the multi-tenant scoring in
    /// `rago-core` shares this single definition of per-class SLO
    /// accounting.
    ///
    /// # Panics
    ///
    /// For a streaming report, panics unless `slo` is the SLO the class was
    /// counted against (its [`crate::sink::StreamingConfig`] override, else
    /// the run-level SLO).
    pub fn class_slo_counts(&self, class: u32, slo: &SloTarget) -> (usize, usize) {
        if let Some(streamed) = &self.streamed {
            let total = self
                .per_class
                .iter()
                .find(|c| c.class == class)
                .map_or(0, |c| c.metrics.requests);
            if total == 0 {
                return (0, 0);
            }
            return (streamed.class_met(class, slo) as usize, total);
        }
        let mut met = 0;
        let mut total = 0;
        for t in self.timelines.iter().filter(|t| t.class == class) {
            total += 1;
            if slo.meets(t.ttft_s(), t.tpot_s()) {
                met += 1;
            }
        }
        (met, total)
    }

    /// SLO goodput: requests meeting the latency targets divided by the
    /// serving duration (first arrival to last completion), in requests per
    /// second.
    ///
    /// # Panics
    ///
    /// For a streaming report, panics unless `slo` is the SLO that was
    /// configured in the run's [`crate::sink::StreamingConfig`].
    pub fn goodput_rps(&self, slo: &SloTarget) -> f64 {
        if self.metrics.serving_duration_s <= 0.0 {
            return 0.0;
        }
        let met = if let Some(streamed) = &self.streamed {
            streamed.run_met(slo) as usize
        } else {
            self.timelines
                .iter()
                .filter(|t| slo.meets(t.ttft_s(), t.tpot_s()))
                .count()
        };
        met as f64 / self.metrics.serving_duration_s
    }

    /// Whether the run meets `slo` including its attainment requirement.
    pub fn meets_slo(&self, slo: &SloTarget) -> bool {
        self.attainment(slo) >= slo.attainment
    }

    /// An estimate of the bytes this report retains after the run — the
    /// quantity the `scale_stress` bench tracks as its peak-memory proxy.
    /// Exact reports grow `O(requests)` (one [`RequestTimeline`] plus its
    /// stage vectors per request); streaming reports stay `O(classes)`.
    pub fn retained_bytes(&self) -> usize {
        let timelines = std::mem::size_of::<RequestTimeline>() * self.timelines.capacity()
            + self
                .timelines
                .iter()
                .map(|t| {
                    (t.stage_starts_s.capacity() + t.stage_ends_s.capacity())
                        * std::mem::size_of::<f64>()
                })
                .sum::<usize>();
        std::mem::size_of::<Self>()
            + timelines
            + self.per_class.capacity() * std::mem::size_of::<ClassMetrics>()
            + self
                .streamed
                .as_ref()
                .map_or(0, crate::sink::StreamedScores::retained_bytes)
    }
}

/// Finds the sustained-throughput knee of a rate sweep: the largest offered
/// rate, **below the first SLO-violating rate**, whose attainment meets
/// `slo.attainment`.
///
/// `points` are `(offered_rate_rps, attainment)` pairs from independent
/// engine runs (any order; they are sorted by rate internally). A sweep is
/// rarely perfectly monotone — measurement noise or burst artifacts can make
/// an overloaded rate *appear* to recover — so the knee is capped at the
/// first violation: once any rate misses the attainment target, higher rates
/// are not trusted even if their measured attainment recovers. Returns
/// `None` when the smallest swept rate already violates the target (or the
/// sweep is empty).
///
/// # Examples
///
/// ```
/// use rago_serving_sim::engine::sustained_throughput_knee;
/// use rago_schema::SloTarget;
///
/// let slo = SloTarget::new(2.0, 0.05); // 90 % attainment required
/// let sweep = [(10.0, 1.0), (20.0, 0.97), (40.0, 0.91), (80.0, 0.4)];
/// assert_eq!(sustained_throughput_knee(&sweep, &slo), Some(40.0));
/// // A noisy recovery beyond the first violation does not extend the knee.
/// let noisy = [(10.0, 1.0), (20.0, 0.6), (40.0, 0.95)];
/// assert_eq!(sustained_throughput_knee(&noisy, &slo), Some(10.0));
/// assert_eq!(sustained_throughput_knee(&[(10.0, 0.1)], &slo), None);
/// ```
pub fn sustained_throughput_knee(points: &[(f64, f64)], slo: &SloTarget) -> Option<f64> {
    let mut sweep = points.to_vec();
    sweep.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut knee = None;
    for (rate, attainment) in sweep {
        if attainment >= slo.attainment {
            knee = Some(rate);
        } else {
            break;
        }
    }
    knee
}

/// Sorts requests into the engine's canonical injection order — ascending
/// `(arrival_s, id)` — with a fast path for the common case: traces from
/// `rago-workloads` generators and re-submitted engine requests are already
/// sorted, and checking that is one linear pass instead of an
/// `O(n log n)` re-sort of a million-entry vector.
pub(crate) fn sort_by_arrival(requests: &mut [EngineRequest]) {
    let sorted = requests.windows(2).all(|w| arrival_key_le(&w[0], &w[1]));
    if !sorted {
        requests.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s).then(a.id.cmp(&b.id)));
    }
    debug_assert!(requests.windows(2).all(|w| arrival_key_le(&w[0], &w[1])));
}

fn arrival_key_le(a: &EngineRequest, b: &EngineRequest) -> bool {
    a.arrival_s
        .total_cmp(&b.arrival_s)
        .then(a.id.cmp(&b.id))
        .is_le()
}

/// One cache probe observed during a traced run: a retrieval-result
/// lookup at request arrival, or a per-member prefix-KV access at
/// micro-batch dispatch. Recorded only when probe tracking is enabled
/// (traced runs); reading a cache never depends on the log, so traced and
/// untraced runs stay bit-identical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheProbe {
    /// When the probe happened (arrival time for retrieval probes,
    /// dispatch time for prefix probes), in seconds.
    pub time_s: f64,
    /// The request id.
    pub id: u64,
    /// The request's workload class.
    pub class: u32,
    /// `true` for a prefix-KV probe, `false` for a retrieval-result probe.
    pub prefix: bool,
    /// Whether the probe hit.
    pub hit: bool,
    /// Prefix tokens served from cache (always 0 for retrieval probes).
    pub hit_tokens: u32,
}

/// The request-level discrete-event serving engine. See the module
/// documentation for the model.
#[derive(Debug, Clone)]
pub struct ServingEngine {
    spec: PipelineSpec,
    requests: Vec<EngineRequest>,
    telemetry: rago_telemetry::TelemetryConfig,
}

impl ServingEngine {
    /// Creates an engine for the given pipeline and requests (sorted by
    /// arrival time internally).
    ///
    /// # Panics
    ///
    /// Panics if any arrival time is negative or non-finite, or any request
    /// generates zero tokens.
    pub fn new(spec: PipelineSpec, mut requests: Vec<EngineRequest>) -> Self {
        assert!(
            requests
                .iter()
                .all(|r| r.arrival_s.is_finite() && r.arrival_s >= 0.0),
            "arrival times must be finite and non-negative"
        );
        assert!(
            requests.iter().all(|r| r.decode_tokens > 0),
            "every request must generate at least one token"
        );
        sort_by_arrival(&mut requests);
        Self {
            spec,
            requests,
            telemetry: rago_telemetry::TelemetryConfig::disabled(),
        }
    }

    /// Sets the telemetry config consulted by the traced run paths
    /// ([`Self::run_telemetry`], [`Self::run_traced`]). The untraced
    /// [`Self::run`] / [`Self::run_with_mode`] never look at it.
    pub fn with_telemetry(mut self, telemetry: rago_telemetry::TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Creates an engine driving every request of a generated trace.
    pub fn from_trace(spec: PipelineSpec, trace: &Trace) -> Self {
        Self::new(
            spec,
            trace.requests.iter().map(EngineRequest::from).collect(),
        )
    }

    /// Runs the simulation to completion and returns the report.
    pub fn run(&self) -> ServingReport {
        let mut sim = ReplicaSim::new(self.spec.clone());
        sim.inject_bulk(&self.requests);
        sim.run_to_completion();
        let (timelines, acc) = sim.finish();
        build_report(timelines, &acc)
    }

    /// Runs the simulation with an explicit metrics pipeline.
    /// [`crate::sink::MetricsMode::Exact`] reproduces [`Self::run`] bit for
    /// bit (via [`crate::sink::ExactSink`]);
    /// [`crate::sink::MetricsMode::Streaming`] folds outcomes into
    /// histograms and returns an `O(buckets)` report with no timelines.
    pub fn run_with_mode(&self, mode: &crate::sink::MetricsMode) -> ServingReport {
        let mut sim = ReplicaSim::new(self.spec.clone());
        sim.inject_bulk(&self.requests);
        sim.run_to_completion();
        match mode {
            crate::sink::MetricsMode::Exact => {
                let mut sink = crate::sink::ExactSink::new();
                sim.drain_outcomes(&mut sink);
                sink.acc = sim.into_accumulators();
                ServingReport::from_exact_sink(sink)
            }
            crate::sink::MetricsMode::Streaming(config) => {
                let mut sink = crate::sink::HistogramSink::new(config);
                sim.drain_outcomes(&mut sink);
                sink.acc = sim.into_accumulators();
                ServingReport::from_histogram_sink(sink)
            }
        }
    }

    /// Runs the simulation like [`Self::run_with_mode`], recording a trace
    /// into `rec`. With a [`rago_telemetry::NullRecorder`] every hook is
    /// statically dead and the run is the recorder-free run; with a live
    /// recorder, per-request spans, cache probes, gauges (at the engine's
    /// [`Self::with_telemetry`] cadence) and self-profiling counters are
    /// derived from the run's ledgers in deterministic order. Spans and
    /// gauges need retained timelines, so streaming-mode traces carry only
    /// the probe instants and profile counters.
    pub fn run_traced<R: rago_telemetry::Recorder>(
        &self,
        mode: &crate::sink::MetricsMode,
        rec: &mut R,
    ) -> ServingReport {
        let mut sim = ReplicaSim::new(self.spec.clone());
        sim.track_probes = R::ENABLED;
        sim.inject_bulk(&self.requests);
        sim.run_to_completion();
        let probes = sim.drain_probe_log();
        let equeue = sim.equeue_stats();
        let report = match mode {
            crate::sink::MetricsMode::Exact => {
                let mut sink = crate::sink::ExactSink::new();
                sim.drain_outcomes(&mut sink);
                sink.acc = sim.into_accumulators();
                ServingReport::from_exact_sink(sink)
            }
            crate::sink::MetricsMode::Streaming(config) => {
                let mut sink = crate::sink::HistogramSink::new(config);
                sim.drain_outcomes(&mut sink);
                sink.acc = sim.into_accumulators();
                ServingReport::from_histogram_sink(sink)
            }
        };
        if R::ENABLED {
            let end_s = report.metrics.makespan_s;
            crate::telemetry::record_request_spans(rec, 0, &report.timelines);
            crate::telemetry::record_cache_probes(rec, 0, &probes);
            crate::telemetry::record_load_gauges(
                rec,
                0,
                &report.timelines,
                self.telemetry.gauge_cadence_s,
                end_s,
            );
            crate::telemetry::profile_from_stats(&equeue, report.metrics.events_processed, end_s)
                .record_into(rec, end_s, 0);
        }
        report
    }

    /// Convenience wrapper: runs with a [`rago_telemetry::TraceRecorder`]
    /// built from the engine's [`Self::with_telemetry`] config and returns
    /// it alongside the report, ready for
    /// [`rago_telemetry::export_chrome_trace`] /
    /// [`rago_telemetry::export_jsonl`].
    pub fn run_telemetry(
        &self,
        mode: &crate::sink::MetricsMode,
    ) -> (ServingReport, rago_telemetry::TraceRecorder) {
        let mut rec = rago_telemetry::TraceRecorder::new(self.telemetry.clone());
        let report = self.run_traced(mode, &mut rec);
        (report, rec)
    }
}

/// Discrete events. Same-timestamp events are applied together (state first,
/// then one dispatch pass), so a retrieval completing exactly at a step
/// boundary resumes before the next step forms — mirroring the loop order of
/// [`crate::iterative::IterativeDecodeSim`].
///
/// Events carry no member lists: the requests an event covers live in
/// reusable buffers on the simulation ([`ReplicaSim::stage_batches`] per
/// resource, [`ReplicaSim::step_members`], the retrieval-batch pool), so the
/// inner loop schedules and applies events without allocating. Ordering at
/// equal timestamps is `(time, arrival-class, seq)` — arrivals apply before
/// every other event — enforced structurally by the two-lane
/// [`EventQueue`]; see `crate::equeue` for why the lanes reproduce the
/// historical global-heap order bit for bit.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Request `r` arrives and joins the first stage queue (or decode
    /// admission when the pipeline has no pre-decode stages).
    Arrival(u32),
    /// The micro-batch running on `resource` finishes; its stage and
    /// members are in the resource's [`StageBatch`] buffer.
    StageDone { resource: u32 },
    /// One decode step ends for the members in
    /// [`ReplicaSim::step_members`].
    StepDone,
    /// The iterative retrieval batch in pool slot `slot` completes; its
    /// members resume decoding.
    RetrievalDone(u32),
    /// Fault-lane event: the replica's service-time slowdown factor becomes
    /// `f64::from_bits(factor_bits)` (straggler onset sets it above 1, the
    /// recovery resets it to exactly 1). Carried as bits so `Ev` stays
    /// `Copy + Debug` without an `Eq`-hostile float field.
    SlowdownChange { factor_bits: u64 },
}

/// The micro-batch in flight on one resource: which stage it runs and the
/// request slots it contains. One buffer per resource, reused across
/// dispatches — `resource_busy` guarantees at most one batch in flight per
/// resource, so the buffer is free whenever a new batch forms.
#[derive(Debug, Clone, Default)]
struct StageBatch {
    stage: u32,
    members: Vec<u32>,
}

/// Sentinel for "not yet recorded" timestamps in the arena. All simulated
/// times are finite and non-negative, so a negative sentinel is
/// unambiguous.
const UNSET: f64 = f64::NEG_INFINITY;

/// Per-request simulation state in struct-of-arrays layout: one dense slot
/// per injected request (its injection index), each field a parallel `Vec`.
/// The hot loop touches narrow field groups per event — admission writes
/// `decode_join_s`/`queueing_s`, a step touches `generated`/`paused` — so
/// splitting the fields keeps those writes on dense cache lines, and slot
/// creation is a handful of `Vec` pushes instead of a per-request struct
/// with three heap-allocated vectors.
///
/// Slots are never recycled: a slot index is the request's injection (=
/// arrival) order, which is what makes member iteration, retrieval-queue
/// order and the finished timelines reproduce the original engine exactly.
#[derive(Debug, Clone, Default)]
struct ReqArena {
    /// Pre-decode stage count of the pipeline (stage slices are
    /// `num_stages` wide per request).
    num_stages: usize,
    queue_entry_s: Vec<f64>,
    decode_join_s: Vec<f64>,
    first_token_s: Vec<f64>,
    completion_s: Vec<f64>,
    queueing_s: Vec<f64>,
    generated: Vec<u32>,
    /// Dense copy of each request's `decode_tokens` — the step loop reads
    /// only this field of the request, and the dense copy keeps that read
    /// off the 48-byte `EngineRequest` stride.
    tokens: Vec<u32>,
    next_retrieval: Vec<u32>,
    paused: Vec<bool>,
    /// The request's retrieval result was cached at arrival, so the plan's
    /// retrieval stages are skipped as zero-duration pass-throughs.
    skip_retrieval: Vec<bool>,
    /// Flat `num_stages`-strided stage service start times; only the first
    /// `stage_starts_len[r]` entries of request `r`'s slice are recorded.
    stage_starts_s: Vec<f64>,
    stage_starts_len: Vec<u32>,
    /// Flat `num_stages`-strided stage completion times, like the starts.
    stage_ends_s: Vec<f64>,
    stage_ends_len: Vec<u32>,
    /// Flat pool of iterative-retrieval trigger positions; request `r` owns
    /// `retrieval_pos[retrieval_pos_off[r] .. retrieval_pos_off[r + 1]]`.
    retrieval_pos: Vec<u32>,
    retrieval_pos_off: Vec<u32>,
}

impl ReqArena {
    fn new(num_stages: usize) -> Self {
        Self {
            num_stages,
            retrieval_pos_off: vec![0],
            ..Self::default()
        }
    }

    fn len(&self) -> usize {
        self.queue_entry_s.len()
    }

    /// Reserves capacity for `additional` more slots across every column,
    /// so bulk injection grows each `Vec` once instead of doubling.
    fn reserve(&mut self, additional: usize) {
        self.queue_entry_s.reserve(additional);
        self.decode_join_s.reserve(additional);
        self.first_token_s.reserve(additional);
        self.completion_s.reserve(additional);
        self.queueing_s.reserve(additional);
        self.generated.reserve(additional);
        self.tokens.reserve(additional);
        self.next_retrieval.reserve(additional);
        self.paused.reserve(additional);
        self.skip_retrieval.reserve(additional);
        self.stage_starts_s.reserve(additional * self.num_stages);
        self.stage_starts_len.reserve(additional);
        self.stage_ends_s.reserve(additional * self.num_stages);
        self.stage_ends_len.reserve(additional);
        self.retrieval_pos_off.reserve(additional);
    }

    /// Appends `reqs.len()` slots at once with bulk column fills (`resize`
    /// compiles to a memset, not per-request pushes). Only valid when no
    /// request carries iterative trigger positions.
    fn push_slots_bulk(&mut self, reqs: &[EngineRequest]) {
        let new_len = self.len() + reqs.len();
        assert!(new_len < u32::MAX as usize, "request arena is full");
        self.queue_entry_s.resize(new_len, 0.0);
        self.decode_join_s.resize(new_len, 0.0);
        self.first_token_s.resize(new_len, UNSET);
        self.completion_s.resize(new_len, UNSET);
        self.queueing_s.resize(new_len, 0.0);
        self.generated.resize(new_len, 0);
        self.tokens.extend(reqs.iter().map(|r| r.decode_tokens));
        self.next_retrieval.resize(new_len, 0);
        self.paused.resize(new_len, false);
        self.skip_retrieval.resize(new_len, false);
        self.stage_starts_s.resize(new_len * self.num_stages, 0.0);
        self.stage_starts_len.resize(new_len, 0);
        self.stage_ends_s.resize(new_len * self.num_stages, 0.0);
        self.stage_ends_len.resize(new_len, 0);
        let off = self.retrieval_pos.len() as u32;
        self.retrieval_pos_off
            .resize(self.retrieval_pos_off.len() + reqs.len(), off);
    }

    /// Appends one request slot, returning its index.
    fn push_slot(&mut self, tokens: u32, positions: &[u32]) -> u32 {
        let slot = self.len();
        assert!(slot < u32::MAX as usize, "request arena is full");
        self.queue_entry_s.push(0.0);
        self.decode_join_s.push(0.0);
        self.first_token_s.push(UNSET);
        self.completion_s.push(UNSET);
        self.queueing_s.push(0.0);
        self.generated.push(0);
        self.tokens.push(tokens);
        self.next_retrieval.push(0);
        self.paused.push(false);
        self.skip_retrieval.push(false);
        self.stage_starts_s
            .resize(self.stage_starts_s.len() + self.num_stages, 0.0);
        self.stage_starts_len.push(0);
        self.stage_ends_s
            .resize(self.stage_ends_s.len() + self.num_stages, 0.0);
        self.stage_ends_len.push(0);
        self.retrieval_pos.extend_from_slice(positions);
        self.retrieval_pos_off.push(self.retrieval_pos.len() as u32);
        slot as u32
    }

    /// Records a stage service start for request `r`.
    fn push_stage_start(&mut self, r: usize, t: f64) {
        let n = self.stage_starts_len[r] as usize;
        debug_assert!(n < self.num_stages, "more stage starts than stages");
        self.stage_starts_s[r * self.num_stages + n] = t;
        self.stage_starts_len[r] = (n + 1) as u32;
    }

    /// Records a stage completion for request `r`.
    fn push_stage_end(&mut self, r: usize, t: f64) {
        let n = self.stage_ends_len[r] as usize;
        debug_assert!(n < self.num_stages, "more stage ends than stages");
        self.stage_ends_s[r * self.num_stages + n] = t;
        self.stage_ends_len[r] = (n + 1) as u32;
    }

    fn stage_starts(&self, r: usize) -> &[f64] {
        let base = r * self.num_stages;
        &self.stage_starts_s[base..base + self.stage_starts_len[r] as usize]
    }

    fn stage_ends(&self, r: usize) -> &[f64] {
        let base = r * self.num_stages;
        &self.stage_ends_s[base..base + self.stage_ends_len[r] as usize]
    }
}

/// Cache accounting a simulation accumulates as it consults its caches:
/// run-level counters plus per-class slices (the engine attributes each
/// access to the requesting class; the caches themselves only count
/// totals).
#[derive(Debug, Clone, Default)]
pub(crate) struct CacheAcc {
    prefix: CacheCounters,
    retrieval: CacheCounters,
    per_class: BTreeMap<u32, (CacheCounters, CacheCounters)>,
}

impl CacheAcc {
    fn record_prefix(&mut self, class: u32, lookup: &PrefixLookup) {
        let delta = CacheCounters {
            lookups: 1,
            hits: u64::from(lookup.hit),
            insertions: u64::from(lookup.inserted),
            evictions: u64::from(lookup.evictions),
            tokens_saved: u64::from(lookup.hit_tokens),
        };
        self.prefix.absorb(&delta);
        self.per_class.entry(class).or_default().0.absorb(&delta);
    }

    fn record_retrieval(&mut self, class: u32, lookup: &RetrievalLookup) {
        let delta = CacheCounters {
            lookups: 1,
            hits: u64::from(lookup.hit),
            insertions: u64::from(lookup.inserted),
            evictions: u64::from(lookup.evictions),
            tokens_saved: 0,
        };
        self.retrieval.absorb(&delta);
        self.per_class.entry(class).or_default().1.absorb(&delta);
    }

    fn merge_from(&mut self, other: &CacheAcc) {
        self.prefix.absorb(&other.prefix);
        self.retrieval.absorb(&other.retrieval);
        for (class, (p, r)) in &other.per_class {
            let slot = self.per_class.entry(*class).or_default();
            slot.0.absorb(p);
            slot.1.absorb(r);
        }
    }

    pub(crate) fn to_usage(&self) -> CacheUsage {
        CacheUsage {
            prefix: self.prefix,
            retrieval: self.retrieval,
            per_class: self
                .per_class
                .iter()
                .map(|(class, (prefix, retrieval))| ClassCacheUsage {
                    class: *class,
                    prefix: *prefix,
                    retrieval: *retrieval,
                })
                .collect(),
        }
    }
}

/// Aggregate accumulators a simulation carries besides its timelines. Kept
/// separate so fleet-level reports (see [`crate::cluster`]) can sum them
/// across replicas before building merged [`ServingMetrics`].
#[derive(Debug, Clone, Default)]
pub(crate) struct SimAccumulators {
    pub(crate) retrieval_batches: u32,
    pub(crate) retrieval_fill: u64,
    pub(crate) fill_weighted_time: f64,
    pub(crate) stepping_time: f64,
    /// Discrete events applied by the simulation loop — the unit the
    /// `scale_stress` bench divides by wall time for its events/sec figure.
    pub(crate) events: u64,
    pub(crate) cache: CacheAcc,
}

impl SimAccumulators {
    /// Element-wise sum, used when merging replica runs into a fleet report.
    pub(crate) fn merge_from(&mut self, other: &Self) {
        self.retrieval_batches += other.retrieval_batches;
        self.retrieval_fill += other.retrieval_fill;
        self.fill_weighted_time += other.fill_weighted_time;
        self.stepping_time += other.stepping_time;
        self.events += other.events;
        self.cache.merge_from(&other.cache);
    }
}

/// One pipeline's discrete-event simulation as a steppable state machine.
///
/// [`ServingEngine::run`] injects every request up front and runs to
/// completion; the cluster layer instead drives several replicas from a
/// shared clock — injecting each routed request at its arrival time after
/// advancing every replica to just before that instant, so router policies
/// can observe live queue and decode state. Both paths produce identical
/// per-replica behaviour: event order is `(time, class, seq)` with arrivals
/// ordered before same-instant completions, which makes the order
/// independent of *when* the arrival event was pushed.
pub(crate) struct ReplicaSim {
    spec: PipelineSpec,
    /// RNG for iterative trigger positions, sampled per request at injection
    /// in arrival order — the exact scheme of `IterativeDecodeSim`.
    iterative_rng: Option<StdRng>,
    requests: Vec<EngineRequest>,
    arena: ReqArena,
    stage_queues: Vec<VecDeque<u32>>,
    resource_busy: Vec<bool>,
    /// The micro-batch in flight on each resource, valid while the
    /// resource is busy; the buffers are reused across dispatches.
    stage_batches: Vec<StageBatch>,
    /// Requests resident in the decode batch (active or paused), kept
    /// sorted ascending — the same iteration order as the `BTreeSet` it
    /// replaces, as one contiguous `O(max_batch)` scan.
    resident: Vec<u32>,
    admission: VecDeque<u32>,
    stepping: bool,
    /// Members of the in-flight decode step, valid while `stepping`;
    /// reused across steps.
    step_members: Vec<u32>,
    retrieval_queue: VecDeque<u32>,
    /// Member buffers of in-flight iterative-retrieval batches, indexed by
    /// the pool slot carried in [`Ev::RetrievalDone`]. `retrieval_free`
    /// recycles drained slots, so the pool stays as small as the peak
    /// number of concurrent retrieval batches.
    retrieval_pool: Vec<Vec<u32>>,
    retrieval_free: Vec<u32>,
    in_flight_retrievals: usize,
    completed: usize,
    /// Whether completions are appended to `completion_log`. Off by
    /// default: only the autoscaler's attainment trigger reads the log, and
    /// a million-request run should not retain 24 bytes per request for a
    /// consumer that is not there.
    pub(crate) track_completions: bool,
    /// `(completion_s, ttft_s, tpot_s)` of every completed request, in
    /// completion order (appended as completions happen, so the log is
    /// chronological). Lets the autoscaler's attainment trigger consume
    /// recent outcomes with a cursor instead of rescanning every request
    /// at every evaluation tick. Empty unless `track_completions` is set.
    completion_log: Vec<(f64, f64, f64)>,
    /// Whether cache probes are appended to `probe_log`. Off by default —
    /// same zero-cost-when-off contract as `track_completions`: only
    /// traced runs pay for the log, and reading a cache never depends on
    /// whether the probe was logged, so traced and untraced runs stay
    /// bit-identical.
    pub(crate) track_probes: bool,
    /// Every cache probe in simulation order (retrieval-result probes at
    /// arrival, prefix-KV probes at micro-batch dispatch). Empty unless
    /// `track_probes` is set.
    probe_log: Vec<CacheProbe>,
    /// `(ready_s, slot)` of every prefill handoff, in completion order —
    /// only a handoff-mode replica ([`PipelineSpec::handoff`]) records any.
    /// The pool engine drains it with [`ReplicaSim::take_handoffs`].
    handoff_log: Vec<(f64, u32)>,
    /// First `handoff_log` entry not yet drained by `take_handoffs`.
    handoff_cursor: usize,
    /// Replica-local prefix-KV cache, created cold from the spec's cache
    /// plan (a scaled-out replica starts with nothing resident).
    prefix_cache: Option<PrefixKvCache>,
    /// Replica-local retrieval-result cache, created cold likewise.
    retrieval_cache: Option<RetrievalResultCache>,
    /// Service-time multiplier applied to every newly scheduled stage batch
    /// and decode step. Exactly `1.0` on a healthy replica — the scaling is
    /// skipped entirely then, keeping fault-free runs bit-identical —
    /// and above `1.0` while the chaos layer marks the replica a straggler.
    slowdown: f64,
    acc: SimAccumulators,
    queue: EventQueue<Ev>,
}

impl ReplicaSim {
    /// Creates an idle simulation of `spec` with no requests.
    pub(crate) fn new(spec: PipelineSpec) -> Self {
        let iterative_rng = spec
            .iterative
            .as_ref()
            .map(|it| StdRng::seed_from_u64(it.seed));
        let num_stages = spec.stages.len();
        let num_resources = spec.num_resources();
        let prefix_cache = spec
            .cache
            .as_ref()
            .and_then(|plan| plan.config.prefix)
            .map(PrefixKvCache::new);
        let retrieval_cache = spec
            .cache
            .as_ref()
            .and_then(|plan| plan.config.retrieval)
            .map(RetrievalResultCache::new);
        Self {
            spec,
            iterative_rng,
            requests: Vec::new(),
            arena: ReqArena::new(num_stages),
            stage_queues: vec![VecDeque::new(); num_stages],
            resource_busy: vec![false; num_resources],
            stage_batches: vec![StageBatch::default(); num_resources],
            resident: Vec::new(),
            admission: VecDeque::new(),
            stepping: false,
            step_members: Vec::new(),
            retrieval_queue: VecDeque::new(),
            retrieval_pool: Vec::new(),
            retrieval_free: Vec::new(),
            in_flight_retrievals: 0,
            completed: 0,
            track_completions: false,
            completion_log: Vec::new(),
            track_probes: false,
            probe_log: Vec::new(),
            handoff_log: Vec::new(),
            handoff_cursor: 0,
            prefix_cache,
            retrieval_cache,
            slowdown: 1.0,
            acc: SimAccumulators::default(),
            queue: EventQueue::new(),
        }
    }

    /// Reserves capacity for `additional` more requests across the request
    /// list, the arena's columns and the arrival lane — bulk injection (a
    /// whole trace up front) then grows each backing `Vec` exactly once.
    pub(crate) fn reserve(&mut self, additional: usize) {
        self.requests.reserve(additional);
        self.arena.reserve(additional);
        self.queue.reserve_arrivals(additional);
    }

    /// Injects a whole sorted batch of requests at once. Equivalent to
    /// calling [`Self::inject`] per request, but fills the arena columns
    /// with bulk `resize`/`extend` operations — on a million-request trace
    /// this is a handful of memsets instead of fifteen million `Vec`
    /// pushes. Iterative pipelines fall back to the per-request path, which
    /// samples trigger positions in arrival order.
    ///
    /// # Panics
    ///
    /// Panics like [`Self::inject`] on non-finite/negative arrivals or
    /// zero-token requests.
    pub(crate) fn inject_bulk(&mut self, reqs: &[EngineRequest]) {
        if self.spec.iterative.is_some() {
            self.reserve(reqs.len());
            for req in reqs {
                self.inject(*req);
            }
            return;
        }
        assert!(
            reqs.iter()
                .all(|r| r.arrival_s.is_finite() && r.arrival_s >= 0.0),
            "arrival times must be finite and non-negative"
        );
        assert!(
            reqs.iter().all(|r| r.decode_tokens > 0),
            "every request must generate at least one token"
        );
        self.reserve(reqs.len());
        let base = self.requests.len();
        self.arena.push_slots_bulk(reqs);
        self.requests.extend_from_slice(reqs);
        for (i, req) in reqs.iter().enumerate() {
            self.queue
                .push_arrival(req.arrival_s, Ev::Arrival((base + i) as u32));
        }
    }

    /// Adds one request to the simulation, scheduling its arrival event.
    /// Requests must be injected in non-decreasing arrival order, and never
    /// earlier than the time the simulation has already been advanced to.
    ///
    /// # Panics
    ///
    /// Panics if the arrival time is negative or non-finite, or the request
    /// generates zero tokens.
    pub(crate) fn inject(&mut self, req: EngineRequest) {
        assert!(
            req.arrival_s.is_finite() && req.arrival_s >= 0.0,
            "arrival times must be finite and non-negative"
        );
        assert!(
            req.decode_tokens > 0,
            "every request must generate at least one token"
        );
        let positions = match (&self.spec.iterative, &mut self.iterative_rng) {
            (Some(it), Some(rng)) => {
                sample_positions(rng, req.decode_tokens, it.retrievals_per_sequence)
            }
            _ => Vec::new(),
        };
        let slot = self.arena.push_slot(req.decode_tokens, &positions);
        debug_assert_eq!(slot as usize, self.requests.len());
        self.requests.push(req);
        self.queue.push_arrival(req.arrival_s, Ev::Arrival(slot));
    }

    /// Requests injected but not yet fully decoded.
    pub(crate) fn outstanding(&self) -> usize {
        self.requests.len() - self.completed
    }

    /// Snapshot of the event queue's internal work counters (for
    /// [`crate::EventQueueStats`]-based self-profiling).
    pub(crate) fn equeue_stats(&self) -> crate::equeue::EventQueueStats {
        self.queue.stats()
    }

    /// Takes the cache-probe log recorded so far (empty unless
    /// `track_probes` was set before the run).
    pub(crate) fn drain_probe_log(&mut self) -> Vec<CacheProbe> {
        std::mem::take(&mut self.probe_log)
    }

    /// Requests waiting in a pre-decode stage queue or for decode admission
    /// (excludes requests currently in service).
    pub(crate) fn queued(&self) -> usize {
        self.stage_queues.iter().map(VecDeque::len).sum::<usize>() + self.admission.len()
    }

    /// Fraction of decode slots occupied, in `[0, 1]`.
    pub(crate) fn decode_fill_fraction(&self) -> f64 {
        self.resident.len() as f64 / f64::from(self.spec.decode.max_batch)
    }

    /// Whether this replica's prefix-KV cache currently holds `prefix_id` —
    /// the signal cache-affinity routing probes (false when the replica has
    /// no prefix cache).
    pub(crate) fn owns_prefix(&self, prefix_id: u64) -> bool {
        self.prefix_cache
            .as_ref()
            .is_some_and(|c| c.contains(prefix_id))
    }

    /// Processes every event group strictly before `t` (by more than the
    /// event-grouping tolerance). Events within [`TIME_EPS`] of `t` are left
    /// queued so an arrival injected at `t` joins their group — exactly as
    /// it would have had the arrival been scheduled up front.
    pub(crate) fn advance_before(&mut self, t: f64) {
        while let Some(head_t) = self.queue.peek_time() {
            if head_t + TIME_EPS < t {
                self.process_group();
            } else {
                break;
            }
        }
    }

    /// Drains the event queue, completing every injected request.
    pub(crate) fn run_to_completion(&mut self) {
        while self.process_group() {}
    }

    /// Pops one event group — every event within the timestamp tolerance of
    /// the head — applies it, then runs a single dispatch pass, so state
    /// changes (resumes, arrivals, routing) at one instant are all visible
    /// to that pass. Returns `false` when the queue is empty.
    fn process_group(&mut self) -> bool {
        let Some((head_t, head_ev)) = self.queue.pop() else {
            return false;
        };
        let mut now = head_t;
        self.apply(head_t, head_ev);
        while let Some(next_t) = self.queue.peek_time() {
            if next_t <= now + TIME_EPS {
                let Some((t, ev)) = self.queue.pop() else {
                    break;
                };
                now = now.max(t);
                self.apply(t, ev);
            } else {
                break;
            }
        }
        self.dispatch_stages(now);
        self.decode_tick(now);
        true
    }

    /// Consults the retrieval-result cache for request `r` at its arrival.
    /// A hit marks the plan's retrieval stages for zero-duration
    /// pass-through; identity-free requests (or cache-less pipelines) are
    /// untouched.
    fn lookup_retrieval_cache(&mut self, r: usize, t: f64) {
        let Some(cache) = self.retrieval_cache.as_mut() else {
            return;
        };
        let Some(identity) = self.requests[r].identity else {
            return;
        };
        let lookup = cache.access(identity.doc_key);
        self.acc
            .cache
            .record_retrieval(self.requests[r].class, &lookup);
        if self.track_probes {
            self.probe_log.push(CacheProbe {
                time_s: t,
                id: self.requests[r].id,
                class: self.requests[r].class,
                prefix: false,
                hit: lookup.hit,
                hit_tokens: 0,
            });
        }
        if lookup.hit {
            self.arena.skip_retrieval[r] = true;
        }
    }

    /// Routes request `r` toward stage `from` at time `t`: stages marked
    /// skippable (a retrieval-cache hit) are recorded as zero-duration
    /// pass-throughs, and the request lands in the first remaining stage
    /// queue — or in decode admission when none remain. A request whose
    /// *last* pipeline stage actually executes gets its first token there
    /// (the `StageDone` path); one that skips past the end behaves like a
    /// no-pre-decode request, emitting its first token at its first decode
    /// step.
    fn route_to_stage(&mut self, r: usize, from: usize, t: f64) {
        let num_stages = self.spec.stages.len();
        let mut stage = from;
        if self.arena.skip_retrieval[r] {
            let plan = self
                .spec
                .cache
                .as_ref()
                .expect("skip_retrieval is only set when a cache plan exists");
            while stage < num_stages && plan.retrieval_stages.contains(&stage) {
                self.arena.push_stage_start(r, t);
                self.arena.push_stage_end(r, t);
                stage += 1;
            }
        }
        self.arena.queue_entry_s[r] = t;
        if stage < num_stages {
            self.stage_queues[stage].push_back(r as u32);
        } else if self.spec.handoff {
            // Every remaining stage was skipped by a cache hit: the prefill
            // state is already resident, so the handoff is ready at once
            // (zero-work prefill, first token at the handoff instant).
            self.arena.first_token_s[r] = t;
            self.arena.decode_join_s[r] = t;
            self.arena.completion_s[r] = t;
            self.completed += 1;
            self.handoff_log.push((t, r as u32));
            if self.track_completions {
                let ttft = t - self.requests[r].arrival_s;
                self.completion_log.push((t, ttft, 0.0));
            }
        } else {
            self.admission.push_back(r as u32);
        }
    }

    /// Pure state mutation for one event; no dispatching. Events that cover
    /// a member set (`StageDone`, `StepDone`, `RetrievalDone`) temporarily
    /// take their member buffer out of `self`, walk it, then clear and
    /// restore it — the buffers are guaranteed idle once their event fires
    /// (`resource_busy` / `stepping` / the pool free-list), so no
    /// allocation happens per event.
    fn apply(&mut self, t: f64, ev: Ev) {
        self.acc.events += 1;
        match ev {
            Ev::Arrival(r) => {
                let r = r as usize;
                self.lookup_retrieval_cache(r, t);
                self.route_to_stage(r, 0, t);
            }
            Ev::StageDone { resource } => {
                let resource = resource as usize;
                self.resource_busy[resource] = false;
                let members = std::mem::take(&mut self.stage_batches[resource].members);
                let stage = self.stage_batches[resource].stage as usize;
                let last_stage = stage + 1 == self.spec.stages.len();
                for &r in &members {
                    let r = r as usize;
                    self.arena.push_stage_end(r, t);
                    if last_stage {
                        // The main prefix emits the first output token.
                        self.arena.queue_entry_s[r] = t;
                        self.arena.first_token_s[r] = t;
                        if self.spec.handoff {
                            // Prefill-pool replica: the request is done here;
                            // its KV state becomes ready for the cross-pool
                            // transfer instead of joining decode admission.
                            self.arena.decode_join_s[r] = t;
                            self.arena.completion_s[r] = t;
                            self.completed += 1;
                            self.handoff_log.push((t, r as u32));
                            if self.track_completions {
                                let ttft = t - self.requests[r].arrival_s;
                                self.completion_log.push((t, ttft, 0.0));
                            }
                        } else {
                            self.admission.push_back(r as u32);
                        }
                    } else {
                        self.route_to_stage(r, stage + 1, t);
                    }
                }
                let mut members = members;
                members.clear();
                self.stage_batches[resource].members = members;
            }
            Ev::StepDone => {
                self.stepping = false;
                let mut members = std::mem::take(&mut self.step_members);
                for &r in &members {
                    let ri = r as usize;
                    let tokens = self.arena.tokens[ri];
                    self.arena.generated[ri] += 1;
                    let generated = self.arena.generated[ri];
                    if self.arena.first_token_s[ri] == UNSET {
                        self.arena.first_token_s[ri] = t;
                    }
                    let pos_cursor = self.arena.retrieval_pos_off[ri] as usize
                        + self.arena.next_retrieval[ri] as usize;
                    if pos_cursor < self.arena.retrieval_pos_off[ri + 1] as usize
                        && generated == self.arena.retrieval_pos[pos_cursor]
                        && generated < tokens
                    {
                        self.arena.next_retrieval[ri] += 1;
                        self.arena.paused[ri] = true;
                        self.retrieval_queue.push_back(r);
                    }
                    if generated >= tokens {
                        self.arena.completion_s[ri] = t;
                        if let Ok(pos) = self.resident.binary_search(&r) {
                            self.resident.remove(pos);
                        }
                        self.completed += 1;
                        if self.track_completions {
                            let first = self.arena.first_token_s[ri];
                            debug_assert!(first != UNSET, "first token precedes completion");
                            let ttft = first - self.requests[ri].arrival_s;
                            let tpot =
                                (t - self.arena.decode_join_s[ri]) / f64::from(tokens.max(1));
                            self.completion_log.push((t, ttft, tpot));
                        }
                    }
                }
                members.clear();
                self.step_members = members;
            }
            Ev::RetrievalDone(slot) => {
                self.in_flight_retrievals -= 1;
                let mut members = std::mem::take(&mut self.retrieval_pool[slot as usize]);
                for &r in &members {
                    self.arena.paused[r as usize] = false;
                }
                members.clear();
                self.retrieval_pool[slot as usize] = members;
                self.retrieval_free.push(slot);
            }
            Ev::SlowdownChange { factor_bits } => {
                // Work already in flight keeps its scheduled completion;
                // only batches and steps dispatched after this instant see
                // the new factor.
                self.slowdown = f64::from_bits(factor_bits);
            }
        }
    }

    /// Work-conserving micro-batch dispatch: every free resource takes up to
    /// `batch` requests from its latest non-empty stage queue.
    fn dispatch_stages(&mut self, now: f64) {
        for resource in 0..self.resource_busy.len() {
            if self.resource_busy[resource] {
                continue;
            }
            // Latest stage first (the optimal collocation order); FIFO
            // within a stage.
            let Some(stage) = (0..self.spec.stages.len()).rev().find(|&s| {
                self.spec.stages[s].resource == resource && !self.stage_queues[s].is_empty()
            }) else {
                continue;
            };
            let cap = self.spec.stages[stage].batch as usize;
            let take = self.stage_queues[stage].len().min(cap);
            let mut members = std::mem::take(&mut self.stage_batches[resource].members);
            debug_assert!(members.is_empty(), "free resource has a live batch buffer");
            members.extend(self.stage_queues[stage].drain(..take));
            for &r in &members {
                let r = r as usize;
                self.arena.push_stage_start(r, now);
                self.arena.queueing_s[r] += now - self.arena.queue_entry_s[r];
            }
            let full = self.spec.stages[stage].latency.latency(take as u32);
            let charged = self.charge_prefix_cache(stage, &members, full, now);
            let latency = self.scaled(charged);
            self.resource_busy[resource] = true;
            self.stage_batches[resource].stage = stage as u32;
            self.stage_batches[resource].members = members;
            self.queue.push_scheduled(
                now + latency,
                Ev::StageDone {
                    resource: resource as u32,
                },
            );
        }
    }

    /// Consults the prefix-KV cache for a micro-batch dispatched to the
    /// plan's prefix stage, and returns the latency actually charged:
    /// prefill cost is proportional to the tokens processed, so the batch
    /// latency scales by the uncached share of its members' prefix tokens.
    /// Members access the cache in batch order — the first instance of a
    /// template misses and inserts it, and later same-batch instances hit
    /// (they share the KV being computed). Returns `base` untouched when no
    /// tokens were served from cache, keeping identity-free and
    /// zero-capacity runs bit-identical to the cache-less path.
    fn charge_prefix_cache(&mut self, stage: usize, members: &[u32], base: f64, now: f64) -> f64 {
        let prefix_stage = self.spec.cache.as_ref().and_then(|plan| plan.prefix_stage);
        if prefix_stage != Some(stage) {
            return base;
        }
        let Some(cache) = self.prefix_cache.as_mut() else {
            return base;
        };
        let mut total_tokens: u64 = 0;
        let mut saved_tokens: u64 = 0;
        for &r in members {
            let req = &self.requests[r as usize];
            total_tokens += u64::from(req.prefix_tokens);
            if let Some(identity) = req.identity {
                let shared = identity.shared_prefix_tokens.min(req.prefix_tokens);
                let lookup = cache.access(identity.prefix_id, shared);
                saved_tokens += u64::from(lookup.hit_tokens);
                self.acc.cache.record_prefix(req.class, &lookup);
                if self.track_probes {
                    self.probe_log.push(CacheProbe {
                        time_s: now,
                        id: req.id,
                        class: req.class,
                        prefix: true,
                        hit: lookup.hit,
                        hit_tokens: lookup.hit_tokens,
                    });
                }
            }
        }
        if saved_tokens == 0 {
            return base;
        }
        base * ((total_tokens - saved_tokens) as f64 / total_tokens as f64)
    }

    /// Decode bookkeeping at one instant: admit, dispatch iterative
    /// retrievals, and start the next step.
    fn decode_tick(&mut self, now: f64) {
        // Admit waiting requests into free decode slots (continuous
        // batching join).
        while self.resident.len() < self.spec.decode.max_batch as usize {
            let Some(r) = self.admission.pop_front() else {
                break;
            };
            let ri = r as usize;
            self.arena.decode_join_s[ri] = now;
            self.arena.queueing_s[ri] += now - self.arena.queue_entry_s[ri];
            let pos = match self.resident.binary_search(&r) {
                Ok(pos) | Err(pos) => pos,
            };
            self.resident.insert(pos, r);
        }

        // Dispatch the iterative retrieval queue: when full, or when decode
        // is stalled (nothing active, nothing in flight) and waiting would
        // deadlock the tail.
        if let Some(it) = self.spec.iterative {
            loop {
                let queued = self.retrieval_queue.len();
                if queued == 0 {
                    break;
                }
                let active_empty = !self.stepping && self.active_count() == 0;
                let full = queued >= it.iterative_batch as usize;
                let stalled = active_empty && self.in_flight_retrievals == 0;
                if !(full || stalled) {
                    break;
                }
                let take = queued.min(it.iterative_batch as usize);
                self.acc.retrieval_batches += 1;
                self.acc.retrieval_fill += take as u64;
                if it.retrieval_prefix_latency_s <= TIME_EPS {
                    // A zero-latency batch completes within this instant:
                    // resume inline so the members join the very next step,
                    // exactly as the reference simulator's loop does.
                    for _ in 0..take {
                        let Some(r) = self.retrieval_queue.pop_front() else {
                            break;
                        };
                        self.arena.paused[r as usize] = false;
                    }
                } else {
                    self.in_flight_retrievals += 1;
                    let slot = match self.retrieval_free.pop() {
                        Some(slot) => slot,
                        None => {
                            self.retrieval_pool.push(Vec::new());
                            (self.retrieval_pool.len() - 1) as u32
                        }
                    };
                    let buf = &mut self.retrieval_pool[slot as usize];
                    debug_assert!(buf.is_empty(), "recycled retrieval slot not drained");
                    buf.extend(self.retrieval_queue.drain(..take));
                    self.queue.push_scheduled(
                        now + it.retrieval_prefix_latency_s,
                        Ev::RetrievalDone(slot),
                    );
                }
            }
        }

        // Start the next decode step over the currently active sequences.
        if !self.stepping {
            debug_assert!(self.step_members.is_empty(), "idle step buffer not drained");
            let Self {
                step_members,
                resident,
                arena,
                ..
            } = &mut *self;
            step_members.extend(
                resident
                    .iter()
                    .copied()
                    .filter(|&r| !arena.paused[r as usize]),
            );
            let fill = self.step_members.len() as u32;
            if fill > 0 {
                let dur = self.scaled(self.spec.decode.step_latency.latency(fill));
                self.acc.fill_weighted_time += f64::from(fill) * dur;
                self.acc.stepping_time += dur;
                self.stepping = true;
                self.queue.push_scheduled(now + dur, Ev::StepDone);
            }
        }
    }

    fn active_count(&self) -> usize {
        self.resident
            .iter()
            .filter(|&&r| !self.arena.paused[r as usize])
            .count()
    }

    /// Applies the straggler slowdown to a service duration. The healthy
    /// factor of exactly `1.0` returns `d` untouched — not `d * 1.0`, whose
    /// rounding is also exact but whose branch would still perturb nothing;
    /// the early return documents the bit-identity contract explicitly.
    fn scaled(&self, d: f64) -> f64 {
        if self.slowdown == 1.0 {
            d
        } else {
            d * self.slowdown
        }
    }

    /// Schedules a future slowdown change at `t` on the fault lane, which
    /// orders before same-instant arrivals (see `crate::equeue`): a
    /// degradation landing exactly at an arrival instant is in force before
    /// that request is processed. Changes must be scheduled in
    /// non-decreasing time order.
    pub(crate) fn schedule_slowdown(&mut self, t: f64, factor: f64) {
        debug_assert!(factor.is_finite() && factor > 0.0);
        self.queue.push_fault(
            t,
            Ev::SlowdownChange {
                factor_bits: factor.to_bits(),
            },
        );
    }

    /// Injects a request whose arrival event fires at `now` rather than at
    /// its recorded `arrival_s` — the re-queue path after a replica crash.
    /// The stored request keeps its original arrival time, so TTFT and
    /// end-to-end latency include the time lost to the crash; only the
    /// event that hands it to the pipeline is deferred.
    pub(crate) fn inject_delayed(&mut self, req: EngineRequest, now: f64) {
        assert!(
            now.is_finite() && now >= 0.0 && now >= req.arrival_s,
            "delayed injection must not precede the request's arrival"
        );
        assert!(
            req.decode_tokens > 0,
            "every request must generate at least one token"
        );
        let positions = match (&self.spec.iterative, &mut self.iterative_rng) {
            (Some(it), Some(rng)) => {
                sample_positions(rng, req.decode_tokens, it.retrievals_per_sequence)
            }
            _ => Vec::new(),
        };
        let slot = self.arena.push_slot(req.decode_tokens, &positions);
        debug_assert_eq!(slot as usize, self.requests.len());
        self.requests.push(req);
        self.queue.push_arrival(now, Ev::Arrival(slot));
    }

    /// Tears down a crashed or preempted replica at its current instant:
    /// every request that already completed becomes a timeline (exactly as
    /// [`ReplicaSim::finish`] would emit it), every request still in flight
    /// or queued is returned as its original [`EngineRequest`] for the
    /// caller to re-queue or fail, and the accumulators keep the work the
    /// replica did perform. Unprocessed events die with the replica —
    /// including work that would have completed at the very crash instant,
    /// which [`ReplicaSim::advance_before`] leaves unprocessed; the crash
    /// wins that tie by construction, and the chaos goldens pin it.
    pub(crate) fn dismantle(self) -> (Vec<RequestTimeline>, Vec<EngineRequest>, SimAccumulators) {
        let arena = &self.arena;
        let mut timelines = Vec::new();
        let mut in_flight = Vec::new();
        for (r, req) in self.requests.iter().enumerate() {
            let completion_s = arena.completion_s[r];
            if completion_s == UNSET {
                in_flight.push(*req);
                continue;
            }
            let first_token_s = arena.first_token_s[r];
            debug_assert!(first_token_s != UNSET, "completed without a first token");
            timelines.push(RequestTimeline {
                id: req.id,
                arrival_s: req.arrival_s,
                stage_starts_s: arena.stage_starts(r).to_vec(),
                stage_ends_s: arena.stage_ends(r).to_vec(),
                class: req.class,
                decode_join_s: arena.decode_join_s[r],
                first_token_s,
                completion_s,
                queueing_s: arena.queueing_s[r],
                decode_tokens: req.decode_tokens,
            });
        }
        (timelines, in_flight, self.acc)
    }

    /// Drains the prefill-handoff records accumulated since the last call:
    /// `(ready_s, request)` pairs in handoff-completion order. Only a
    /// handoff-mode replica ([`PipelineSpec::handoff`]) ever records any.
    /// The returned requests are the original injected [`EngineRequest`]s —
    /// ids, arrival times, classes, and content identity all preserved for
    /// re-injection into a decode-pool replica.
    pub(crate) fn take_handoffs(&mut self, out: &mut Vec<(f64, EngineRequest)>) {
        while self.handoff_cursor < self.handoff_log.len() {
            let (ready_s, slot) = self.handoff_log[self.handoff_cursor];
            self.handoff_cursor += 1;
            out.push((ready_s, self.requests[slot as usize]));
        }
    }

    /// `(completion, ttft, tpot)` of every request completed at or before
    /// `to` and not yet consumed through `cursor`; advances the cursor past
    /// the returned slice. The completion log is chronological, so
    /// successive calls with the same cursor visit each completion exactly
    /// once — the autoscaler's attainment trigger walks it per tick in
    /// O(new completions) instead of rescanning every request.
    pub(crate) fn completions_up_to(&self, cursor: &mut usize, to: f64) -> &[(f64, f64, f64)] {
        let start = *cursor;
        while *cursor < self.completion_log.len() && self.completion_log[*cursor].0 <= to {
            *cursor += 1;
        }
        &self.completion_log[start..*cursor]
    }

    /// Feeds every completed request to `sink`, once each, in injection
    /// (= arrival) order. Outcomes borrow the arena's stage slices, so the
    /// walk allocates nothing; what the sink retains is its own choice.
    ///
    /// # Panics
    ///
    /// Panics if any request has not completed — call
    /// [`ReplicaSim::run_to_completion`] first.
    pub(crate) fn drain_outcomes<S: crate::sink::MetricsSink + ?Sized>(&self, sink: &mut S) {
        debug_assert!(
            self.queue.is_empty(),
            "drain_outcomes() requires the event queue to be drained"
        );
        let arena = &self.arena;
        for (r, req) in self.requests.iter().enumerate() {
            let first_token_s = arena.first_token_s[r];
            let completion_s = arena.completion_s[r];
            assert!(
                first_token_s != UNSET,
                "every request emits a first token before the engine finishes"
            );
            assert!(
                completion_s != UNSET,
                "every request completes before the engine finishes"
            );
            sink.record(&crate::sink::RequestOutcome {
                id: req.id,
                class: req.class,
                arrival_s: req.arrival_s,
                stage_starts_s: arena.stage_starts(r),
                stage_ends_s: arena.stage_ends(r),
                decode_join_s: arena.decode_join_s[r],
                first_token_s,
                completion_s,
                queueing_s: arena.queueing_s[r],
                decode_tokens: req.decode_tokens,
            });
        }
    }

    /// Consumes the finished simulation into its accumulators — the
    /// companion of [`ReplicaSim::drain_outcomes`], which streams the
    /// per-request side.
    pub(crate) fn into_accumulators(self) -> SimAccumulators {
        self.acc
    }

    /// Consumes the finished simulation into per-request timelines (in
    /// injection = arrival order) and the aggregate accumulators.
    ///
    /// # Panics
    ///
    /// Panics if any request has not completed — call
    /// [`ReplicaSim::run_to_completion`] first.
    pub(crate) fn finish(self) -> (Vec<RequestTimeline>, SimAccumulators) {
        debug_assert!(
            self.queue.is_empty(),
            "finish() requires the event queue to be drained"
        );
        let arena = &self.arena;
        let timelines: Vec<RequestTimeline> = self
            .requests
            .iter()
            .enumerate()
            .map(|(r, req)| {
                // The event loop drains the queue only after every request
                // has generated its final token; a request without a first
                // token or completion would be an engine bug, so fail loudly
                // rather than emit a silently wrong report.
                let first_token_s = arena.first_token_s[r];
                let completion_s = arena.completion_s[r];
                assert!(
                    first_token_s != UNSET,
                    "every request emits a first token before the engine finishes"
                );
                assert!(
                    completion_s != UNSET,
                    "every request completes before the engine finishes"
                );
                RequestTimeline {
                    id: req.id,
                    arrival_s: req.arrival_s,
                    stage_starts_s: arena.stage_starts(r).to_vec(),
                    stage_ends_s: arena.stage_ends(r).to_vec(),
                    class: req.class,
                    decode_join_s: arena.decode_join_s[r],
                    first_token_s,
                    completion_s,
                    queueing_s: arena.queueing_s[r],
                    decode_tokens: req.decode_tokens,
                }
            })
            .collect();
        (timelines, self.acc)
    }
}

/// Builds a [`ServingReport`] from completed timelines and the simulation
/// accumulators. Shared by [`ServingEngine::run`] and the fleet-level
/// merge in [`crate::cluster`], so single-engine and fleet metrics are
/// computed by one definition. The per-class rows reuse the same metric
/// computation over each class's timeline subset; for a run with a single
/// distinct class the row is the aggregate metrics verbatim, which is what
/// makes a one-class mix bit-identical to an untagged run.
pub(crate) fn build_report(
    timelines: Vec<RequestTimeline>,
    acc: &SimAccumulators,
) -> ServingReport {
    let metrics = compute_metrics(&timelines, acc);
    let mut classes: Vec<u32> = timelines.iter().map(|t| t.class).collect();
    classes.sort_unstable();
    classes.dedup();
    let per_class = if classes.len() <= 1 {
        classes
            .into_iter()
            .map(|class| ClassMetrics {
                class,
                metrics: metrics.clone(),
            })
            .collect()
    } else {
        classes
            .into_iter()
            .map(|class| ClassMetrics {
                class,
                metrics: compute_metrics_for(&timelines, Some(class), acc),
            })
            .collect()
    };
    ServingReport {
        timelines,
        metrics,
        per_class,
        cache: acc.cache.to_usage(),
        streamed: None,
    }
}

/// Computes aggregate [`ServingMetrics`] over a set of timelines. The
/// accumulator-derived fields (decode fill, iterative-retrieval batching)
/// describe the shared pipeline, not a timeline subset — per-class rows pass
/// the run's accumulators through unchanged.
fn compute_metrics(timelines: &[RequestTimeline], acc: &SimAccumulators) -> ServingMetrics {
    compute_metrics_for(timelines, None, acc)
}

/// [`compute_metrics`] restricted to one class (`None` = every request).
/// Per-class rows are computed by filtering in place rather than cloning
/// each class's timeline subset into a scratch vector; the filter preserves
/// timeline order, so the resulting metrics are identical to the
/// clone-the-subset formulation. Sample buffers are sorted once in place
/// and sliced for the percentile fields ([`LatencyStats::from_sorted`])
/// instead of being re-copied per metric family.
pub(crate) fn compute_metrics_for(
    timelines: &[RequestTimeline],
    class: Option<u32>,
    acc: &SimAccumulators,
) -> ServingMetrics {
    let sel = move |t: &&RequestTimeline| class.map_or(true, |c| t.class == c);
    let mut ttfts: Vec<f64> = timelines
        .iter()
        .filter(sel)
        .map(RequestTimeline::ttft_s)
        .collect();
    let mut tpots: Vec<f64> = timelines
        .iter()
        .filter(sel)
        .map(RequestTimeline::tpot_s)
        .collect();
    let mut latencies: Vec<f64> = timelines
        .iter()
        .filter(sel)
        .map(RequestTimeline::latency_s)
        .collect();
    ttfts.sort_by(f64::total_cmp);
    tpots.sort_by(f64::total_cmp);
    latencies.sort_by(f64::total_cmp);
    let makespan = timelines
        .iter()
        .filter(sel)
        .map(|t| t.completion_s)
        .fold(0.0f64, f64::max);
    let n = ttfts.len();
    let first_arrival = if n == 0 {
        0.0
    } else {
        timelines
            .iter()
            .filter(sel)
            .map(|t| t.arrival_s)
            .fold(f64::INFINITY, f64::min)
    };
    let last_arrival = timelines
        .iter()
        .filter(sel)
        .map(|t| t.arrival_s)
        .fold(0.0f64, f64::max);
    let serving_duration = (makespan - first_arrival).max(0.0);
    let drain_tail = (makespan - last_arrival).max(0.0);
    let queueing_mean = if n == 0 {
        0.0
    } else {
        timelines
            .iter()
            .filter(sel)
            .map(|t| t.queueing_s)
            .sum::<f64>()
            / n as f64
    };
    let service_mean = if n == 0 {
        0.0
    } else {
        timelines
            .iter()
            .filter(sel)
            .map(RequestTimeline::service_s)
            .sum::<f64>()
            / n as f64
    };
    ServingMetrics {
        requests: n,
        completed: n,
        first_arrival_s: first_arrival,
        last_arrival_s: last_arrival,
        makespan_s: makespan,
        serving_duration_s: serving_duration,
        drain_tail_s: drain_tail,
        throughput_rps: if serving_duration > 0.0 {
            n as f64 / serving_duration
        } else {
            0.0
        },
        ttft: LatencyStats::from_sorted(&ttfts),
        tpot: LatencyStats::from_sorted(&tpots),
        latency: LatencyStats::from_sorted(&latencies),
        queueing_mean_s: queueing_mean,
        service_mean_s: service_mean,
        mean_decode_fill: if acc.stepping_time > 0.0 {
            acc.fill_weighted_time / acc.stepping_time
        } else {
            0.0
        },
        retrieval_batches: acc.retrieval_batches,
        mean_retrieval_batch_fill: if acc.retrieval_batches == 0 {
            0.0
        } else {
            acc.retrieval_fill as f64 / f64::from(acc.retrieval_batches)
        },
        events_processed: acc.events,
        shed: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rago_schema::SequenceProfile;
    use rago_workloads::{ArrivalProcess, TraceSpec};

    fn one_stage_spec(
        stage_latency: f64,
        batch: u32,
        decode_step: f64,
        decode_batch: u32,
    ) -> PipelineSpec {
        PipelineSpec::new(
            vec![StageSpec::new(
                "prefix",
                0,
                batch,
                LatencyTable::constant(batch, stage_latency),
            )],
            DecodeSpec::new(
                decode_batch,
                LatencyTable::constant(decode_batch, decode_step),
            ),
        )
    }

    fn req(id: u64, arrival: f64, tokens: u32) -> EngineRequest {
        EngineRequest {
            id,
            arrival_s: arrival,
            prefix_tokens: 0,
            decode_tokens: tokens,
            class: 0,
            identity: None,
        }
    }

    #[test]
    fn single_request_passes_through_cleanly() {
        let spec = one_stage_spec(0.1, 8, 0.01, 4);
        let report = ServingEngine::new(spec, vec![req(0, 0.0, 10)]).run();
        let t = &report.timelines[0];
        assert!((t.ttft_s() - 0.1).abs() < 1e-12);
        assert!((t.completion_s - (0.1 + 10.0 * 0.01)).abs() < 1e-12);
        assert!((t.tpot_s() - 0.01).abs() < 1e-12);
        assert!(t.queueing_s.abs() < 1e-12);
        assert_eq!(report.metrics.completed, 1);
    }

    #[test]
    fn queueing_builds_when_the_stage_is_saturated() {
        // Stage takes 1 s per batch of 1; three simultaneous arrivals queue.
        let spec = one_stage_spec(1.0, 1, 0.01, 8);
        let report =
            ServingEngine::new(spec, vec![req(0, 0.0, 1), req(1, 0.0, 1), req(2, 0.0, 1)]).run();
        let ttfts: Vec<f64> = report
            .timelines
            .iter()
            .map(RequestTimeline::ttft_s)
            .collect();
        assert!((ttfts[0] - 1.0).abs() < 1e-12);
        assert!((ttfts[1] - 2.0).abs() < 1e-12);
        assert!((ttfts[2] - 3.0).abs() < 1e-12);
        assert!((report.timelines[2].queueing_s - 2.0).abs() < 1e-12);
        assert!(report.metrics.queueing_mean_s > 0.9);
    }

    #[test]
    fn microbatching_bounds_the_dispatch_size() {
        let spec = one_stage_spec(0.5, 2, 0.01, 16);
        let report = ServingEngine::new(spec, (0..6).map(|i| req(i, 0.0, 1)).collect()).run();
        // Three sequential micro-batches of 2: TTFTs 0.5, 0.5, 1.0, 1.0, 1.5, 1.5.
        let mut ttfts: Vec<f64> = report
            .timelines
            .iter()
            .map(RequestTimeline::ttft_s)
            .collect();
        ttfts.sort_by(f64::total_cmp);
        assert!((ttfts[1] - 0.5).abs() < 1e-12);
        assert!((ttfts[3] - 1.0).abs() < 1e-12);
        assert!((ttfts[5] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn continuous_batching_joins_mid_flight_and_respects_slots() {
        // Decode slot cap of 1: the second request must wait for the first
        // to finish decoding before joining.
        let spec = one_stage_spec(0.1, 8, 0.1, 1);
        let report = ServingEngine::new(spec, vec![req(0, 0.0, 5), req(1, 0.0, 5)]).run();
        let a = &report.timelines[0];
        let b = &report.timelines[1];
        // Both prefix together (batch 8 holds both), but decode serializes.
        assert!((a.ttft_s() - 0.1).abs() < 1e-12);
        assert!((b.ttft_s() - 0.1).abs() < 1e-12);
        assert!((a.completion_s - 0.6).abs() < 1e-12);
        assert!((b.completion_s - 1.1).abs() < 1e-12);
        assert!((b.decode_join_s - 0.6).abs() < 1e-12);
        assert!(b.queueing_s > 0.49); // admission wait
    }

    #[test]
    fn late_arrival_joins_the_running_decode_batch() {
        // First request decodes alone; second arrives mid-decode and joins
        // at the next step boundary (continuous batching).
        let spec = PipelineSpec::new(
            Vec::new(),
            DecodeSpec::new(4, LatencyTable::constant(4, 0.1)),
        );
        let report = ServingEngine::new(spec, vec![req(0, 0.0, 10), req(1, 0.25, 3)]).run();
        let b = &report.timelines[1];
        // Arrives at 0.25 during the step ending 0.3; first own step ends 0.4.
        assert!((b.first_token_s - 0.4).abs() < 1e-12);
        assert!((b.completion_s - 0.6).abs() < 1e-12);
        assert!(report.metrics.mean_decode_fill > 1.0);
    }

    #[test]
    fn collocated_stages_prefer_the_latest_stage() {
        // Two stages share one resource; micro-batch of 1, two requests.
        // Latest-stage-first finishes request 0 entirely before starting
        // request 1's first stage.
        let spec = PipelineSpec::new(
            vec![
                StageSpec::new("s1", 0, 1, LatencyTable::constant(1, 0.1)),
                StageSpec::new("s2", 0, 1, LatencyTable::constant(1, 0.1)),
            ],
            DecodeSpec::new(8, LatencyTable::constant(8, 1e-3)),
        );
        let report = ServingEngine::new(spec, vec![req(0, 0.0, 1), req(1, 0.0, 1)]).run();
        assert!((report.timelines[0].ttft_s() - 0.2).abs() < 1e-12);
        assert!((report.timelines[1].ttft_s() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn disaggregated_stages_pipeline() {
        // Same stages on distinct resources: stage 1 of request 1 overlaps
        // stage 2 of request 0.
        let spec = PipelineSpec::new(
            vec![
                StageSpec::new("s1", 0, 1, LatencyTable::constant(1, 0.1)),
                StageSpec::new("s2", 1, 1, LatencyTable::constant(1, 0.1)),
            ],
            DecodeSpec::new(8, LatencyTable::constant(8, 1e-3)),
        );
        let report = ServingEngine::new(spec, vec![req(0, 0.0, 1), req(1, 0.0, 1)]).run();
        assert!((report.timelines[0].ttft_s() - 0.2).abs() < 1e-12);
        assert!((report.timelines[1].ttft_s() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn iterative_retrievals_pause_and_resume() {
        let spec = PipelineSpec::new(
            Vec::new(),
            DecodeSpec::new(8, LatencyTable::constant(8, 1e-3)),
        )
        .with_iterative(IterativeSpec {
            retrievals_per_sequence: 2,
            iterative_batch: 4,
            retrieval_prefix_latency_s: 0.05,
            seed: 9,
        });
        let report = ServingEngine::new(spec, (0..8).map(|i| req(i, 0.0, 64)).collect()).run();
        assert!(report.metrics.retrieval_batches >= 4); // 16 retrievals / batch 4
        assert!(report.metrics.mean_retrieval_batch_fill <= 4.0 + 1e-12);
        // Pauses necessarily stretch decode beyond the unobstructed time.
        let unobstructed = 64.0 * 1e-3;
        assert!(report.metrics.tpot.max_s * 64.0 > unobstructed + 0.05);
    }

    #[test]
    fn from_trace_runs_all_requests_under_poisson_load() {
        let spec = PipelineSpec::new(
            vec![StageSpec::new(
                "prefix",
                0,
                8,
                LatencyTable::from_fn(8, |b| 0.01 + 0.002 * f64::from(b)),
            )],
            DecodeSpec::new(
                32,
                LatencyTable::from_fn(32, |b| 2e-3 + 1e-5 * f64::from(b)),
            ),
        );
        let trace = TraceSpec {
            num_requests: 200,
            profile: SequenceProfile::paper_default().with_decode_tokens(16),
            arrival: ArrivalProcess::Poisson { rate_rps: 50.0 },
            length_jitter: 0.3,
            seed: 21,
        }
        .generate();
        let report = ServingEngine::from_trace(spec, &trace).run();
        assert_eq!(report.metrics.completed, 200);
        assert!(report.metrics.throughput_rps > 0.0);
        // Percentiles are ordered.
        let m = &report.metrics;
        assert!(m.ttft.p50_s <= m.ttft.p95_s && m.ttft.p95_s <= m.ttft.p99_s);
        assert!(m.ttft.p99_s <= m.ttft.max_s);
        assert!(m.tpot.p50_s <= m.tpot.max_s);
        // Timelines are internally consistent.
        for t in &report.timelines {
            assert!(t.first_token_s >= t.arrival_s);
            assert!(t.completion_s >= t.first_token_s);
            assert!(t.queueing_s >= -1e-12);
            assert!(t.queueing_s <= t.latency_s() + 1e-12);
        }
    }

    #[test]
    fn attainment_and_goodput_follow_the_targets() {
        let spec = one_stage_spec(0.1, 8, 0.01, 8);
        let report = ServingEngine::new(spec, (0..8).map(|i| req(i, 0.0, 10)).collect()).run();
        let generous = SloTarget::new(10.0, 1.0);
        let impossible = SloTarget::new(1e-6, 1e-9);
        assert!((report.attainment(&generous) - 1.0).abs() < 1e-12);
        assert!(report.attainment(&impossible).abs() < 1e-12);
        assert!(report.goodput_rps(&generous) > 0.0);
        assert!(report.goodput_rps(&impossible).abs() < 1e-12);
        assert!(report.meets_slo(&generous));
        assert!(!report.meets_slo(&impossible));
        assert!((report.goodput_rps(&generous) - report.metrics.throughput_rps).abs() < 1e-12);
    }

    #[test]
    fn knee_picks_the_largest_conforming_rate() {
        let slo = SloTarget::new(1.0, 0.1).with_attainment(0.9);
        let sweep = [(5.0, 1.0), (10.0, 0.95), (20.0, 0.89), (40.0, 0.2)];
        assert_eq!(sustained_throughput_knee(&sweep, &slo), Some(10.0));
        assert_eq!(sustained_throughput_knee(&[], &slo), None);
    }

    /// Regression: a non-monotone sweep (noise or burst artifacts making an
    /// overloaded rate *appear* to recover) must not report a knee beyond
    /// the first SLO-violating rate. The old implementation took the global
    /// max conforming rate and returned 40 rps here.
    #[test]
    fn knee_stops_at_the_first_violation_in_a_non_monotone_sweep() {
        let slo = SloTarget::new(1.0, 0.1).with_attainment(0.9);
        let sweep = [(5.0, 1.0), (10.0, 0.7), (20.0, 0.95), (40.0, 0.93)];
        assert_eq!(sustained_throughput_knee(&sweep, &slo), Some(5.0));
        // Order independence: the sweep is sorted internally.
        let shuffled = [(40.0, 0.93), (5.0, 1.0), (20.0, 0.95), (10.0, 0.7)];
        assert_eq!(sustained_throughput_knee(&shuffled, &slo), Some(5.0));
        // First swept rate already violating: no sustained region at all.
        assert_eq!(
            sustained_throughput_knee(&[(5.0, 0.5), (10.0, 0.95)], &slo),
            None
        );
    }

    /// Regression: rates are measured over the serving window (first arrival
    /// to last completion), so a trace shifted +100 s reports the same
    /// throughput and goodput as the unshifted one, and the drain tail is
    /// exposed for capacity planning.
    #[test]
    fn throughput_is_measured_from_the_first_arrival() {
        let spec = one_stage_spec(0.1, 4, 0.01, 8);
        let base: Vec<EngineRequest> = (0..12).map(|i| req(i, 0.05 * i as f64, 10)).collect();
        let shifted: Vec<EngineRequest> = base
            .iter()
            .map(|r| EngineRequest {
                arrival_s: r.arrival_s + 100.0,
                ..*r
            })
            .collect();
        let a = ServingEngine::new(spec.clone(), base).run();
        let b = ServingEngine::new(spec, shifted).run();
        assert!((b.metrics.first_arrival_s - 100.0).abs() < 1e-12);
        assert!((b.metrics.serving_duration_s - a.metrics.serving_duration_s).abs() < 1e-9);
        assert!(
            (b.metrics.throughput_rps - a.metrics.throughput_rps).abs() < 1e-9,
            "shifted trace deflated throughput: {} vs {}",
            b.metrics.throughput_rps,
            a.metrics.throughput_rps
        );
        let slo = SloTarget::new(10.0, 1.0);
        assert!((b.goodput_rps(&slo) - a.goodput_rps(&slo)).abs() < 1e-9);
        // The drain tail is the post-last-arrival completion time.
        assert!(b.metrics.drain_tail_s > 0.0);
        assert!(
            (b.metrics.drain_tail_s - (b.metrics.makespan_s - b.metrics.last_arrival_s)).abs()
                < 1e-12
        );
        assert!(b.metrics.serving_duration_s >= b.metrics.drain_tail_s);
    }

    #[test]
    fn latency_table_saturates() {
        let t = LatencyTable::from_fn(4, f64::from);
        assert_eq!(t.latency(1), 1.0);
        assert_eq!(t.latency(4), 4.0);
        assert_eq!(t.latency(9), 4.0); // saturates
        assert_eq!(t.max_fill(), 4);
    }

    #[test]
    fn latency_stats_percentiles_are_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = LatencyStats::from_samples(&samples);
        assert_eq!(s.p50_s, 50.0);
        assert_eq!(s.p95_s, 95.0);
        assert_eq!(s.p99_s, 99.0);
        assert_eq!(s.max_s, 100.0);
        assert!((s.mean_s - 50.5).abs() < 1e-12);
        let empty = LatencyStats::from_samples(&[]);
        assert_eq!(empty.max_s, 0.0);
    }

    #[test]
    fn deterministic_given_identical_inputs() {
        let build = || {
            let spec = PipelineSpec::new(
                vec![StageSpec::new(
                    "prefix",
                    0,
                    4,
                    LatencyTable::constant(4, 0.02),
                )],
                DecodeSpec::new(16, LatencyTable::constant(16, 2e-3)),
            )
            .with_iterative(IterativeSpec {
                retrievals_per_sequence: 2,
                iterative_batch: 4,
                retrieval_prefix_latency_s: 0.03,
                seed: 5,
            });
            let trace = TraceSpec {
                num_requests: 64,
                profile: SequenceProfile::paper_default().with_decode_tokens(32),
                arrival: ArrivalProcess::Poisson { rate_rps: 100.0 },
                length_jitter: 0.2,
                seed: 3,
            }
            .generate();
            ServingEngine::from_trace(spec, &trace).run()
        };
        assert_eq!(build(), build());
    }

    #[test]
    #[should_panic(expected = "at least one token")]
    fn zero_token_requests_are_rejected() {
        let _ = ServingEngine::new(one_stage_spec(0.1, 1, 0.01, 1), vec![req(0, 0.0, 0)]);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn zero_step_latency_is_rejected() {
        let _ = DecodeSpec::new(4, LatencyTable::constant(4, 0.0));
    }

    /// Audit pin: every percentile of a single-sample distribution is the
    /// sample itself (nearest-rank with n = 1 selects rank 1 for any p).
    #[test]
    fn single_sample_stats_collapse_to_the_sample() {
        let s = LatencyStats::from_samples(&[0.125]);
        assert_eq!(s.mean_s, 0.125);
        assert_eq!(s.p50_s, 0.125);
        assert_eq!(s.p95_s, 0.125);
        assert_eq!(s.p99_s, 0.125);
        assert_eq!(s.max_s, 0.125);
    }

    /// Audit pin: duplicate values collapse every percentile to that value,
    /// and ties never push a rank past the duplicates.
    #[test]
    fn duplicate_values_collapse_percentiles() {
        let s = LatencyStats::from_samples(&[2.0; 7]);
        assert_eq!((s.p50_s, s.p95_s, s.p99_s, s.max_s), (2.0, 2.0, 2.0, 2.0));
        // Mixed duplicates: p50 of [1,1,1,9] is rank ceil(2) = 2 → 1.0.
        let s = LatencyStats::from_samples(&[9.0, 1.0, 1.0, 1.0]);
        assert_eq!(s.p50_s, 1.0);
        assert_eq!(s.max_s, 9.0);
    }

    /// Regression for the nearest-rank rounding fix: `0.2 × 5` is
    /// `1.0000000000000002` in f64, so a naive `ceil` bumped the p20 of five
    /// samples from rank 1 to rank 2. The tolerance keeps exact-integer
    /// products at their true rank without disturbing non-integer ones.
    #[test]
    fn percentile_rank_survives_float_noise() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&sorted, 20.0), 1.0);
        assert_eq!(percentile(&sorted, 40.0), 2.0);
        assert_eq!(percentile(&sorted, 41.0), 3.0); // ceil(2.05) = 3
        assert_eq!(percentile(&sorted, 100.0), 5.0);
        assert_eq!(percentile(&sorted, 0.0), 1.0); // clamped to rank 1
    }

    /// Audit pin: a trace whose requests request *zero* decode tokens is
    /// clamped to one token per request at the engine boundary, and the
    /// drain tail stays consistent (`makespan − last arrival`, never
    /// negative, never exceeding the serving duration).
    #[test]
    fn zero_decode_requests_are_clamped_and_drain_tail_holds() {
        let trace = Trace {
            requests: (0..5)
                .map(|i| Request {
                    id: i,
                    arrival_s: 0.1 * i as f64,
                    question_tokens: 16,
                    prefix_tokens: 64,
                    decode_tokens: 0,
                    class: 0,
                    identity: None,
                })
                .collect(),
        };
        let spec = one_stage_spec(0.05, 4, 0.01, 8);
        let report = ServingEngine::from_trace(spec, &trace).run();
        assert_eq!(report.metrics.completed, 5);
        assert!(report.timelines.iter().all(|t| t.decode_tokens == 1));
        let m = &report.metrics;
        assert!(m.drain_tail_s >= 0.0);
        assert!((m.drain_tail_s - (m.makespan_s - m.last_arrival_s)).abs() < 1e-12);
        assert!(m.serving_duration_s >= m.drain_tail_s);
        // One decode step after the last arrival's prefix: the tail is the
        // remaining service time, strictly positive here.
        assert!(m.drain_tail_s > 0.0);
        // TPOT divides by the clamped token count, so it stays finite.
        assert!(m.tpot.max_s.is_finite() && m.tpot.max_s > 0.0);
    }

    #[test]
    fn per_class_rows_partition_the_run() {
        let spec = one_stage_spec(0.05, 4, 5e-3, 8);
        let mut requests: Vec<EngineRequest> = (0..30)
            .map(|i| EngineRequest {
                id: i,
                arrival_s: 0.02 * i as f64,
                prefix_tokens: 0,
                decode_tokens: 8 + (i as u32 % 5),
                class: (i % 3) as u32,
                identity: None,
            })
            .collect();
        requests[0].class = 2; // classes need not start at 0
        let report = ServingEngine::new(spec, requests).run();
        assert_eq!(report.classes(), vec![0, 1, 2]);
        let total: usize = report.per_class.iter().map(|c| c.metrics.requests).sum();
        assert_eq!(total, 30);
        for row in &report.per_class {
            let count = report
                .timelines
                .iter()
                .filter(|t| t.class == row.class)
                .count();
            assert_eq!(row.metrics.requests, count);
            assert_eq!(row.metrics.completed, count);
            // Shared-resource fields repeat the run-level value.
            assert_eq!(
                row.metrics.mean_decode_fill,
                report.metrics.mean_decode_fill
            );
            // Class windows nest inside the run's window.
            assert!(row.metrics.first_arrival_s >= report.metrics.first_arrival_s);
            assert!(row.metrics.makespan_s <= report.metrics.makespan_s);
        }
        // Attainment per class is a partition of overall attainment.
        let slo = SloTarget::new(0.5, 0.02);
        let met_total: f64 = report
            .per_class
            .iter()
            .map(|c| report.class_attainment(c.class, &slo) * c.metrics.requests as f64)
            .sum();
        assert!((met_total / 30.0 - report.attainment(&slo)).abs() < 1e-12);
        // Absent classes behave like empty runs.
        assert_eq!(report.class_attainment(99, &slo), 1.0);
        assert_eq!(report.class_goodput_rps(99, &slo), 0.0);
    }

    #[test]
    fn single_class_runs_have_one_row_equal_to_the_aggregate() {
        let spec = one_stage_spec(0.03, 4, 2e-3, 8);
        let report = ServingEngine::new(spec, (0..12).map(|i| req(i, 0.0, 10)).collect()).run();
        assert_eq!(report.per_class.len(), 1);
        assert_eq!(report.per_class[0].class, 0);
        assert_eq!(report.per_class[0].metrics, report.metrics);
    }
}
