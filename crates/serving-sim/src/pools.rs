//! Disaggregated prefill/decode serving: typed replica pools linked by a
//! KV-cache handoff.
//!
//! Splitwise and DistServe size a *Prefill* pool for TTFT and a *Decode*
//! pool for TPOT, moving each request's prefilled KV state across an
//! interconnect between the phases. [`DisaggEngine`] simulates exactly that
//! on top of the per-replica DES ([`crate::engine`]):
//!
//! 1. Arrivals route across the Prefill pool with the fleet's arrival
//!    [`RouterPolicy`] (state-aware, same semantics as
//!    [`crate::cluster::ClusterEngine`]).
//! 2. A request finishing its last pre-decode stage on a prefill replica
//!    emits its first token there and a *handoff* record; the
//!    [`KvTransferModel`] prices the KV transfer (bytes from prefix length,
//!    latency from interconnect bandwidth plus fixed overhead) and a
//!    transfer-completion event enters the pool-level event queue
//!    (the `equeue` calendar lane — same-instant completions keep
//!    their emission order).
//! 3. At the transfer-completion instant the [`PoolRouter`] picks a decode
//!    replica (any intra-pool policy, including the content-affinity
//!    routers) and the request is re-injected with its *original* arrival
//!    time, so end-to-end latency includes queueing, prefill, transfer, and
//!    decode.
//!
//! Faults operate per pool ([`PoolCrash`]): a crash in the prefill pool
//! re-queues un-transferred work to prefill survivors only (handoffs
//! already emitted keep their in-flight transfers), a decode crash
//! re-queues un-finished decode work to decode survivors, and a crashed
//! replica can cold-restart after a delay.
//!
//! Degenerate paths are pinned by tests: a 1+1 split under
//! [`KvTransferModel::zero`] reproduces the monolithic engine's per-request
//! timings exactly (`tests/proptest_pools.rs`), and a single-Monolithic-pool
//! fleet never enters this module at all — the core evaluators dispatch it
//! to [`crate::cluster::ClusterEngine`] unchanged.
//!
//! # Examples
//!
//! ```
//! use rago_serving_sim::engine::{DecodeSpec, LatencyTable, PipelineSpec, StageSpec};
//! use rago_serving_sim::pools::DisaggEngine;
//! use rago_schema::{FleetConfig, KvTransferModel, RouterPolicy, SequenceProfile};
//! use rago_workloads::{ArrivalProcess, TraceSpec};
//!
//! let prefill = PipelineSpec::new(
//!     vec![StageSpec::new("prefix", 0, 8, LatencyTable::constant(8, 0.02))],
//!     DecodeSpec::new(32, LatencyTable::constant(32, 3e-3)),
//! );
//! let decode = PipelineSpec::decode_only(DecodeSpec::new(32, LatencyTable::constant(32, 3e-3)), None);
//! let fleet = FleetConfig::split(1, 2, RouterPolicy::LeastOutstanding);
//! let trace = TraceSpec {
//!     num_requests: 50,
//!     profile: SequenceProfile::paper_default().with_decode_tokens(16),
//!     arrival: ArrivalProcess::Poisson { rate_rps: 60.0 },
//!     length_jitter: 0.0,
//!     seed: 11,
//! }
//! .generate();
//! let model = KvTransferModel::new(131_072.0, 25e9, 20e-6);
//! let report = DisaggEngine::from_fleet(prefill, decode, &fleet, model)
//!     .unwrap()
//!     .run_trace(&trace);
//! assert_eq!(report.merged.metrics.completed, 50);
//! assert_eq!(report.transfers.transfers, 50);
//! assert!(report.transfers.latency_total_s > 0.0);
//! ```

use crate::cluster::{advance_all, route_pick, FleetReport, LoadImbalance, ReplicaReport};
use crate::engine::{
    build_report, sort_by_arrival, EngineRequest, PipelineSpec, ReplicaSim, RequestTimeline,
    ServingReport, SimAccumulators,
};
use crate::equeue::EventQueue;
use rago_schema::{FleetConfig, KvTransferModel, PoolRole, RouterPolicy};
use rago_workloads::Trace;
use serde::{Deserialize, Serialize};

/// Phase-aware dispatch for a disaggregated fleet: the arrival router over
/// the Prefill pool plus the transfer router over the Decode pool, each an
/// ordinary intra-pool [`RouterPolicy`] with its own round-robin cursor.
#[derive(Debug, Clone)]
pub struct PoolRouter {
    /// Policy routing external arrivals across the prefill pool.
    pub prefill: RouterPolicy,
    /// Policy routing completed KV transfers across the decode pool.
    pub decode: RouterPolicy,
    rr_prefill: usize,
    rr_decode: usize,
}

impl PoolRouter {
    /// Creates a pool router.
    pub fn new(prefill: RouterPolicy, decode: RouterPolicy) -> Self {
        Self {
            prefill,
            decode,
            rr_prefill: 0,
            rr_decode: 0,
        }
    }

    /// Picks a live slot for `req` within `pool` (arrival → prefill pool,
    /// transfer completion → decode pool). Returns an index into
    /// `live` — the caller's list of live slot ids — while hashing-based
    /// policies see the *stable* slot ids, so a crash/restart re-homes only
    /// the templates touching the affected replica.
    fn pick(
        &mut self,
        role: PoolRole,
        slots: &[PoolSlot],
        live: &[usize],
        req: &EngineRequest,
    ) -> usize {
        let (policy, cursor) = match role {
            PoolRole::Prefill => (self.prefill, &mut self.rr_prefill),
            PoolRole::Decode => (self.decode, &mut self.rr_decode),
            PoolRole::Monolithic => unreachable!("monolithic pools never reach the pool router"),
        };
        route_pick(
            policy,
            live.len(),
            |i| {
                slots[live[i]]
                    .sim
                    .as_ref()
                    .expect("live slot list only holds occupied slots")
            },
            |i| live[i],
            cursor,
            req,
        )
    }
}

/// A deterministic per-pool fault: replica `replica` of `pool` crashes at
/// `at_s`, losing all in-flight work (re-queued to same-pool survivors),
/// and optionally cold-restarts `restart_delay_s` later.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoolCrash {
    /// Which pool the crash hits ([`PoolRole::Prefill`] or
    /// [`PoolRole::Decode`]).
    pub pool: PoolRole,
    /// Slot index of the victim within its pool.
    pub replica: usize,
    /// Crash instant in seconds. At a tie the crash wins against
    /// same-instant transfers and arrivals (the fault-lane convention of
    /// [`crate::faults`]).
    pub at_s: f64,
    /// Cold-restart delay, or `None` for a permanent loss.
    pub restart_delay_s: Option<f64>,
}

/// Aggregate statistics of the prefill→decode KV handoffs of one run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TransferStats {
    /// Completed KV transfers (one per prefill handoff; a request re-queued
    /// by a prefill crash transfers once it finally prefills).
    pub transfers: u64,
    /// Total KV bytes moved across the interconnect.
    pub bytes_total: f64,
    /// Summed transfer latency in seconds.
    pub latency_total_s: f64,
    /// Largest single transfer latency in seconds.
    pub latency_max_s: f64,
    /// Requests re-queued to prefill survivors after prefill-pool crashes.
    pub requeued_prefill: u64,
    /// Requests re-queued to decode survivors after decode-pool crashes.
    pub requeued_decode: u64,
}

impl TransferStats {
    /// Mean transfer latency in seconds (zero for a transfer-free run).
    pub fn latency_mean_s(&self) -> f64 {
        if self.transfers == 0 {
            0.0
        } else {
            self.latency_total_s / self.transfers as f64
        }
    }
}

/// One pool's slice of a disaggregated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolReport {
    /// The pool's phase.
    pub role: PoolRole,
    /// Per-replica breakdowns by stable slot id. A crashed-and-restarted
    /// slot reports the union of its incarnations' work.
    pub per_replica: Vec<ReplicaReport>,
    /// How evenly the pool's router spread its requests (transfer
    /// completions for the decode pool; re-queued work counts toward the
    /// replica that finally served it).
    pub imbalance: LoadImbalance,
    /// The intra-pool routing policy.
    pub router: RouterPolicy,
    /// `(request id, slot index)` for every dispatch into this pool, in
    /// dispatch order: arrivals for the prefill pool, transfer completions
    /// for the decode pool. A request re-queued by a crash appears again
    /// under its new slot.
    pub assignments: Vec<(u64, usize)>,
}

/// The merged result of a disaggregated two-pool run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DisaggReport {
    /// Fleet-level report over *stitched* request timelines: arrival and
    /// pre-decode stages from the prefill leg, decode join and completion
    /// from the decode leg, queueing summed across both. TTFT is the
    /// prefill-side first token; the KV transfer shows up in TPOT and
    /// end-to-end latency, exactly as disaggregation trades it in practice.
    /// `events_processed` counts both pools' DES events (a disaggregated run
    /// processes one extra arrival event per request — the transfer
    /// completion).
    pub merged: ServingReport,
    /// The prefill pool's breakdown.
    pub prefill: PoolReport,
    /// The decode pool's breakdown.
    pub decode: PoolReport,
    /// KV-handoff statistics.
    pub transfers: TransferStats,
    /// The transfer model that priced the handoffs.
    pub transfer_model: KvTransferModel,
}

impl DisaggReport {
    /// Flattens the two-pool run into the [`FleetReport`] shape the flat
    /// evaluators return, so pool and flat fleets score through one code
    /// path: replicas are renumbered prefill-first (prefill slot `i` → `i`,
    /// decode slot `j` → `prefill_len + j`), `assignments` concatenates both
    /// pools' dispatches under the renumbered indices (a disaggregated
    /// request therefore appears twice — once per phase), `imbalance` spans
    /// all replicas, and `router` is the arrival (prefill) router. The
    /// merged report is shared unchanged.
    pub fn to_fleet_report(&self) -> FleetReport {
        let prefill_len = self.prefill.per_replica.len();
        let mut per_replica = Vec::with_capacity(prefill_len + self.decode.per_replica.len());
        per_replica.extend(self.prefill.per_replica.iter().cloned());
        per_replica.extend(self.decode.per_replica.iter().map(|r| ReplicaReport {
            replica: prefill_len + r.replica,
            assigned: r.assigned,
            report: r.report.clone(),
        }));
        let assignments: Vec<(u64, usize)> = self
            .prefill
            .assignments
            .iter()
            .copied()
            .chain(
                self.decode
                    .assignments
                    .iter()
                    .map(|&(id, slot)| (id, prefill_len + slot)),
            )
            .collect();
        let imbalance =
            LoadImbalance::from_counts(per_replica.iter().map(|r| r.assigned).collect());
        FleetReport {
            merged: self.merged.clone(),
            per_replica,
            assignments,
            imbalance,
            router: self.prefill.router,
        }
    }
}

/// One replica slot of a pool: stable id, current incarnation (None while
/// crashed), retired incarnations' work, and routing counters.
struct PoolSlot {
    sim: Option<ReplicaSim>,
    /// Timelines and accumulators of crashed incarnations, merged into the
    /// slot's report at the end.
    retired_timelines: Vec<RequestTimeline>,
    retired_acc: SimAccumulators,
    /// Cache probes and event-queue counters of crashed incarnations,
    /// harvested at each death instant (empty when tracing is off).
    retired_probes: Vec<crate::engine::CacheProbe>,
    retired_equeue: crate::equeue::EventQueueStats,
    assigned: usize,
}

impl PoolSlot {
    fn new(spec: &PipelineSpec, track_probes: bool) -> Self {
        let mut sim = ReplicaSim::new(spec.clone());
        sim.track_probes = track_probes;
        Self {
            sim: Some(sim),
            retired_timelines: Vec::new(),
            retired_acc: SimAccumulators::default(),
            retired_probes: Vec::new(),
            retired_equeue: crate::equeue::EventQueueStats::default(),
            assigned: 0,
        }
    }
}

/// A pending KV handoff: the request plus its priced transfer.
struct TransferRec {
    req: EngineRequest,
    bytes: f64,
    latency_s: f64,
}

/// What the pool-level agenda does at an instant.
#[derive(Debug, Clone, Copy)]
enum PoolAction {
    Crash { pool: PoolRole, replica: usize },
    Restart { pool: PoolRole, replica: usize },
}

/// The disaggregated two-pool serving engine. See the module docs.
pub struct DisaggEngine {
    prefill_spec: PipelineSpec,
    decode_spec: PipelineSpec,
    prefill_replicas: usize,
    decode_replicas: usize,
    prefill_router: RouterPolicy,
    decode_router: RouterPolicy,
    transfer: KvTransferModel,
    parallel_advance: bool,
    faults: Vec<PoolCrash>,
    telemetry: rago_telemetry::TelemetryConfig,
}

impl DisaggEngine {
    /// Creates the engine from explicit pool shapes. `prefill_spec` is the
    /// pre-decode pipeline (marked handoff internally); `decode_spec`
    /// should be a [`PipelineSpec::decode_only`] pipeline.
    ///
    /// # Panics
    ///
    /// Panics when a pool is empty, the prefill spec has no pre-decode
    /// stages, or the decode spec still carries pre-decode stages.
    pub fn new(
        prefill_spec: PipelineSpec,
        prefill_replicas: usize,
        prefill_router: RouterPolicy,
        decode_spec: PipelineSpec,
        decode_replicas: usize,
        decode_router: RouterPolicy,
        transfer: KvTransferModel,
    ) -> Self {
        assert!(prefill_replicas > 0, "the prefill pool needs a replica");
        assert!(decode_replicas > 0, "the decode pool needs a replica");
        assert!(
            decode_spec.stages.is_empty(),
            "a decode-pool pipeline must not carry pre-decode stages \
             (use PipelineSpec::decode_only)"
        );
        let prefill_spec = if prefill_spec.handoff {
            prefill_spec
        } else {
            prefill_spec.with_handoff()
        };
        Self {
            prefill_spec,
            decode_spec,
            prefill_replicas,
            decode_replicas,
            prefill_router,
            decode_router,
            transfer,
            parallel_advance: false,
            faults: Vec::new(),
            telemetry: rago_telemetry::TelemetryConfig::disabled(),
        }
    }

    /// Sets the telemetry config used by [`Self::run_telemetry`] (and by
    /// [`Self::run_traced`] for its gauge cadence). The untraced run paths
    /// never consult it.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: rago_telemetry::TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Creates the engine from a disaggregated [`FleetConfig`], or `None`
    /// when the fleet is flat / single-Monolithic-pool (callers dispatch
    /// those to [`crate::cluster::ClusterEngine`] unchanged).
    pub fn from_fleet(
        prefill_spec: PipelineSpec,
        decode_spec: PipelineSpec,
        fleet: &FleetConfig,
        transfer: KvTransferModel,
    ) -> Option<Self> {
        let (prefill, decode) = fleet.prefill_decode()?;
        Some(Self::new(
            prefill_spec,
            prefill.replicas as usize,
            prefill.router,
            decode_spec,
            decode.replicas as usize,
            decode.router,
            transfer,
        ))
    }

    /// Enables rayon-parallel advancement of the prefill pool between
    /// routing points (bit-identical to the serial loop, as in
    /// [`crate::cluster::ClusterEngine::with_parallel_advance`]).
    #[must_use]
    pub fn with_parallel_advance(mut self, parallel: bool) -> Self {
        self.parallel_advance = parallel;
        self
    }

    /// Schedules deterministic per-pool crashes (and optional restarts).
    ///
    /// # Panics
    ///
    /// Panics on a crash aimed at [`PoolRole::Monolithic`], an out-of-range
    /// replica, or a negative/non-finite time or delay.
    #[must_use]
    pub fn with_faults(mut self, faults: Vec<PoolCrash>) -> Self {
        for f in &faults {
            let pool_len = match f.pool {
                PoolRole::Prefill => self.prefill_replicas,
                PoolRole::Decode => self.decode_replicas,
                PoolRole::Monolithic => panic!("pool crashes target Prefill or Decode pools"),
            };
            assert!(
                f.replica < pool_len,
                "crash targets replica {} of a {}-replica {} pool",
                f.replica,
                pool_len,
                f.pool
            );
            assert!(
                f.at_s.is_finite() && f.at_s >= 0.0,
                "crash times must be finite and non-negative"
            );
            if let Some(d) = f.restart_delay_s {
                assert!(
                    d.is_finite() && d >= 0.0,
                    "restart delays must be finite and non-negative"
                );
            }
        }
        self.faults = faults;
        self
    }

    /// Runs the engine over a workload trace. See [`Self::run`].
    pub fn run_trace(&self, trace: &Trace) -> DisaggReport {
        self.run(trace.requests.iter().map(EngineRequest::from).collect())
    }

    /// Runs the fleet over `requests` (sorted by arrival internally) and
    /// returns the merged two-pool report.
    ///
    /// The run interleaves three deterministic lanes on one clock — pool
    /// faults, then KV-transfer completions, then external arrivals at a
    /// tie — and keeps a *knowledge horizon*: a transfer completion is only
    /// acted on once the prefill pool has simulated past it, so a handoff
    /// discovered later can never complete earlier than one already
    /// processed (transfer latency varies with prefix length).
    ///
    /// # Panics
    ///
    /// Panics if any arrival time is negative or non-finite, any request
    /// generates zero tokens, request ids are not unique, or a crash leaves
    /// a pool with work but no survivor to re-queue it to.
    pub fn run(&self, requests: Vec<EngineRequest>) -> DisaggReport {
        self.run_recorded(requests, &mut rago_telemetry::NullRecorder)
            .0
    }

    /// Runs the fleet like [`Self::run`] while recording a trace into `rec`,
    /// then derives per-replica spans, gauges, cache probes, and profile
    /// counters post-hoc. Prefill replicas own tracks `0..P`; decode
    /// replicas own tracks `P..P+D`. The simulated outcome is bit-identical
    /// to the untraced run for any recorder.
    pub fn run_traced<R: rago_telemetry::Recorder>(
        &self,
        requests: Vec<EngineRequest>,
        rec: &mut R,
    ) -> DisaggReport {
        let (report, obs) = self.run_recorded(requests, rec);
        if R::ENABLED {
            let end_s = report.merged.metrics.makespan_s;
            let cadence = self.telemetry.gauge_cadence_s;
            for (base, pool) in [
                (0, &report.prefill),
                (self.prefill_replicas, &report.decode),
            ] {
                for rr in &pool.per_replica {
                    let track = (base + rr.replica) as u32;
                    crate::telemetry::record_request_spans(rec, track, &rr.report.timelines);
                    crate::telemetry::record_load_gauges(
                        rec,
                        track,
                        &rr.report.timelines,
                        cadence,
                        end_s,
                    );
                }
            }
            let mut profile = rago_telemetry::SimProfile::default();
            let events_by_track: std::collections::HashMap<usize, u64> = report
                .prefill
                .per_replica
                .iter()
                .map(|rr| (rr.replica, rr.report.metrics.events_processed))
                .chain(report.decode.per_replica.iter().map(|rr| {
                    (
                        self.prefill_replicas + rr.replica,
                        rr.report.metrics.events_processed,
                    )
                }))
                .collect();
            for ob in &obs {
                crate::telemetry::record_cache_probes(rec, ob.replica as u32, &ob.probes);
                let events = events_by_track.get(&ob.replica).copied().unwrap_or(0);
                profile.merge_from(&crate::telemetry::profile_from_stats(
                    &ob.equeue, events, end_s,
                ));
            }
            profile.record_into(rec, end_s, rago_telemetry::FLEET_TRACK);
        }
        report
    }

    /// Runs with a [`rago_telemetry::TraceRecorder`] configured from the
    /// engine's [`TelemetryConfig`](rago_telemetry::TelemetryConfig) and
    /// returns the report together with the recorder holding the captured
    /// events.
    pub fn run_telemetry(
        &self,
        requests: Vec<EngineRequest>,
    ) -> (DisaggReport, rago_telemetry::TraceRecorder) {
        let mut rec = rago_telemetry::TraceRecorder::new(self.telemetry.clone());
        let report = self.run_traced(requests, &mut rec);
        (report, rec)
    }

    fn run_recorded<R: rago_telemetry::Recorder>(
        &self,
        mut requests: Vec<EngineRequest>,
        rec: &mut R,
    ) -> (DisaggReport, Vec<crate::cluster::ReplicaObs>) {
        sort_by_arrival(&mut requests);
        let mut prefill: Vec<PoolSlot> = (0..self.prefill_replicas)
            .map(|_| PoolSlot::new(&self.prefill_spec, R::ENABLED))
            .collect();
        let mut decode: Vec<PoolSlot> = (0..self.decode_replicas)
            .map(|_| PoolSlot::new(&self.decode_spec, R::ENABLED))
            .collect();
        let mut router = PoolRouter::new(self.prefill_router, self.decode_router);
        let mut stats = TransferStats::default();
        let mut prefill_asg: Vec<(u64, usize)> = Vec::with_capacity(requests.len());
        let mut decode_asg: Vec<(u64, usize)> = Vec::with_capacity(requests.len());

        // Agenda of (time, action): crashes and restarts in time order,
        // ties by schedule position with each crash before its restart.
        let mut agenda: Vec<(f64, PoolAction)> = Vec::with_capacity(self.faults.len() * 2);
        for f in &self.faults {
            agenda.push((
                f.at_s,
                PoolAction::Crash {
                    pool: f.pool,
                    replica: f.replica,
                },
            ));
            if let Some(d) = f.restart_delay_s {
                agenda.push((
                    f.at_s + d,
                    PoolAction::Restart {
                        pool: f.pool,
                        replica: f.replica,
                    },
                ));
            }
        }
        agenda.sort_by(|a, b| a.0.total_cmp(&b.0));

        // Pending transfers keyed by completion time in the calendar lane;
        // same-instant completions pop in emission (= handoff) order.
        let mut pending: EventQueue<u32> = EventQueue::new();
        let mut transfer_meta: Vec<TransferRec> = Vec::new();
        let mut harvest_buf: Vec<(f64, EngineRequest)> = Vec::new();
        let mut live_buf: Vec<usize> = Vec::new();

        // How far the prefill pool has been simulated: transfers completing
        // at or beyond this instant stay pending (an undiscovered handoff
        // could still complete before them).
        let mut horizon = 0.0f64;
        let mut prefill_drained = false;

        let mut arrival_idx = 0usize;
        let mut agenda_idx = 0usize;

        macro_rules! harvest {
            () => {
                for slot in prefill.iter_mut() {
                    if let Some(sim) = slot.sim.as_mut() {
                        sim.take_handoffs(&mut harvest_buf);
                        for (ready_s, req) in harvest_buf.drain(..) {
                            let bytes = self.transfer.bytes_for(req.prefix_tokens);
                            let latency_s = self.transfer.latency_s(req.prefix_tokens);
                            let idx = transfer_meta.len() as u32;
                            transfer_meta.push(TransferRec {
                                req,
                                bytes,
                                latency_s,
                            });
                            pending.push_scheduled(ready_s + latency_s, idx);
                        }
                    }
                }
            };
        }

        loop {
            let t_fault = agenda.get(agenda_idx).map(|a| a.0);
            let t_arrival = requests.get(arrival_idx).map(|r| r.arrival_s);
            // A transfer acts only when it is known-complete (inside the
            // horizon) and strictly earliest: faults and arrivals win ties.
            let t_transfer = pending
                .peek_time()
                .filter(|&tc| prefill_drained || tc < horizon)
                .filter(|&tc| t_fault.map_or(true, |tf| tc < tf))
                .filter(|&tc| t_arrival.map_or(true, |ta| tc < ta));

            if t_transfer.is_some() {
                let (tc, idx) = pending.pop().expect("peeked transfer exists");
                self.deliver_transfer(
                    tc,
                    &transfer_meta[idx as usize],
                    &mut decode,
                    &mut router,
                    &mut live_buf,
                    &mut stats,
                    &mut decode_asg,
                    rec,
                );
                continue;
            }

            match (t_fault, t_arrival) {
                (Some(tf), ta) if ta.map_or(true, |ta| tf <= ta) => {
                    // Advance the prefill pool to the fault instant first so
                    // every handoff that precedes the fault is discovered,
                    // and let those transfers act before the fault does.
                    advance_pool(&mut prefill, tf, self.parallel_advance);
                    harvest!();
                    horizon = horizon.max(tf);
                    if pending.peek_time().is_some_and(|tc| tc < tf) {
                        continue;
                    }
                    let (_, action) = agenda[agenda_idx];
                    agenda_idx += 1;
                    self.apply_action(
                        tf,
                        action,
                        &mut prefill,
                        &mut decode,
                        &mut router,
                        &mut live_buf,
                        &mut stats,
                        &mut prefill_asg,
                        &mut decode_asg,
                        rec,
                    );
                }
                (_, Some(ta)) => {
                    advance_pool(&mut prefill, ta, self.parallel_advance);
                    harvest!();
                    horizon = horizon.max(ta);
                    if pending.peek_time().is_some_and(|tc| tc < ta) {
                        continue;
                    }
                    let req = requests[arrival_idx];
                    arrival_idx += 1;
                    live_slots(&prefill, &mut live_buf);
                    assert!(
                        !live_buf.is_empty(),
                        "an arrival at {ta:.6}s found no live prefill replica"
                    );
                    let pick = router.pick(PoolRole::Prefill, &prefill, &live_buf, &req);
                    let slot = live_buf[pick];
                    if R::ENABLED {
                        crate::telemetry::record_route_pick(
                            rec,
                            ta,
                            self.prefill_router,
                            slot,
                            &req,
                            prefill[slot].sim.as_ref().expect("picked slot is live"),
                        );
                    }
                    prefill[slot].assigned += 1;
                    prefill_asg.push((req.id, slot));
                    prefill[slot]
                        .sim
                        .as_mut()
                        .expect("picked slot is live")
                        .inject(req);
                }
                // The guard on the first arm is always true when there is
                // no arrival, so this point is unreachable.
                (Some(_), None) => unreachable!("a lone fault matches the first arm"),
                (None, None) => {
                    if !prefill_drained {
                        for slot in prefill.iter_mut() {
                            if let Some(sim) = slot.sim.as_mut() {
                                sim.run_to_completion();
                            }
                        }
                        harvest!();
                        prefill_drained = true;
                        continue;
                    }
                    if pending.is_empty() {
                        break;
                    }
                    // Every handoff is known now; drain remaining transfers
                    // in completion order.
                    let (tc, idx) = pending.pop().expect("pending transfer exists");
                    self.deliver_transfer(
                        tc,
                        &transfer_meta[idx as usize],
                        &mut decode,
                        &mut router,
                        &mut live_buf,
                        &mut stats,
                        &mut decode_asg,
                        rec,
                    );
                }
            }
        }

        for slot in decode.iter_mut() {
            if let Some(sim) = slot.sim.as_mut() {
                sim.run_to_completion();
            }
        }

        self.build_disagg_report(prefill, decode, stats, prefill_asg, decode_asg)
    }

    /// Routes one completed KV transfer into the decode pool at `tc`.
    #[allow(clippy::too_many_arguments)]
    fn deliver_transfer<R: rago_telemetry::Recorder>(
        &self,
        tc: f64,
        rec: &TransferRec,
        decode: &mut [PoolSlot],
        router: &mut PoolRouter,
        live_buf: &mut Vec<usize>,
        stats: &mut TransferStats,
        decode_asg: &mut Vec<(u64, usize)>,
        trace: &mut R,
    ) {
        advance_pool(decode, tc, false);
        live_slots(decode, live_buf);
        assert!(
            !live_buf.is_empty(),
            "a KV transfer completing at {tc:.6}s found no live decode replica"
        );
        let pick = router.pick(PoolRole::Decode, decode, live_buf, &rec.req);
        let slot = live_buf[pick];
        if R::ENABLED {
            let track = self.prefill_replicas + slot;
            crate::telemetry::record_route_pick(
                trace,
                tc,
                self.decode_router,
                track,
                &rec.req,
                decode[slot].sim.as_ref().expect("picked slot is live"),
            );
            crate::telemetry::record_kv_transfer(
                trace,
                track as u32,
                tc,
                rec.latency_s,
                rec.bytes,
                &rec.req,
            );
        }
        decode[slot].assigned += 1;
        decode_asg.push((rec.req.id, slot));
        decode[slot]
            .sim
            .as_mut()
            .expect("picked slot is live")
            .inject_delayed(rec.req, tc);
        stats.transfers += 1;
        stats.bytes_total += rec.bytes;
        stats.latency_total_s += rec.latency_s;
        stats.latency_max_s = stats.latency_max_s.max(rec.latency_s);
    }

    /// Applies one agenda action at `t`: kill a replica (re-queueing its
    /// in-flight work to same-pool survivors) or cold-restart a slot.
    #[allow(clippy::too_many_arguments)]
    fn apply_action<R: rago_telemetry::Recorder>(
        &self,
        t: f64,
        action: PoolAction,
        prefill: &mut Vec<PoolSlot>,
        decode: &mut Vec<PoolSlot>,
        router: &mut PoolRouter,
        live_buf: &mut Vec<usize>,
        stats: &mut TransferStats,
        prefill_asg: &mut Vec<(u64, usize)>,
        decode_asg: &mut Vec<(u64, usize)>,
        rec: &mut R,
    ) {
        match action {
            PoolAction::Crash { pool, replica } => {
                let (slots, track_base, policy): (&mut Vec<PoolSlot>, usize, RouterPolicy) =
                    match pool {
                        PoolRole::Prefill => (prefill, 0, self.prefill_router),
                        PoolRole::Decode => (decode, self.prefill_replicas, self.decode_router),
                        PoolRole::Monolithic => unreachable!("validated in with_faults"),
                    };
                // The prefill pool is already advanced (and harvested) to
                // the fault instant by the main loop; the decode pool is
                // advanced here. Either way the victim stops just before
                // `t` — the crash wins the tie against its own work.
                advance_pool(slots, t, false);
                let Some(mut sim) = slots[replica].sim.take() else {
                    panic!("crash at {t:.6}s targets replica {replica} which is already down");
                };
                if R::ENABLED {
                    slots[replica].retired_probes.extend(sim.drain_probe_log());
                    slots[replica]
                        .retired_equeue
                        .merge_from(&sim.equeue_stats());
                }
                let (timelines, in_flight, acc) = sim.dismantle();
                slots[replica].retired_timelines.extend(timelines);
                slots[replica].retired_acc.merge_from(&acc);
                match pool {
                    PoolRole::Prefill => stats.requeued_prefill += in_flight.len() as u64,
                    PoolRole::Decode => stats.requeued_decode += in_flight.len() as u64,
                    PoolRole::Monolithic => unreachable!(),
                }
                live_slots(slots, live_buf);
                assert!(
                    in_flight.is_empty() || !live_buf.is_empty(),
                    "a {pool} crash at {t:.6}s left {} in-flight requests with no survivor",
                    in_flight.len()
                );
                let asg = match pool {
                    PoolRole::Prefill => prefill_asg,
                    PoolRole::Decode => decode_asg,
                    PoolRole::Monolithic => unreachable!(),
                };
                for req in in_flight {
                    let pick = router.pick(pool, slots, live_buf, &req);
                    let slot = live_buf[pick];
                    if R::ENABLED {
                        crate::telemetry::record_route_pick(
                            rec,
                            t,
                            policy,
                            track_base + slot,
                            &req,
                            slots[slot].sim.as_ref().expect("picked slot is live"),
                        );
                    }
                    slots[slot].assigned += 1;
                    asg.push((req.id, slot));
                    slots[slot]
                        .sim
                        .as_mut()
                        .expect("picked slot is live")
                        .inject_delayed(req, t);
                }
            }
            PoolAction::Restart { pool, replica } => {
                let (slots, spec) = match pool {
                    PoolRole::Prefill => (&mut *prefill, &self.prefill_spec),
                    PoolRole::Decode => (&mut *decode, &self.decode_spec),
                    PoolRole::Monolithic => unreachable!("validated in with_faults"),
                };
                assert!(
                    slots[replica].sim.is_none(),
                    "restart at {t:.6}s targets replica {replica} which is already up"
                );
                let mut sim = ReplicaSim::new(spec.clone());
                sim.track_probes = R::ENABLED;
                slots[replica].sim = Some(sim);
            }
        }
    }

    /// Finishes both pools, stitches prefill and decode legs into
    /// fleet-level timelines, and assembles the report.
    fn build_disagg_report(
        &self,
        prefill: Vec<PoolSlot>,
        decode: Vec<PoolSlot>,
        stats: TransferStats,
        prefill_asg: Vec<(u64, usize)>,
        decode_asg: Vec<(u64, usize)>,
    ) -> (DisaggReport, Vec<crate::cluster::ReplicaObs>) {
        let (prefill_report, prefill_legs, prefill_acc, mut obs) = finish_pool(
            prefill,
            PoolRole::Prefill,
            self.prefill_router,
            prefill_asg,
            0,
        );
        let (decode_report, decode_legs, decode_acc, decode_obs) = finish_pool(
            decode,
            PoolRole::Decode,
            self.decode_router,
            decode_asg,
            self.prefill_replicas,
        );
        obs.extend(decode_obs);

        // Stitch by request id: arrival + pre-decode stages + first token
        // from the prefill leg, decode join + completion from the decode
        // leg, queueing summed (the transfer itself is neither queueing nor
        // decode service — it widens completion, so it lands in TPOT and
        // end-to-end latency).
        let mut decode_by_id: std::collections::HashMap<u64, &RequestTimeline> =
            std::collections::HashMap::with_capacity(decode_legs.len());
        for leg in &decode_legs {
            let prior = decode_by_id.insert(leg.id, leg);
            assert!(
                prior.is_none(),
                "duplicate request id {} in the decode pool — disaggregated \
                 runs require unique request ids for stitching",
                leg.id
            );
        }
        let mut merged_timelines: Vec<RequestTimeline> = prefill_legs
            .iter()
            .map(|p| {
                let d = decode_by_id
                    .remove(&p.id)
                    .unwrap_or_else(|| panic!("request {} prefilled but never decoded", p.id));
                RequestTimeline {
                    id: p.id,
                    arrival_s: p.arrival_s,
                    stage_starts_s: p.stage_starts_s.clone(),
                    stage_ends_s: p.stage_ends_s.clone(),
                    class: p.class,
                    decode_join_s: d.decode_join_s,
                    first_token_s: p.first_token_s,
                    completion_s: d.completion_s,
                    queueing_s: p.queueing_s + d.queueing_s,
                    decode_tokens: d.decode_tokens,
                }
            })
            .collect();
        assert!(
            decode_by_id.is_empty(),
            "{} requests decoded without a prefill leg",
            decode_by_id.len()
        );
        merged_timelines.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s).then(a.id.cmp(&b.id)));

        let mut merged_acc = SimAccumulators::default();
        merged_acc.merge_from(&prefill_acc);
        merged_acc.merge_from(&decode_acc);

        (
            DisaggReport {
                merged: build_report(merged_timelines, &merged_acc),
                prefill: prefill_report,
                decode: decode_report,
                transfers: stats,
                transfer_model: self.transfer,
            },
            obs,
        )
    }
}

/// Advances every live slot of a pool to just before `t`.
fn advance_pool(slots: &mut [PoolSlot], t: f64, parallel: bool) {
    // `advance_all` needs a `&mut ReplicaSim` per item; crashed slots are
    // filtered out first.
    if parallel {
        let mut sims: Vec<&mut ReplicaSim> =
            slots.iter_mut().filter_map(|s| s.sim.as_mut()).collect();
        advance_all(&mut sims, |s| &mut **s, t, true);
    } else {
        for slot in slots.iter_mut() {
            if let Some(sim) = slot.sim.as_mut() {
                sim.advance_before(t);
            }
        }
    }
}

/// Collects the indices of slots whose replica is currently up.
fn live_slots(slots: &[PoolSlot], out: &mut Vec<usize>) {
    out.clear();
    out.extend(
        slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.sim.is_some())
            .map(|(i, _)| i),
    );
}

/// Finishes a pool: per-slot reports (current incarnation's work merged
/// with retired incarnations'), the pool's merged request legs, its summed
/// accumulators, and per-slot observability (probes + event-queue stats,
/// tracked at `track_base + slot` in the fleet-wide numbering).
fn finish_pool(
    slots: Vec<PoolSlot>,
    role: PoolRole,
    router: RouterPolicy,
    assignments: Vec<(u64, usize)>,
    track_base: usize,
) -> (
    PoolReport,
    Vec<RequestTimeline>,
    SimAccumulators,
    Vec<crate::cluster::ReplicaObs>,
) {
    let mut per_replica = Vec::with_capacity(slots.len());
    let mut legs: Vec<RequestTimeline> = Vec::new();
    let mut pool_acc = SimAccumulators::default();
    let mut assigned_counts = Vec::with_capacity(slots.len());
    let mut obs = Vec::with_capacity(slots.len());
    for (replica, slot) in slots.into_iter().enumerate() {
        let mut timelines = slot.retired_timelines;
        let mut acc = slot.retired_acc;
        let mut probes = slot.retired_probes;
        let mut equeue = slot.retired_equeue;
        if let Some(mut sim) = slot.sim {
            probes.extend(sim.drain_probe_log());
            equeue.merge_from(&sim.equeue_stats());
            let (live_timelines, live_acc) = sim.finish();
            timelines.extend(live_timelines);
            acc.merge_from(&live_acc);
        }
        timelines.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s).then(a.id.cmp(&b.id)));
        legs.extend(timelines.iter().cloned());
        pool_acc.merge_from(&acc);
        assigned_counts.push(slot.assigned);
        obs.push(crate::cluster::ReplicaObs {
            replica: track_base + replica,
            probes,
            equeue,
        });
        per_replica.push(ReplicaReport {
            replica,
            assigned: slot.assigned,
            report: build_report(timelines, &acc),
        });
    }
    (
        PoolReport {
            role,
            per_replica,
            imbalance: LoadImbalance::from_counts(assigned_counts),
            router,
            assignments,
        },
        legs,
        pool_acc,
        obs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{DecodeSpec, LatencyTable, ServingEngine, StageSpec};
    use rago_schema::SequenceProfile;
    use rago_workloads::{ArrivalProcess, TraceSpec};

    fn two_stage_spec() -> PipelineSpec {
        PipelineSpec::new(
            vec![
                StageSpec::new(
                    "retrieval",
                    0,
                    16,
                    LatencyTable::from_fn(16, |b| 0.02 + 1e-4 * f64::from(b)),
                ),
                StageSpec::new(
                    "prefix",
                    1,
                    8,
                    LatencyTable::from_fn(8, |b| 0.01 * f64::from(b)),
                ),
            ],
            DecodeSpec::new(
                32,
                LatencyTable::from_fn(32, |b| 2e-3 + 1e-5 * f64::from(b)),
            ),
        )
    }

    fn decode_spec() -> PipelineSpec {
        PipelineSpec::decode_only(
            DecodeSpec::new(
                32,
                LatencyTable::from_fn(32, |b| 2e-3 + 1e-5 * f64::from(b)),
            ),
            None,
        )
    }

    fn trace(n: u32, rate: f64, seed: u64) -> rago_workloads::Trace {
        TraceSpec {
            num_requests: n as usize,
            profile: SequenceProfile::paper_default().with_decode_tokens(24),
            arrival: ArrivalProcess::Poisson { rate_rps: rate },
            length_jitter: 0.2,
            seed,
        }
        .generate()
    }

    fn engine_1p1(transfer: KvTransferModel) -> DisaggEngine {
        DisaggEngine::new(
            two_stage_spec(),
            1,
            RouterPolicy::RoundRobin,
            decode_spec(),
            1,
            RouterPolicy::RoundRobin,
            transfer,
        )
    }

    /// The monolithic engine groups events within [`crate::engine::TIME_EPS`]
    /// onto one instant, so a near-coincident prefill event can nudge the
    /// decode step chain by sub-picosecond amounts that a split decode pool
    /// (which never sees prefill events) cannot reproduce. Equivalence of
    /// the zero-cost 1+1 split therefore holds to the grouping tolerance on
    /// time fields and exactly on everything discrete.
    fn assert_time_eq(label: &str, id: u64, d: f64, m: f64) {
        assert!(
            (d - m).abs() <= 1e-12,
            "request {id}: {label} diverged beyond the event-grouping \
             tolerance: disagg {d} vs monolithic {m}"
        );
    }

    #[test]
    fn one_plus_one_at_zero_cost_matches_the_monolithic_engine() {
        let trace = trace(120, 60.0, 9);
        let mono = ServingEngine::from_trace(two_stage_spec(), &trace).run();
        let disagg = engine_1p1(KvTransferModel::zero()).run_trace(&trace);

        assert_eq!(disagg.merged.timelines.len(), mono.timelines.len());
        for (d, m) in disagg.merged.timelines.iter().zip(&mono.timelines) {
            assert_eq!(d.id, m.id);
            assert_eq!(d.arrival_s, m.arrival_s);
            assert_eq!(d.decode_tokens, m.decode_tokens);
            assert_eq!(d.stage_starts_s.len(), m.stage_starts_s.len());
            for (ds, ms) in d.stage_starts_s.iter().zip(&m.stage_starts_s) {
                assert_time_eq("stage start", d.id, *ds, *ms);
            }
            for (de, me) in d.stage_ends_s.iter().zip(&m.stage_ends_s) {
                assert_time_eq("stage end", d.id, *de, *me);
            }
            assert_time_eq("first token", d.id, d.first_token_s, m.first_token_s);
            assert_time_eq("decode join", d.id, d.decode_join_s, m.decode_join_s);
            assert_time_eq("completion", d.id, d.completion_s, m.completion_s);
            assert_time_eq("queueing", d.id, d.queueing_s, m.queueing_s);
        }
        let dm = &disagg.merged.metrics;
        let mm = &mono.metrics;
        assert!((dm.ttft.mean_s - mm.ttft.mean_s).abs() <= 1e-12);
        assert!((dm.tpot.p99_s - mm.tpot.p99_s).abs() <= 1e-12);
        assert!((dm.latency.max_s - mm.latency.max_s).abs() <= 1e-12);
        // The disaggregated run re-processes one arrival event per request
        // (the transfer completion) on the decode side.
        assert_eq!(
            dm.events_processed,
            mm.events_processed + trace.requests.len() as u64
        );
        assert_eq!(disagg.transfers.transfers, trace.requests.len() as u64);
        assert_eq!(disagg.transfers.bytes_total, 0.0);
        assert_eq!(disagg.transfers.latency_total_s, 0.0);
    }

    #[test]
    fn transfer_model_delays_completion_but_not_first_token() {
        let trace = trace(60, 40.0, 3);
        let free = engine_1p1(KvTransferModel::zero()).run_trace(&trace);
        // 1 ms fixed + wire time per handoff.
        let model = KvTransferModel::new(131_072.0, 25e9, 1e-3);
        let paid = engine_1p1(model).run_trace(&trace);

        assert_eq!(paid.transfers.transfers, 60);
        let expected_bytes: f64 = trace
            .requests
            .iter()
            .map(|r| model.bytes_for(r.prefix_tokens))
            .sum();
        assert!((paid.transfers.bytes_total - expected_bytes).abs() < 1e-6);
        assert!(paid.transfers.latency_mean_s() >= 1e-3);
        assert!(paid.transfers.latency_max_s >= paid.transfers.latency_mean_s());

        // TTFT is emitted on the prefill side: identical request-by-request.
        for (p, f) in paid.merged.timelines.iter().zip(&free.merged.timelines) {
            assert_eq!(p.first_token_s, f.first_token_s);
            assert!(p.completion_s >= f.completion_s);
        }
        // The transfer cost lands in end-to-end latency.
        assert!(paid.merged.metrics.latency.mean_s > free.merged.metrics.latency.mean_s);
    }

    #[test]
    fn decode_pool_router_spreads_transfers() {
        let trace = trace(80, 80.0, 5);
        let report = DisaggEngine::new(
            two_stage_spec(),
            2,
            RouterPolicy::LeastOutstanding,
            decode_spec(),
            3,
            RouterPolicy::RoundRobin,
            KvTransferModel::new(131_072.0, 100e9, 5e-6),
        )
        .run_trace(&trace);
        assert_eq!(report.merged.metrics.completed, 80);
        assert_eq!(report.prefill.per_replica.len(), 2);
        assert_eq!(report.decode.per_replica.len(), 3);
        let decode_assigned: Vec<usize> = report
            .decode
            .per_replica
            .iter()
            .map(|r| r.assigned)
            .collect();
        // Round-robin over three decode replicas: 27/27/26 in some order.
        assert_eq!(decode_assigned.iter().sum::<usize>(), 80);
        assert!(decode_assigned.iter().all(|&a| a >= 26));
        // Every request appears exactly once per pool.
        let prefill_served: usize = report
            .prefill
            .per_replica
            .iter()
            .map(|r| r.report.timelines.len())
            .sum();
        assert_eq!(prefill_served, 80);
        // Per-pool assignment ledgers record every dispatch.
        assert_eq!(report.prefill.assignments.len(), 80);
        assert_eq!(report.decode.assignments.len(), 80);
        assert!(report.prefill.assignments.iter().all(|&(_, s)| s < 2));
        assert!(report.decode.assignments.iter().all(|&(_, s)| s < 3));

        // The fleet-report view renumbers replicas prefill-first and keeps
        // the merged metrics shared.
        let fleet = report.to_fleet_report();
        assert_eq!(fleet.merged, report.merged);
        assert_eq!(fleet.per_replica.len(), 5);
        assert_eq!(
            fleet
                .per_replica
                .iter()
                .map(|r| r.replica)
                .collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert_eq!(fleet.assignments.len(), 160);
        assert!(fleet.assignments[..80].iter().all(|&(_, s)| s < 2));
        assert!(fleet.assignments[80..]
            .iter()
            .all(|&(_, s)| (2..5).contains(&s)));
        assert_eq!(fleet.imbalance.assigned_per_replica.len(), 5);
        assert_eq!(fleet.router, RouterPolicy::LeastOutstanding);
    }

    #[test]
    fn prefill_crash_requeues_unfinished_work_to_survivors() {
        // 400 rps against ~200 rps of two-replica prefill capacity: the
        // prefill pool is backlogged for the whole trace, so the crash is
        // guaranteed to find in-flight work on the victim.
        let trace = trace(100, 400.0, 7);
        let report = DisaggEngine::new(
            two_stage_spec(),
            2,
            RouterPolicy::RoundRobin,
            decode_spec(),
            2,
            RouterPolicy::RoundRobin,
            KvTransferModel::new(131_072.0, 25e9, 20e-6),
        )
        .with_faults(vec![PoolCrash {
            pool: PoolRole::Prefill,
            replica: 0,
            at_s: 0.2,
            restart_delay_s: None,
        }])
        .run_trace(&trace);
        // Nothing is lost: every request still prefills, transfers, decodes.
        assert_eq!(report.merged.metrics.completed, 100);
        assert_eq!(report.transfers.transfers, 100);
        assert!(report.transfers.requeued_prefill > 0);
        assert_eq!(report.transfers.requeued_decode, 0);
        // The dead replica serves nothing after the crash; the survivor
        // carries the re-queued work on top of its own.
        let t0_max = report.prefill.per_replica[0]
            .report
            .timelines
            .iter()
            .map(|t| t.completion_s)
            .fold(0.0f64, f64::max);
        assert!(t0_max <= 0.2 + 1e-9);
    }

    #[test]
    fn decode_crash_with_restart_conserves_requests() {
        let trace = trace(100, 120.0, 13);
        // A deliberately slow decode step keeps each request resident for
        // ~0.25 s, so the 0.5 s crash always finds work on the victim.
        let slow_decode = PipelineSpec::decode_only(
            DecodeSpec::new(
                32,
                LatencyTable::from_fn(32, |b| 10e-3 + 1e-5 * f64::from(b)),
            ),
            None,
        );
        let report = DisaggEngine::new(
            two_stage_spec(),
            1,
            RouterPolicy::RoundRobin,
            slow_decode,
            2,
            RouterPolicy::JoinShortestQueue,
            KvTransferModel::new(131_072.0, 25e9, 20e-6),
        )
        .with_faults(vec![PoolCrash {
            pool: PoolRole::Decode,
            replica: 1,
            at_s: 0.5,
            restart_delay_s: Some(0.4),
        }])
        .run_trace(&trace);
        assert_eq!(report.merged.metrics.completed, 100);
        assert_eq!(report.transfers.transfers, 100);
        assert!(report.transfers.requeued_decode > 0);
        assert_eq!(report.transfers.requeued_prefill, 0);
        // Conservation by id across the merged report.
        let mut ids: Vec<u64> = report.merged.timelines.iter().map(|t| t.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 100);
    }

    #[test]
    fn from_fleet_rejects_flat_fleets() {
        let flat = FleetConfig::new(4, RouterPolicy::RoundRobin);
        assert!(DisaggEngine::from_fleet(
            two_stage_spec(),
            decode_spec(),
            &flat,
            KvTransferModel::zero()
        )
        .is_none());
        let split = FleetConfig::split(1, 3, RouterPolicy::RoundRobin);
        assert!(DisaggEngine::from_fleet(
            two_stage_spec(),
            decode_spec(),
            &split,
            KvTransferModel::zero()
        )
        .is_some());
    }

    #[test]
    fn parallel_advance_is_bit_identical() {
        let trace = trace(90, 70.0, 21);
        let model = KvTransferModel::new(131_072.0, 25e9, 20e-6);
        let serial = DisaggEngine::new(
            two_stage_spec(),
            3,
            RouterPolicy::LeastOutstanding,
            decode_spec(),
            2,
            RouterPolicy::RoundRobin,
            model,
        )
        .run_trace(&trace);
        let parallel = DisaggEngine::new(
            two_stage_spec(),
            3,
            RouterPolicy::LeastOutstanding,
            decode_spec(),
            2,
            RouterPolicy::RoundRobin,
            model,
        )
        .with_parallel_advance(true)
        .run_trace(&trace);
        assert_eq!(serial.merged.timelines, parallel.merged.timelines);
        assert_eq!(serial.transfers, parallel.transfers);
    }
}
