//! Online metrics sinks: exact (timeline-retaining) and streaming
//! (histogram) consumers of completed-request outcomes.
//!
//! The engine's default report retains every [`RequestTimeline`] — perfect
//! fidelity, `O(requests)` memory. A million-request capacity sweep does
//! not need per-request timelines; it needs percentiles and SLO counts. A
//! [`MetricsSink`] observes each completed request exactly once, and two
//! sinks implement the trade-off:
//!
//! * [`ExactSink`] reconstructs the timelines and reproduces the default
//!   report **bit for bit** — it is the identity path, used to pin the
//!   sink plumbing against the golden outputs.
//! * [`HistogramSink`] folds each outcome into fixed-resolution linear
//!   histograms ([`rago_schema::HistogramSpec`]) plus scalar accumulators,
//!   holding `O(buckets)` state regardless of trace length. Percentiles
//!   reported from it are within one bucket width of the exact
//!   nearest-rank values (for samples under the histogram cap), means and
//!   maxima are tracked exactly, and SLO attainment/goodput are counted
//!   online against the SLOs named up front in the [`StreamingConfig`].
//!
//! The choice is carried by [`MetricsMode`] through every run entry point
//! (`ServingEngine::run_with_mode`, the cluster and autoscaler twins, and
//! the evaluator `_with` variants in `rago-core`).

use crate::engine::{RequestTimeline, ServingMetrics, ServingReport};
use rago_schema::{HistogramSpec, SloTarget};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which metrics pipeline a run feeds.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum MetricsMode {
    /// Retain every request timeline and compute exact metrics — the
    /// default, bit-identical to the plain `run()` entry points.
    #[default]
    Exact,
    /// Stream outcomes into fixed-resolution histograms; the report holds
    /// `O(buckets)` state, no timelines, and approximate percentiles.
    Streaming(StreamingConfig),
}

/// Configuration of the streaming (histogram) metrics pipeline.
///
/// Streaming reports cannot answer "what is the attainment under SLO X?"
/// after the fact — the timelines are gone. Every SLO that will be queried
/// must be named here so the sink counts it online; the report's SLO
/// accessors then verify the queried target matches the counted one.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StreamingConfig {
    /// Histogram resolution and size cap.
    pub spec: HistogramSpec,
    /// Run-level SLO to count attainment against (also the per-class
    /// fallback when a class has no override).
    pub slo: Option<SloTarget>,
    /// Per-class SLO overrides, `(class, slo)` — multi-tenant runs score
    /// each tenant against its own target.
    pub class_slos: Vec<(u32, SloTarget)>,
}

impl StreamingConfig {
    /// Streaming with the given histogram spec and no SLO counting.
    pub fn new(spec: HistogramSpec) -> Self {
        Self {
            spec,
            slo: None,
            class_slos: Vec::new(),
        }
    }

    /// Adds the run-level SLO to count attainment against.
    #[must_use]
    pub fn with_slo(mut self, slo: SloTarget) -> Self {
        self.slo = Some(slo);
        self
    }

    /// Adds a per-class SLO override.
    #[must_use]
    pub fn with_class_slo(mut self, class: u32, slo: SloTarget) -> Self {
        self.class_slos.push((class, slo));
        self
    }

    /// The SLO class `class` is scored against: its override, else the
    /// run-level SLO.
    fn slo_for_class(&self, class: u32) -> Option<SloTarget> {
        self.class_slos
            .iter()
            .find(|(c, _)| *c == class)
            .map(|(_, slo)| *slo)
            .or(self.slo)
    }
}

/// One completed request as seen by a [`MetricsSink`]: the scalar outcome
/// plus borrowed stage timing slices (so the exact sink can reconstruct the
/// full timeline while the histogram sink reads only scalars, with no
/// allocation either way).
#[derive(Debug, Clone, Copy)]
pub struct RequestOutcome<'a> {
    /// Trace-level request id.
    pub id: u64,
    /// Workload-class tag (0 for untagged traffic).
    pub class: u32,
    /// Arrival time, in seconds.
    pub arrival_s: f64,
    /// Start of each executed pre-decode stage, in pipeline order.
    pub stage_starts_s: &'a [f64],
    /// Completion of each executed pre-decode stage, in pipeline order.
    pub stage_ends_s: &'a [f64],
    /// Time the request joined the decode batch.
    pub decode_join_s: f64,
    /// Time of the first output token.
    pub first_token_s: f64,
    /// Time of the final token.
    pub completion_s: f64,
    /// Total time spent waiting in queues.
    pub queueing_s: f64,
    /// Output tokens generated.
    pub decode_tokens: u32,
}

impl RequestOutcome<'_> {
    /// Time-to-first-token.
    pub fn ttft_s(&self) -> f64 {
        self.first_token_s - self.arrival_s
    }

    /// Achieved time-per-output-token.
    pub fn tpot_s(&self) -> f64 {
        (self.completion_s - self.decode_join_s) / f64::from(self.decode_tokens.max(1))
    }

    /// End-to-end latency.
    pub fn latency_s(&self) -> f64 {
        self.completion_s - self.arrival_s
    }

    /// Time in service (everything not spent queueing).
    pub fn service_s(&self) -> f64 {
        (self.latency_s() - self.queueing_s).max(0.0)
    }
}

/// An online consumer of completed-request outcomes. The engine calls
/// [`record`](Self::record) exactly once per request, in injection (=
/// arrival) order, after the simulation has drained.
pub trait MetricsSink {
    /// Observes one completed request.
    fn record(&mut self, outcome: &RequestOutcome<'_>);
}

/// The identity sink: rebuilds every [`RequestTimeline`] and reports
/// exactly what the default engine path reports, bit for bit.
#[derive(Debug, Clone, Default)]
pub struct ExactSink {
    pub(crate) timelines: Vec<RequestTimeline>,
    pub(crate) acc: crate::engine::SimAccumulators,
}

impl ExactSink {
    /// An empty exact sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MetricsSink for ExactSink {
    fn record(&mut self, outcome: &RequestOutcome<'_>) {
        self.timelines.push(RequestTimeline {
            id: outcome.id,
            arrival_s: outcome.arrival_s,
            stage_starts_s: outcome.stage_starts_s.to_vec(),
            stage_ends_s: outcome.stage_ends_s.to_vec(),
            class: outcome.class,
            decode_join_s: outcome.decode_join_s,
            first_token_s: outcome.first_token_s,
            completion_s: outcome.completion_s,
            queueing_s: outcome.queueing_s,
            decode_tokens: outcome.decode_tokens,
        });
    }
}

/// A fixed-resolution linear histogram over non-negative latency samples.
///
/// Bucket `k` covers `[k·w, (k+1)·w)`; storage grows on demand up to the
/// spec's cap, beyond which samples clamp into the final bucket. The mean
/// and maximum are tracked exactly; percentiles are answered by a
/// cumulative walk and report the bucket's upper edge clamped to the exact
/// maximum — within one bucket width of the exact nearest-rank value for
/// unclamped samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    width_s: f64,
    max_buckets: usize,
    counts: Vec<u64>,
    count: u64,
    sum_s: f64,
    max_s: f64,
}

impl LatencyHistogram {
    /// An empty histogram with the given resolution.
    pub fn new(spec: &HistogramSpec) -> Self {
        Self {
            width_s: spec.bucket_width_s,
            max_buckets: spec.max_buckets.max(1),
            counts: Vec::new(),
            count: 0,
            sum_s: 0.0,
            max_s: 0.0,
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Live bucket storage (buckets allocated so far, not the cap).
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// Folds one sample in. Negative samples (impossible for simulated
    /// latencies, but the sink does not panic on them) count into the
    /// first bucket.
    pub fn record(&mut self, v: f64) {
        let idx = if v.is_finite() && v > 0.0 {
            ((v / self.width_s) as usize).min(self.max_buckets - 1)
        } else {
            0
        };
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.count += 1;
        self.sum_s += v;
        self.max_s = self.max_s.max(v);
    }

    /// Nearest-rank percentile estimate: the upper edge of the bucket
    /// holding the ranked sample, clamped to the exact maximum. Zero for an
    /// empty histogram.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        // Same rank rule as the exact path (`engine::percentile`), so the
        // two estimators rank the identical sample.
        let rank = (((p / 100.0) * self.count as f64 - 1e-9).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                // The final bucket is open-ended (samples past the cap
                // clamp into it), so its only sound upper bound is the
                // tracked exact maximum.
                if idx + 1 == self.max_buckets {
                    return self.max_s;
                }
                return ((idx as f64 + 1.0) * self.width_s).min(self.max_s);
            }
        }
        self.max_s
    }

    /// The summary statistics of the folded distribution (mean and max are
    /// exact; percentiles within one bucket width for unclamped samples).
    pub fn stats(&self) -> crate::engine::LatencyStats {
        if self.count == 0 {
            return crate::engine::LatencyStats::from_samples(&[]);
        }
        crate::engine::LatencyStats {
            mean_s: self.sum_s / self.count as f64,
            p50_s: self.percentile(50.0),
            p95_s: self.percentile(95.0),
            p99_s: self.percentile(99.0),
            max_s: self.max_s,
        }
    }

    /// Element-wise merge of another histogram with the same resolution.
    ///
    /// # Panics
    ///
    /// Panics if the resolutions differ.
    pub fn merge_from(&mut self, other: &Self) {
        assert!(
            self.width_s == other.width_s && self.max_buckets == other.max_buckets,
            "histograms with different resolutions cannot be merged"
        );
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_s += other.sum_s;
        self.max_s = self.max_s.max(other.max_s);
    }

    /// Bytes of retained state (the bucket array).
    pub fn retained_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.counts.capacity() * std::mem::size_of::<u64>()
    }
}

/// Scalar accumulators plus histograms for one scope (the whole run, or
/// one workload class).
#[derive(Debug, Clone)]
struct StreamAgg {
    count: u64,
    met: u64,
    queueing_sum_s: f64,
    service_sum_s: f64,
    first_arrival_s: f64,
    last_arrival_s: f64,
    makespan_s: f64,
    ttft: LatencyHistogram,
    tpot: LatencyHistogram,
    latency: LatencyHistogram,
}

impl StreamAgg {
    fn new(spec: &HistogramSpec) -> Self {
        Self {
            count: 0,
            met: 0,
            queueing_sum_s: 0.0,
            service_sum_s: 0.0,
            first_arrival_s: f64::INFINITY,
            last_arrival_s: 0.0,
            makespan_s: 0.0,
            ttft: LatencyHistogram::new(spec),
            tpot: LatencyHistogram::new(spec),
            latency: LatencyHistogram::new(spec),
        }
    }

    fn observe(&mut self, outcome: &RequestOutcome<'_>, slo: Option<&SloTarget>) {
        self.count += 1;
        self.queueing_sum_s += outcome.queueing_s;
        self.service_sum_s += outcome.service_s();
        self.first_arrival_s = self.first_arrival_s.min(outcome.arrival_s);
        self.last_arrival_s = self.last_arrival_s.max(outcome.arrival_s);
        self.makespan_s = self.makespan_s.max(outcome.completion_s);
        let ttft = outcome.ttft_s();
        let tpot = outcome.tpot_s();
        self.ttft.record(ttft);
        self.tpot.record(tpot);
        self.latency.record(outcome.latency_s());
        if slo.is_some_and(|s| s.meets(ttft, tpot)) {
            self.met += 1;
        }
    }

    fn merge_from(&mut self, other: &Self) {
        self.count += other.count;
        self.met += other.met;
        self.queueing_sum_s += other.queueing_sum_s;
        self.service_sum_s += other.service_sum_s;
        self.first_arrival_s = self.first_arrival_s.min(other.first_arrival_s);
        self.last_arrival_s = self.last_arrival_s.max(other.last_arrival_s);
        self.makespan_s = self.makespan_s.max(other.makespan_s);
        self.ttft.merge_from(&other.ttft);
        self.tpot.merge_from(&other.tpot);
        self.latency.merge_from(&other.latency);
    }

    /// Builds the scope's [`ServingMetrics`]; accumulator-derived fields
    /// are filled in by the caller (they describe the shared pipeline).
    fn metrics(&self) -> ServingMetrics {
        let n = self.count as usize;
        let first_arrival = if n == 0 { 0.0 } else { self.first_arrival_s };
        let serving_duration = (self.makespan_s - first_arrival).max(0.0);
        ServingMetrics {
            requests: n,
            completed: n,
            first_arrival_s: first_arrival,
            last_arrival_s: self.last_arrival_s,
            makespan_s: self.makespan_s,
            serving_duration_s: serving_duration,
            drain_tail_s: (self.makespan_s - self.last_arrival_s).max(0.0),
            throughput_rps: if serving_duration > 0.0 {
                n as f64 / serving_duration
            } else {
                0.0
            },
            ttft: self.ttft.stats(),
            tpot: self.tpot.stats(),
            latency: self.latency.stats(),
            queueing_mean_s: if n == 0 {
                0.0
            } else {
                self.queueing_sum_s / n as f64
            },
            service_mean_s: if n == 0 {
                0.0
            } else {
                self.service_sum_s / n as f64
            },
            mean_decode_fill: 0.0,
            retrieval_batches: 0,
            mean_retrieval_batch_fill: 0.0,
            events_processed: 0,
            shed: 0,
        }
    }
}

/// The streaming sink: folds outcomes into run-level and per-class
/// `StreamAgg` accumulators and emits an `O(buckets)` [`ServingReport`]
/// with no timelines.
#[derive(Debug, Clone)]
pub struct HistogramSink {
    config: StreamingConfig,
    run: StreamAgg,
    per_class: BTreeMap<u32, StreamAgg>,
    pub(crate) acc: crate::engine::SimAccumulators,
}

impl HistogramSink {
    /// An empty sink counting against `config`'s SLOs.
    pub fn new(config: &StreamingConfig) -> Self {
        config
            .spec
            .validate()
            .expect("streaming metrics need a valid histogram spec");
        Self {
            run: StreamAgg::new(&config.spec),
            per_class: BTreeMap::new(),
            config: config.clone(),
            acc: crate::engine::SimAccumulators::default(),
        }
    }

    /// Outcomes recorded so far.
    pub fn count(&self) -> u64 {
        self.run.count
    }

    /// Merges another sink of the same configuration (used to fold
    /// per-replica sinks into a fleet sink, in replica-index order so the
    /// result is deterministic).
    ///
    /// # Panics
    ///
    /// Panics if the configurations differ.
    pub fn merge_from(&mut self, other: &Self) {
        assert!(
            self.config == other.config,
            "only identically-configured streaming sinks can merge"
        );
        self.run.merge_from(&other.run);
        for (class, agg) in &other.per_class {
            self.per_class
                .entry(*class)
                .or_insert_with(|| StreamAgg::new(&self.config.spec))
                .merge_from(agg);
        }
        self.acc.merge_from(&other.acc);
    }

    /// Builds the streaming [`ServingReport`]: empty timelines, metrics
    /// from the histograms, per-class rows, and [`StreamedScores`] carrying
    /// the online SLO counts. A single-class run repeats the run metrics in
    /// its one class row, mirroring the exact path's convention.
    pub fn into_report(self) -> ServingReport {
        let acc = &self.acc;
        let fill = |mut m: ServingMetrics| {
            m.mean_decode_fill = if acc.stepping_time > 0.0 {
                acc.fill_weighted_time / acc.stepping_time
            } else {
                0.0
            };
            m.retrieval_batches = acc.retrieval_batches;
            m.mean_retrieval_batch_fill = if acc.retrieval_batches == 0 {
                0.0
            } else {
                acc.retrieval_fill as f64 / f64::from(acc.retrieval_batches)
            };
            m.events_processed = acc.events;
            m
        };
        let metrics = fill(self.run.metrics());
        let per_class: Vec<crate::engine::ClassMetrics> = if self.per_class.len() <= 1 {
            self.per_class
                .keys()
                .map(|&class| crate::engine::ClassMetrics {
                    class,
                    metrics: metrics.clone(),
                })
                .collect()
        } else {
            self.per_class
                .iter()
                .map(|(&class, agg)| crate::engine::ClassMetrics {
                    class,
                    metrics: fill(agg.metrics()),
                })
                .collect()
        };
        let class_scores = self
            .per_class
            .iter()
            .filter_map(|(&class, agg)| {
                self.config.slo_for_class(class).map(|slo| ClassSloScore {
                    class,
                    slo,
                    met: agg.met,
                })
            })
            .collect();
        let streamed = StreamedScores {
            spec: self.config.spec,
            slo: self.config.slo,
            met: self.run.met,
            class_scores,
        };
        ServingReport {
            timelines: Vec::new(),
            metrics,
            per_class,
            cache: self.acc.cache.to_usage(),
            streamed: Some(streamed),
        }
    }
}

impl MetricsSink for HistogramSink {
    fn record(&mut self, outcome: &RequestOutcome<'_>) {
        let run_slo = self.config.slo;
        self.run.observe(outcome, run_slo.as_ref());
        let class_slo = self.config.slo_for_class(outcome.class);
        let spec = self.config.spec;
        self.per_class
            .entry(outcome.class)
            .or_insert_with(|| StreamAgg::new(&spec))
            .observe(outcome, class_slo.as_ref());
    }
}

/// Online SLO scores carried by a streaming report in place of its
/// timelines. The report's SLO accessors answer from these counts — and
/// only for the SLOs that were configured up front.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamedScores {
    /// The histogram resolution the report was computed at.
    pub spec: HistogramSpec,
    /// The run-level SLO counted online, if any.
    pub slo: Option<SloTarget>,
    /// Requests meeting the run-level SLO.
    pub met: u64,
    /// Per-class counts, ascending by class id, each against the class's
    /// effective SLO (its override, else the run-level SLO). Classes
    /// without any configured SLO have no row.
    pub class_scores: Vec<ClassSloScore>,
}

/// One class's online SLO count in a streaming report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassSloScore {
    /// The workload-class tag.
    pub class: u32,
    /// The SLO this class was counted against.
    pub slo: SloTarget,
    /// The class's requests meeting that SLO.
    pub met: u64,
}

impl StreamedScores {
    /// Requests meeting the run-level SLO.
    ///
    /// # Panics
    ///
    /// Panics if `slo` is not the SLO the run counted — a streaming report
    /// cannot re-score a different target after the fact.
    pub fn run_met(&self, slo: &SloTarget) -> u64 {
        assert!(
            self.slo.as_ref() == Some(slo),
            "streaming report counted SLO {:?}, not the queried {slo:?}; \
             configure the queried SLO in StreamingConfig before the run",
            self.slo,
        );
        self.met
    }

    /// Requests of `class` meeting that class's counted SLO.
    ///
    /// # Panics
    ///
    /// Panics if the class has a row and its counted SLO differs from the
    /// queried one. Returns zero for classes without a row (no requests).
    pub fn class_met(&self, class: u32, slo: &SloTarget) -> u64 {
        match self.class_scores.iter().find(|c| c.class == class) {
            Some(row) => {
                assert!(
                    row.slo == *slo,
                    "streaming report counted class {class} against SLO {:?}, \
                     not the queried {slo:?}",
                    row.slo,
                );
                row.met
            }
            None => 0,
        }
    }

    /// Bytes of retained state.
    pub fn retained_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.class_scores.capacity() * std::mem::size_of::<ClassSloScore>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(width: f64) -> HistogramSpec {
        HistogramSpec::with_width(width)
    }

    #[test]
    fn empty_histogram_reports_zero_stats() {
        let h = LatencyHistogram::new(&spec(0.01));
        let s = h.stats();
        assert_eq!(s.mean_s, 0.0);
        assert_eq!(s.p50_s, 0.0);
        assert_eq!(s.p99_s, 0.0);
        assert_eq!(s.max_s, 0.0);
        assert_eq!(h.percentile(50.0), 0.0);
    }

    #[test]
    fn single_bucket_histogram_clamps_everything() {
        let one = HistogramSpec {
            bucket_width_s: 0.5,
            max_buckets: 1,
        };
        let mut h = LatencyHistogram::new(&one);
        for v in [0.1, 3.0, 42.0] {
            h.record(v);
        }
        assert_eq!(h.buckets(), 1);
        assert_eq!(h.count(), 3);
        // Percentiles clamp to the exact maximum, never past it.
        assert_eq!(h.percentile(99.0), 42.0);
        assert_eq!(h.stats().max_s, 42.0);
    }

    #[test]
    fn percentiles_are_within_one_bucket_width() {
        let w = 0.01;
        let mut h = LatencyHistogram::new(&spec(w));
        let samples: Vec<f64> = (1..=1000).map(|i| i as f64 * 1e-3).collect();
        for &v in &samples {
            h.record(v);
        }
        for p in [50.0, 95.0, 99.0] {
            let rank = ((p / 100.0) * samples.len() as f64 - 1e-9).ceil() as usize;
            let exact = samples[rank - 1];
            let est = h.percentile(p);
            // A sample exactly on a bucket boundary reports the next edge:
            // the error bound is one full width, inclusive (plus FP noise).
            assert!(
                (est - exact).abs() <= w * (1.0 + 1e-9),
                "p{p}: est {est} vs exact {exact} beyond width {w}"
            );
            assert!(est >= exact, "upper-edge estimate must not undershoot");
        }
    }

    #[test]
    fn merge_matches_single_pass() {
        let s = spec(0.02);
        let mut all = LatencyHistogram::new(&s);
        let mut a = LatencyHistogram::new(&s);
        let mut b = LatencyHistogram::new(&s);
        for i in 0..200 {
            let v = (i as f64) * 7e-3;
            all.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge_from(&b);
        // Counts, max, and every percentile merge exactly; the running sum
        // is FP addition in a different order, so the mean is approximate.
        assert_eq!(a.counts, all.counts);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.stats().max_s, all.stats().max_s);
        for p in [50.0, 95.0, 99.0] {
            assert_eq!(a.percentile(p), all.percentile(p));
        }
        assert!((a.stats().mean_s - all.stats().mean_s).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different resolutions")]
    fn merging_mismatched_resolutions_panics() {
        let mut a = LatencyHistogram::new(&spec(0.01));
        let b = LatencyHistogram::new(&spec(0.02));
        a.merge_from(&b);
    }

    #[test]
    fn streamed_scores_reject_unconfigured_slo() {
        let cfg =
            StreamingConfig::new(HistogramSpec::default()).with_slo(SloTarget::new(2.0, 0.05));
        let sink = HistogramSink::new(&cfg);
        let report = sink.into_report();
        // Queried with the configured SLO: fine (empty run ⇒ attainment 1).
        assert_eq!(report.attainment(&SloTarget::new(2.0, 0.05)), 1.0);
    }

    #[test]
    #[should_panic(expected = "streaming report counted SLO")]
    fn querying_a_different_slo_panics() {
        let cfg =
            StreamingConfig::new(HistogramSpec::default()).with_slo(SloTarget::new(2.0, 0.05));
        let mut sink = HistogramSink::new(&cfg);
        sink.record(&RequestOutcome {
            id: 0,
            class: 0,
            arrival_s: 0.0,
            stage_starts_s: &[],
            stage_ends_s: &[],
            decode_join_s: 0.0,
            first_token_s: 0.1,
            completion_s: 0.2,
            queueing_s: 0.0,
            decode_tokens: 4,
        });
        let report = sink.into_report();
        report.attainment(&SloTarget::new(9.0, 9.0));
    }
}
