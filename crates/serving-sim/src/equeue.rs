//! Indexed two-lane event queue for the discrete-event hot path.
//!
//! The engine's original event queue was one global `BinaryHeap` holding
//! *every* pending event — including all not-yet-arrived requests. At a
//! million requests that is a million-entry heap: every push and pop pays
//! `O(log n)` three-key comparisons, and the arrival backlog dominates the
//! heap even though it is already sorted. This module replaces it with a
//! structure indexed on the same `(time, arrival-class, seq)` key:
//!
//! * **Arrival lane** (class 0): arrivals are injected in non-decreasing
//!   time order (the engine sorts its trace up front), so they live in a
//!   plain FIFO — `O(1)` push and pop, no comparisons against the backlog.
//! * **Calendar lane** (class 1): scheduled completions (stage, step and
//!   retrieval events) go into a bucketed calendar queue ([`Calendar`]).
//!   Only *in-flight* work lives here — at most one micro-batch per
//!   resource, one decode step, and the outstanding retrieval batches — so
//!   its live occupancy is tiny and pops are `O(1)` amortized.
//!
//! [`EventQueue::pop`] merges the lanes with exactly the historical
//! ordering: earlier time first (`f64::total_cmp`), arrivals before
//! same-instant scheduled events (class 0 < class 1), and FIFO/sequence
//! order within a lane. Because each lane is itself emitted in sorted order,
//! the merge reproduces the global heap order bit for bit.
//!
//! A third **fault lane** carries externally injected control events
//! (straggler slowdown changes and the like). Faults order *before*
//! same-instant arrivals — effectively class −1 — so a degradation that
//! lands at the same instant as a request arrival is in force before that
//! request is processed. The tie-break is pinned by unit test below and is
//! part of the chaos-scenario golden contract.

use std::cmp::Ordering;
use std::collections::VecDeque;

/// Initial number of calendar buckets (always a power of two).
const INITIAL_BUCKETS: usize = 16;

/// Rebuild the calendar when occupancy exceeds `buckets × GROW_LOAD`.
const GROW_LOAD: usize = 2;

/// Minimum occupancy before a width re-estimation rebuild may trigger —
/// below this the scans are trivially short and the span estimate noisy.
const REESTIMATE_MIN_LEN: usize = 8;

/// One scheduled entry in the calendar lane.
#[derive(Debug, Clone, Copy)]
struct Scheduled<E> {
    t: f64,
    seq: u64,
    ev: E,
}

/// A classic bucketed calendar queue over `(time, seq)` keys.
///
/// Entries hash into `buckets` ring slots of `width` seconds each; a pop
/// scans forward from the current bucket, considering only entries that
/// belong to the current "year" (the ring's sweep through time), and falls
/// back to a full scan after one empty revolution — the standard sparse-set
/// escape. The bucket width is re-estimated from the live key span whenever
/// the queue is rebuilt, keeping the expected entries-per-bucket constant.
///
/// Keys must be popped in non-decreasing time order, which the engine
/// guarantees: completions are always scheduled at or after the instant
/// being processed. Ties on `t` break by `seq` (insertion order), matching
/// the heap the calendar replaces.
#[derive(Debug, Clone)]
struct Calendar<E> {
    buckets: Vec<Vec<Scheduled<E>>>,
    /// Bucket time width, strictly positive and finite.
    width: f64,
    /// Bucket the next search starts from.
    cur: usize,
    /// Upper time bound of `cur`'s current year.
    cur_top: f64,
    len: usize,
    /// Cached location of the minimum entry: `(t, seq, bucket, position)`.
    /// Kept fresh by pushes (a smaller key simply replaces the cache, and
    /// appends never move existing entries); invalidated by pops and
    /// rebuilds.
    cached_min: Option<(f64, u64, usize, usize)>,
    /// Lifetime count of [`Calendar::rebuild`] calls (growth or width
    /// re-estimation). Observability only — never read by the simulation.
    rebuilds: u64,
    /// Lifetime count of full-scan fallbacks in [`Calendar::ensure_min`]
    /// (one empty revolution found nothing in-year). Observability only.
    fallback_scans: u64,
}

impl<E: Copy> Calendar<E> {
    fn new() -> Self {
        Self {
            buckets: vec![Vec::new(); INITIAL_BUCKETS],
            width: 1.0,
            cur: 0,
            cur_top: 1.0,
            len: 0,
            cached_min: None,
            rebuilds: 0,
            fallback_scans: 0,
        }
    }

    fn bucket_of(&self, t: f64) -> usize {
        // `t / width` can exceed u64 for pathological inputs; saturate
        // before the modulo so the index stays in range instead of
        // panicking or going through UB-free-but-wrong float casts.
        let idx = (t / self.width).min(u64::MAX as f64).max(0.0) as u64;
        (idx % self.buckets.len() as u64) as usize
    }

    fn push(&mut self, t: f64, seq: u64, ev: E) {
        if self.len >= self.buckets.len() * GROW_LOAD {
            self.rebuild(self.buckets.len() * 2);
        } else if self.len >= REESTIMATE_MIN_LEN {
            // Width sanity check against the live span (approximated as the
            // distance from the cached minimum to this push — pushes are
            // near the high end of the live window, since completions are
            // scheduled ahead of the instant being processed). A width far
            // off the span degenerates the calendar: too wide and every
            // entry lands in one bucket (pops scan the whole population),
            // too narrow and the population spans many "years" (pops sweep
            // mostly-empty buckets). Either way, redistribute at the same
            // size with a width re-estimated from the true span. The factor
            // of four is hysteresis — a rebuild sets `width = span / len`,
            // so the span must shift by 4x again before the next rebuild.
            if let Some((min_t, ..)) = self.cached_min {
                let span = t - min_t;
                let coverage = self.width * self.buckets.len() as f64;
                if span > 0.0 && (span * 4.0 < self.width || span > coverage * 4.0) {
                    self.rebuild(self.buckets.len());
                }
            }
        }
        let was_empty = self.len == 0;
        let b = self.bucket_of(t);
        self.buckets[b].push(Scheduled { t, seq, ev });
        self.len += 1;
        let pos = self.buckets[b].len() - 1;
        match self.cached_min {
            // A fresh smaller key replaces the cached minimum directly.
            Some((ct, cseq, ..)) if key_cmp(t, seq, ct, cseq) == Ordering::Less => {
                self.cached_min = Some((t, seq, b, pos));
            }
            Some(_) => {}
            // A stale (`None`) cache with live entries must stay stale: the
            // true minimum may be an older entry, so only a push into an
            // empty calendar may seed the cache.
            None if was_empty => self.cached_min = Some((t, seq, b, pos)),
            None => {}
        }
    }

    /// Redistributes every entry over `new_buckets` slots with a width
    /// re-estimated from the live key span.
    fn rebuild(&mut self, new_buckets: usize) {
        self.rebuilds += 1;
        let entries: Vec<Scheduled<E>> = self.buckets.iter_mut().flat_map(std::mem::take).collect();
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for e in &entries {
            lo = lo.min(e.t);
            hi = hi.max(e.t);
        }
        let span = (hi - lo).max(0.0);
        let width = if entries.is_empty() || span <= 0.0 {
            1.0
        } else {
            // Aim for about one live entry per bucket over the span.
            (span / entries.len() as f64).max(f64::MIN_POSITIVE)
        };
        self.buckets = vec![Vec::new(); new_buckets];
        self.width = width;
        self.len = 0;
        self.cached_min = None;
        // Restart the year sweep at the smallest live key (or zero).
        let floor = if lo.is_finite() { lo } else { 0.0 };
        self.cur = {
            let idx = (floor / width).min(u64::MAX as f64).max(0.0) as u64;
            (idx % new_buckets as u64) as usize
        };
        self.cur_top = (floor / width).floor() * width + width;
        // Insert directly rather than through `push` — the re-estimation
        // trigger must not observe the half-rebuilt calendar.
        for e in entries {
            let b = self.bucket_of(e.t);
            self.buckets[b].push(e);
            self.len += 1;
            let pos = self.buckets[b].len() - 1;
            match self.cached_min {
                Some((ct, cseq, ..)) if key_cmp(e.t, e.seq, ct, cseq) == Ordering::Less => {
                    self.cached_min = Some((e.t, e.seq, b, pos));
                }
                None => self.cached_min = Some((e.t, e.seq, b, pos)),
                Some(_) => {}
            }
        }
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Time of the minimum entry, if any.
    fn peek_time(&mut self) -> Option<f64> {
        self.ensure_min();
        self.cached_min.map(|(t, ..)| t)
    }

    /// Removes and returns the minimum entry by `(t, seq)`.
    fn pop_min(&mut self) -> Option<(f64, E)> {
        self.ensure_min();
        let (t, seq, b, pos) = self.cached_min.take()?;
        let bucket = &mut self.buckets[b];
        debug_assert!(
            bucket.get(pos).is_some_and(|e| e.t == t && e.seq == seq),
            "cached minimum must exist at its recorded position"
        );
        let entry = bucket.swap_remove(pos);
        self.len -= 1;
        // Keep the year sweep at the popped key so the next search starts
        // where this one ended.
        self.cur = b;
        self.cur_top = (t / self.width).floor() * self.width + self.width;
        Some((entry.t, entry.ev))
    }

    /// Locates the minimum entry if the cache is stale.
    fn ensure_min(&mut self) {
        if self.cached_min.is_some() || self.len == 0 {
            return;
        }
        let n = self.buckets.len();
        let mut cur = self.cur;
        let mut top = self.cur_top;
        for _ in 0..n {
            let mut best: Option<(f64, u64, usize)> = None;
            for (pos, e) in self.buckets[cur].iter().enumerate() {
                // Only entries inside the current year belong to this
                // sweep position; later-year entries hash to the same
                // bucket but are not minimal yet.
                if e.t < top
                    && best.map_or(true, |(bt, bs, _)| {
                        key_cmp(e.t, e.seq, bt, bs) == Ordering::Less
                    })
                {
                    best = Some((e.t, e.seq, pos));
                }
            }
            if let Some((t, seq, pos)) = best {
                self.cached_min = Some((t, seq, cur, pos));
                self.cur = cur;
                self.cur_top = top;
                return;
            }
            cur = (cur + 1) % n;
            top += self.width;
        }
        // One full revolution found nothing in-year: the live entries are
        // sparse and far ahead. Fall back to a direct scan for the global
        // minimum and jump the sweep there.
        self.fallback_scans += 1;
        let mut best: Option<(f64, u64, usize, usize)> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            for (pos, e) in bucket.iter().enumerate() {
                if best.map_or(true, |(bt, bs, ..)| {
                    key_cmp(e.t, e.seq, bt, bs) == Ordering::Less
                }) {
                    best = Some((e.t, e.seq, b, pos));
                }
            }
        }
        let (t, _, b, _) = best.expect("non-empty calendar has a minimum");
        self.cached_min = best;
        self.cur = b;
        self.cur_top = (t / self.width).floor() * self.width + self.width;
    }
}

/// Compares two `(t, seq)` keys with the engine's event ordering.
fn key_cmp(t_a: f64, seq_a: u64, t_b: f64, seq_b: u64) -> Ordering {
    t_a.total_cmp(&t_b).then(seq_a.cmp(&seq_b))
}

/// Observability snapshot of one [`EventQueue`]'s internal work: per-lane
/// pop counts, calendar maintenance counts, and the final calendar
/// geometry. Pure counters — reading them never perturbs the simulation,
/// so traced and untraced runs stay bit-identical.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EventQueueStats {
    /// Events popped from the fault lane (class −1).
    pub fault_pops: u64,
    /// Events popped from the FIFO arrival lane (class 0).
    pub arrival_pops: u64,
    /// Events popped from the bucketed calendar lane (class 1).
    pub scheduled_pops: u64,
    /// Calendar bucket-array rebuilds (growth or width re-estimation).
    pub rebuilds: u64,
    /// Full-scan fallbacks after an empty calendar revolution.
    pub fallback_scans: u64,
    /// Current calendar bucket count.
    pub buckets: u64,
    /// Current calendar bucket width, in seconds.
    pub width_s: f64,
}

impl EventQueueStats {
    /// Accumulates another queue's stats (pop and maintenance counts add;
    /// geometry keeps the maximum).
    pub fn merge_from(&mut self, other: &EventQueueStats) {
        self.fault_pops += other.fault_pops;
        self.arrival_pops += other.arrival_pops;
        self.scheduled_pops += other.scheduled_pops;
        self.rebuilds += other.rebuilds;
        self.fallback_scans += other.fallback_scans;
        self.buckets = self.buckets.max(other.buckets);
        self.width_s = self.width_s.max(other.width_s);
    }
}

/// The engine's two-lane event queue: a FIFO arrival lane merged against a
/// [`Calendar`] of scheduled completions. See the module docs for the
/// ordering contract.
#[derive(Debug, Clone)]
pub(crate) struct EventQueue<E> {
    /// `(t, payload)` fault-lane events in non-decreasing `t`, FIFO.
    /// Class −1: faults beat same-instant arrivals and scheduled events.
    faults: VecDeque<(f64, E)>,
    /// `(t, payload)` arrivals in non-decreasing `t`, FIFO.
    arrivals: VecDeque<(f64, E)>,
    calendar: Calendar<E>,
    /// Sequence counter for scheduled events (arrivals order by FIFO
    /// position; the two lanes never compare sequence numbers against each
    /// other because the class decides same-instant ties).
    seq: u64,
    /// Per-lane pop counters, for [`EventQueueStats`].
    fault_pops: u64,
    arrival_pops: u64,
    scheduled_pops: u64,
}

impl<E: Copy> EventQueue<E> {
    pub(crate) fn new() -> Self {
        Self {
            faults: VecDeque::new(),
            arrivals: VecDeque::new(),
            calendar: Calendar::new(),
            seq: 0,
            fault_pops: 0,
            arrival_pops: 0,
            scheduled_pops: 0,
        }
    }

    /// Snapshot of the queue's lifetime work counters.
    pub(crate) fn stats(&self) -> EventQueueStats {
        EventQueueStats {
            fault_pops: self.fault_pops,
            arrival_pops: self.arrival_pops,
            scheduled_pops: self.scheduled_pops,
            rebuilds: self.calendar.rebuilds,
            fallback_scans: self.calendar.fallback_scans,
            buckets: self.calendar.buckets.len() as u64,
            width_s: self.calendar.width,
        }
    }

    /// Reserves space for `additional` more arrivals in the FIFO lane.
    pub(crate) fn reserve_arrivals(&mut self, additional: usize) {
        self.arrivals.reserve(additional);
    }

    /// Enqueues an arrival (class 0). Arrivals must be pushed in
    /// non-decreasing time order — the engine sorts its trace before
    /// injection, and the debug assertion holds it to that.
    pub(crate) fn push_arrival(&mut self, t: f64, ev: E) {
        debug_assert!(
            self.arrivals.back().map_or(true, |&(back, _)| back <= t),
            "arrivals must be enqueued in non-decreasing time order"
        );
        self.arrivals.push_back((t, ev));
    }

    /// Enqueues a scheduled completion (class 1).
    pub(crate) fn push_scheduled(&mut self, t: f64, ev: E) {
        let seq = self.seq;
        self.seq += 1;
        self.calendar.push(t, seq, ev);
    }

    /// Enqueues a fault-lane event (class −1). Like arrivals, fault events
    /// must be pushed in non-decreasing time order — fault schedules are
    /// sorted before injection, and the debug assertion holds them to that.
    pub(crate) fn push_fault(&mut self, t: f64, ev: E) {
        debug_assert!(
            self.faults.back().map_or(true, |&(back, _)| back <= t),
            "fault events must be enqueued in non-decreasing time order"
        );
        self.faults.push_back((t, ev));
    }

    /// Time of the next event without removing it.
    pub(crate) fn peek_time(&mut self) -> Option<f64> {
        let merged = self.peek_rest();
        match (self.faults.front().map(|&(t, _)| t), merged) {
            // Faults (class −1) win ties against every other lane.
            (Some(tf), Some(tm)) => Some(if tf.total_cmp(&tm) != Ordering::Greater {
                tf
            } else {
                tm
            }),
            (Some(tf), None) => Some(tf),
            (None, tm) => tm,
        }
    }

    /// Removes and returns the next event in `(time, class, seq)` order.
    pub(crate) fn pop(&mut self) -> Option<(f64, E)> {
        if let Some(&(tf, _)) = self.faults.front() {
            // Faults (class −1) win ties against every other lane.
            let rest = self.peek_rest();
            if rest.map_or(true, |tr| tf.total_cmp(&tr) != Ordering::Greater) {
                self.fault_pops += 1;
                return self.faults.pop_front();
            }
        }
        let take_arrival = match (self.arrivals.front(), self.calendar.is_empty()) {
            (Some(_), true) => true,
            (None, _) => false,
            (Some(&(ta, _)), false) => {
                let ts = self
                    .calendar
                    .peek_time()
                    .expect("non-empty calendar peeks a time");
                // Arrivals (class 0) win ties against scheduled events.
                ta.total_cmp(&ts) != Ordering::Greater
            }
        };
        let out = if take_arrival {
            self.arrivals.pop_front()
        } else {
            self.calendar.pop_min()
        };
        if out.is_some() {
            if take_arrival {
                self.arrival_pops += 1;
            } else {
                self.scheduled_pops += 1;
            }
        }
        out
    }

    /// Earliest time across the arrival and calendar lanes only.
    fn peek_rest(&mut self) -> Option<f64> {
        match (
            self.arrivals.front().map(|&(t, _)| t),
            self.calendar.peek_time(),
        ) {
            (Some(ta), Some(ts)) => Some(if ta.total_cmp(&ts) != Ordering::Greater {
                ta
            } else {
                ts
            }),
            (Some(ta), None) => Some(ta),
            (None, ts) => ts,
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.faults.is_empty() && self.arrivals.is_empty() && self.calendar.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// Reference key mirroring the historical `BinaryHeap` entry ordering.
    #[derive(PartialEq)]
    struct RefEntry {
        t: f64,
        class: u8,
        seq: u64,
        tag: u32,
    }
    impl Eq for RefEntry {}
    impl PartialOrd for RefEntry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for RefEntry {
        fn cmp(&self, other: &Self) -> Ordering {
            self.t
                .total_cmp(&other.t)
                .then(self.class.cmp(&other.class))
                .then(self.seq.cmp(&other.seq))
        }
    }

    #[test]
    fn empty_queue_is_empty() {
        let mut q: EventQueue<u32> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn arrivals_beat_scheduled_events_at_the_same_instant() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push_scheduled(1.0, 10);
        q.push_arrival(1.0, 1);
        q.push_scheduled(0.5, 20);
        assert_eq!(q.pop(), Some((0.5, 20)));
        assert_eq!(q.pop(), Some((1.0, 1)));
        assert_eq!(q.pop(), Some((1.0, 10)));
        assert!(q.is_empty());
    }

    /// Pins the fault-lane tie-break: at one instant, fault events drain
    /// first (FIFO), then arrivals, then scheduled completions. Chaos
    /// scenario goldens depend on this order.
    #[test]
    fn fault_events_beat_same_instant_arrivals_and_scheduled_events() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push_scheduled(1.0, 30);
        q.push_arrival(1.0, 20);
        q.push_fault(1.0, 10);
        q.push_fault(1.0, 11);
        q.push_fault(2.0, 12);
        assert_eq!(q.peek_time(), Some(1.0));
        assert_eq!(q.pop(), Some((1.0, 10)));
        assert_eq!(q.pop(), Some((1.0, 11)));
        assert_eq!(q.pop(), Some((1.0, 20)));
        assert_eq!(q.pop(), Some((1.0, 30)));
        assert!(!q.is_empty());
        assert_eq!(q.pop(), Some((2.0, 12)));
        assert!(q.is_empty());
    }

    #[test]
    fn scheduled_ties_break_by_insertion_order() {
        let mut q: EventQueue<u32> = EventQueue::new();
        for tag in 0..8 {
            q.push_scheduled(2.0, tag);
        }
        for tag in 0..8 {
            assert_eq!(q.pop(), Some((2.0, tag)));
        }
    }

    /// Single-bucket degenerate case: every key identical, so the calendar
    /// cannot spread them and must still pop in sequence order.
    #[test]
    fn identical_timestamps_fill_one_bucket_and_stay_ordered() {
        let mut q: EventQueue<u32> = EventQueue::new();
        for tag in 0..200 {
            q.push_scheduled(0.0, tag);
        }
        for tag in 0..200 {
            assert_eq!(q.pop(), Some((0.0, tag)));
        }
        assert!(q.is_empty());
    }

    /// Randomized cross-check against the historical heap order, with
    /// interleaved pushes and pops and monotone arrival times.
    #[test]
    fn merged_order_matches_the_reference_heap() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..50 {
            let mut q: EventQueue<u32> = EventQueue::new();
            let mut heap: BinaryHeap<Reverse<RefEntry>> = BinaryHeap::new();
            let mut heap_seq = 0u64;
            let mut arrival_t = 0.0f64;
            let mut popped_t = 0.0f64;
            let mut tag = 0u32;
            let mut expected: Vec<(f64, u32)> = Vec::new();
            let mut actual: Vec<(f64, u32)> = Vec::new();
            for _ in 0..400 {
                match rng.gen_range(0..3u32) {
                    0 => {
                        arrival_t += rng.gen_range(0.0..0.5);
                        q.push_arrival(arrival_t, tag);
                        heap.push(Reverse(RefEntry {
                            t: arrival_t,
                            class: 0,
                            seq: heap_seq,
                            tag,
                        }));
                        heap_seq += 1;
                        tag += 1;
                    }
                    1 => {
                        // Completions are scheduled at or after the last
                        // processed instant, like the engine does.
                        let t = popped_t + rng.gen_range(0.0..3.0);
                        q.push_scheduled(t, tag);
                        heap.push(Reverse(RefEntry {
                            t,
                            class: 1,
                            seq: heap_seq,
                            tag,
                        }));
                        heap_seq += 1;
                        tag += 1;
                    }
                    _ => {
                        let got = q.pop();
                        let want = heap.pop().map(|Reverse(e)| (e.t, e.tag));
                        if let Some((t, _)) = got {
                            popped_t = popped_t.max(t);
                        }
                        assert_eq!(got, want);
                        if let Some(w) = want {
                            expected.push(w);
                        }
                        if let Some(g) = got {
                            actual.push(g);
                        }
                    }
                }
            }
            while let Some(got) = q.pop() {
                let Reverse(e) = heap.pop().expect("reference heap drained early");
                assert_eq!(got, (e.t, e.tag));
            }
            assert!(heap.pop().is_none());
            assert_eq!(expected, actual);
        }
    }

    /// Growth path: enough live entries to force several rebuilds.
    #[test]
    fn rebuilds_preserve_every_entry_and_the_order() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut keys: Vec<(f64, u32)> = Vec::new();
        for tag in 0..500u32 {
            let t = rng.gen_range(0.0..100.0);
            q.push_scheduled(t, tag);
            keys.push((t, tag));
        }
        keys.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        // Popping in one go must be globally sorted even though pushes were
        // not monotone (the engine never does this, but the calendar's
        // full-scan fallback must still cope).
        let mut last = f64::NEG_INFINITY;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            count += 1;
        }
        assert_eq!(count, 500);
    }
}
