//! Reactive fleet autoscaling inside the cluster simulation.
//!
//! [`crate::cluster::ClusterEngine`] answers what a *fixed* fleet does under
//! a request stream. Real traffic breathes — diurnal cycles, flash crowds —
//! and capacity must follow it: provisioning for the peak wastes chips all
//! night, provisioning for the mean misses the SLO every evening. This
//! module adds the provisioning loop the cluster-serving literature
//! (Splitwise's pool sizing, DistServe's SLO-goodput framing) assumes sits
//! above the router: an [`AutoscaleEngine`] drives the same per-replica
//! simulations as the cluster engine, but re-evaluates a reactive
//! [`AutoscalerPolicy`] at a fixed interval while the trace plays:
//!
//! * **Scale-out** when the mean queue depth per routable replica crosses a
//!   threshold, or (optionally) when the SLO attainment of recently
//!   completed requests falls below a floor ([`AttainmentTrigger`]).
//! * **Warm-up** — a newly provisioned replica takes no traffic until its
//!   warm-up delay elapses (model loading, cache warming), but its chips
//!   are paid for from the provisioning decision.
//! * **Scale-in** only after a cooldown since the last scaling action, and
//!   only while more than the minimum replica count is routable. A
//!   decommissioned replica stops receiving requests and drains what it
//!   holds; its chips are paid until the drain finishes.
//!
//! The run produces the same [`FleetReport`] a fixed fleet would (merged
//! metrics, per-replica breakdowns, per-class rows) plus the scaling
//! history: every [`ScalingEvent`], per-replica [`ReplicaLifetime`]s, and
//! the provisioned **replica-seconds** integral that capacity planning
//! compares against static provisioning (chip-hours = replica-seconds ×
//! chips per replica / 3600).
//!
//! # Examples
//!
//! ```
//! use rago_serving_sim::autoscaler::{AutoscaleEngine, AutoscalerPolicy};
//! use rago_serving_sim::engine::{DecodeSpec, LatencyTable, PipelineSpec, StageSpec};
//! use rago_schema::RouterPolicy;
//! use rago_schema::SequenceProfile;
//! use rago_workloads::{ArrivalProcess, TraceSpec};
//!
//! let spec = PipelineSpec::new(
//!     vec![StageSpec::new("prefix", 0, 2, LatencyTable::constant(2, 0.05))],
//!     DecodeSpec::new(8, LatencyTable::constant(8, 2e-3)),
//! );
//! // A flash crowd: 2 rps background, 60 rps for four seconds.
//! let trace = TraceSpec {
//!     num_requests: 200,
//!     profile: SequenceProfile::paper_default().with_decode_tokens(16),
//!     arrival: ArrivalProcess::Spike {
//!         base_rps: 2.0, spike_rps: 60.0, start_s: 4.0, duration_s: 4.0,
//!     },
//!     length_jitter: 0.0,
//!     seed: 3,
//! }
//! .generate();
//! let policy = AutoscalerPolicy::new(1, 6)
//!     .with_evaluation_interval(0.5)
//!     .with_scale_out_queue_depth(2.0)
//!     .with_warmup(0.5);
//! let report = AutoscaleEngine::new(spec, RouterPolicy::LeastOutstanding, policy)
//!     .run_trace(&trace);
//! assert_eq!(report.fleet.merged.metrics.completed, 200);
//! assert!(report.peak_provisioned > 1, "the spike should trigger scale-out");
//! assert!(report.replica_seconds > 0.0);
//! ```

use crate::cluster::{
    advance_all, merge_finished_replicas, merge_finished_replicas_streaming,
    record_fleet_observability, route_pick, FleetReport, ReplicaObs,
};
use crate::engine::{EngineRequest, PipelineSpec, ReplicaSim};
use crate::sink::MetricsMode;
use rago_schema::{RouterPolicy, SloTarget};
use rago_workloads::Trace;
use serde::{Deserialize, Serialize};

/// Scale out when the SLO attainment of requests completed in the last
/// evaluation interval falls below `floor`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttainmentTrigger {
    /// The SLO recently completed requests are checked against.
    pub slo: SloTarget,
    /// Scale out when the recent attainment fraction drops below this floor
    /// (in `(0, 1]`). Windows with no completions never trigger.
    pub floor: f64,
}

/// A reactive autoscaling policy, evaluated at a fixed interval during the
/// simulated run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoscalerPolicy {
    /// Fewest replicas ever provisioned (at least 1; the fleet starts here).
    pub min_replicas: u32,
    /// Most replicas ever provisioned (warming replicas count).
    pub max_replicas: u32,
    /// Seconds between policy evaluations (ticks).
    pub evaluation_interval_s: f64,
    /// Scale out when the mean number of *queued* requests per routable
    /// replica exceeds this threshold.
    pub scale_out_queue_depth: f64,
    /// Scale in when the mean number of *outstanding* requests (queued or
    /// in service) per routable replica falls below this threshold. Zero
    /// disables scale-in entirely (mean outstanding is never negative).
    pub scale_in_outstanding: f64,
    /// Minimum seconds between the previous scaling action (either
    /// direction) and a scale-in. Scale-out is never delayed: under-capacity
    /// misses SLOs, over-capacity only costs chips.
    pub cooldown_s: f64,
    /// Seconds a newly provisioned replica needs before it can take traffic
    /// (its chips are paid from the provisioning decision).
    pub warmup_s: f64,
    /// Optional recent-SLO-attainment scale-out trigger.
    pub attainment_trigger: Option<AttainmentTrigger>,
}

impl AutoscalerPolicy {
    /// A policy with the given replica bounds and conservative defaults:
    /// 1 s evaluation interval, scale-out above 4 queued per replica,
    /// scale-in below 1 outstanding per replica, 4 s cooldown, 1 s warm-up,
    /// no attainment trigger.
    pub fn new(min_replicas: u32, max_replicas: u32) -> Self {
        Self {
            min_replicas,
            max_replicas,
            evaluation_interval_s: 1.0,
            scale_out_queue_depth: 4.0,
            scale_in_outstanding: 1.0,
            cooldown_s: 4.0,
            warmup_s: 1.0,
            attainment_trigger: None,
        }
    }

    /// Sets the evaluation interval.
    pub fn with_evaluation_interval(mut self, interval_s: f64) -> Self {
        self.evaluation_interval_s = interval_s;
        self
    }

    /// Sets the scale-out queue-depth threshold.
    pub fn with_scale_out_queue_depth(mut self, depth: f64) -> Self {
        self.scale_out_queue_depth = depth;
        self
    }

    /// Sets the scale-in mean-outstanding threshold.
    pub fn with_scale_in_outstanding(mut self, outstanding: f64) -> Self {
        self.scale_in_outstanding = outstanding;
        self
    }

    /// Sets the scale-in cooldown.
    pub fn with_cooldown(mut self, cooldown_s: f64) -> Self {
        self.cooldown_s = cooldown_s;
        self
    }

    /// Sets the replica warm-up delay.
    pub fn with_warmup(mut self, warmup_s: f64) -> Self {
        self.warmup_s = warmup_s;
        self
    }

    /// Adds a recent-attainment scale-out trigger.
    pub fn with_attainment_trigger(mut self, slo: SloTarget, floor: f64) -> Self {
        self.attainment_trigger = Some(AttainmentTrigger { slo, floor });
        self
    }

    /// Panics unless the policy is well-formed.
    pub(crate) fn assert_valid(&self) {
        assert!(self.min_replicas >= 1, "min_replicas must be at least 1");
        assert!(
            self.max_replicas >= self.min_replicas,
            "max_replicas must be at least min_replicas"
        );
        assert!(
            self.evaluation_interval_s > 0.0 && self.evaluation_interval_s.is_finite(),
            "the evaluation interval must be positive and finite"
        );
        assert!(
            self.scale_out_queue_depth >= 0.0 && self.scale_out_queue_depth.is_finite(),
            "the scale-out queue depth must be non-negative and finite"
        );
        assert!(
            self.scale_in_outstanding >= 0.0 && self.scale_in_outstanding.is_finite(),
            "the scale-in outstanding threshold must be non-negative and finite"
        );
        assert!(
            self.cooldown_s >= 0.0 && self.cooldown_s.is_finite(),
            "the cooldown must be non-negative and finite"
        );
        assert!(
            self.warmup_s >= 0.0 && self.warmup_s.is_finite(),
            "the warm-up delay must be non-negative and finite"
        );
        if let Some(t) = &self.attainment_trigger {
            assert!(
                t.floor > 0.0 && t.floor <= 1.0,
                "the attainment floor must be in (0, 1]"
            );
            assert!(t.slo.validate().is_ok(), "the trigger SLO must be valid");
        }
    }
}

/// The direction of one scaling action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScalingAction {
    /// A replica was provisioned (it becomes routable after warm-up).
    ScaleOut,
    /// A replica was decommissioned (it drains and stops taking traffic).
    ScaleIn,
}

/// One scaling decision taken at an evaluation tick.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingEvent {
    /// When the decision was taken, in seconds.
    pub time_s: f64,
    /// The direction.
    pub action: ScalingAction,
    /// The replica index provisioned or decommissioned.
    pub replica: usize,
    /// Provisioned replicas (routable + warming) after the action.
    pub provisioned_after: u32,
    /// Routable replicas after the action.
    pub routable_after: u32,
    /// Mean queued requests per routable replica observed at the tick.
    pub mean_queue_depth: f64,
    /// Mean outstanding requests per routable replica observed at the tick.
    pub mean_outstanding: f64,
}

/// The provisioning window of one replica across the run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplicaLifetime {
    /// Replica index (matches [`FleetReport::per_replica`]).
    pub replica: usize,
    /// When the replica was provisioned (0 for the initial fleet), in
    /// seconds.
    pub provisioned_s: f64,
    /// When the replica became routable (provisioning plus warm-up), in
    /// seconds.
    pub routable_s: f64,
    /// When the replica was decommissioned, or `None` if it served until
    /// the end of the run.
    pub decommissioned_s: Option<f64>,
    /// When the replica's chips were released: the end of the run for
    /// replicas never decommissioned, otherwise the later of the
    /// decommission decision and the completion of its last in-flight
    /// request (the drain).
    pub retired_s: f64,
    /// Requests the router assigned to this replica.
    pub assigned: usize,
}

impl ReplicaLifetime {
    /// Seconds this replica's chips were provisioned.
    pub fn provisioned_duration_s(&self) -> f64 {
        (self.retired_s - self.provisioned_s).max(0.0)
    }
}

/// The result of one autoscaled run: the fleet report plus the scaling
/// history and the provisioned-capacity integral.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutoscaleReport {
    /// The merged fleet report — same definitions as a fixed-fleet
    /// [`crate::cluster::ClusterEngine`] run, with one
    /// [`crate::cluster::ReplicaReport`] per replica ever provisioned.
    pub fleet: FleetReport,
    /// Every scaling decision, in time order.
    pub events: Vec<ScalingEvent>,
    /// Per-replica provisioning windows, by replica index.
    pub lifetimes: Vec<ReplicaLifetime>,
    /// Largest number of provisioned replicas at any instant.
    pub peak_provisioned: u32,
    /// Smallest number of provisioned replicas at any instant.
    pub min_provisioned: u32,
    /// Integral of provisioned replicas over time, in replica-seconds —
    /// what the fleet *paid for*. A static fleet of `N` replicas over the
    /// same run pays `N × makespan`.
    pub replica_seconds: f64,
}

impl AutoscaleReport {
    /// Mean provisioned replicas over the run (replica-seconds divided by
    /// the makespan; zero for an empty run).
    pub fn mean_provisioned(&self) -> f64 {
        let makespan = self.fleet.merged.metrics.makespan_s;
        if makespan <= 0.0 {
            return 0.0;
        }
        self.replica_seconds / makespan
    }
}

/// One replica slot of the elastic fleet.
struct Slot {
    sim: ReplicaSim,
    provisioned_s: f64,
    routable_s: f64,
    decommissioned_s: Option<f64>,
    assigned: usize,
    /// Position in the replica's chronological completion log up to which
    /// the attainment trigger has already consumed outcomes — each
    /// completion is scored exactly once across ticks.
    completion_cursor: usize,
}

/// An elastic fleet: replicas of one pipeline behind a router, resized by a
/// reactive policy while the trace plays. See the module docs.
#[derive(Debug, Clone)]
pub struct AutoscaleEngine {
    spec: PipelineSpec,
    router: RouterPolicy,
    policy: AutoscalerPolicy,
    parallel_advance: bool,
    telemetry: rago_telemetry::TelemetryConfig,
}

impl AutoscaleEngine {
    /// Creates an autoscaled fleet of `spec` replicas behind `router`.
    ///
    /// # Panics
    ///
    /// Panics if the policy is malformed (zero minimum, inverted bounds,
    /// non-positive evaluation interval, negative thresholds or delays, or
    /// an invalid attainment trigger).
    pub fn new(spec: PipelineSpec, router: RouterPolicy, policy: AutoscalerPolicy) -> Self {
        policy.assert_valid();
        Self {
            spec,
            router,
            policy,
            parallel_advance: false,
            telemetry: rago_telemetry::TelemetryConfig::disabled(),
        }
    }

    /// Sets the telemetry config used by [`Self::run_telemetry`] (and by
    /// [`Self::run_traced`] for its gauge cadence). The untraced run paths
    /// never consult it.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: rago_telemetry::TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Advances replicas in parallel between routing points and policy
    /// ticks (off by default) — same determinism argument as
    /// [`crate::cluster::ClusterEngine::with_parallel_advance`]: replicas
    /// are independent between clock points, so the report is bit-identical
    /// to the serial run.
    #[must_use]
    pub fn with_parallel_advance(mut self, parallel: bool) -> Self {
        self.parallel_advance = parallel;
        self
    }

    /// The policy driving the fleet size.
    pub fn policy(&self) -> &AutoscalerPolicy {
        &self.policy
    }

    /// A fresh replica simulation for one slot. Completion logging is
    /// enabled only when the policy actually has an attainment trigger —
    /// it is the log's only consumer, and an untracked run should not
    /// retain per-request completion tuples.
    fn new_sim(&self, track_probes: bool) -> ReplicaSim {
        let mut sim = ReplicaSim::new(self.spec.clone());
        sim.track_completions = self.policy.attainment_trigger.is_some();
        sim.track_probes = track_probes;
        sim
    }

    /// Routes every request of a generated trace through the elastic fleet.
    pub fn run_trace(&self, trace: &Trace) -> AutoscaleReport {
        self.run(trace.requests.iter().map(EngineRequest::from).collect())
    }

    /// [`Self::run_trace`] with an explicit metrics pipeline.
    pub fn run_trace_with_mode(&self, trace: &Trace, mode: &MetricsMode) -> AutoscaleReport {
        self.run_with_mode(
            trace.requests.iter().map(EngineRequest::from).collect(),
            mode,
        )
    }

    /// Runs the elastic fleet over `requests` (sorted by arrival time
    /// internally) and returns the merged report plus scaling history.
    ///
    /// The run interleaves three chronological streams under one clock:
    /// request arrivals (routed exactly as
    /// [`crate::cluster::ClusterEngine::run`] routes them, over the
    /// currently routable replicas), policy evaluation ticks (every
    /// [`AutoscalerPolicy::evaluation_interval_s`] up to the last arrival;
    /// ticks at the same instant as an arrival are evaluated first, so a
    /// scale-out decision never benefits from hindsight about the arrival),
    /// and replica state transitions (warm-up completion makes a replica
    /// routable; decommissioning removes it from routing). After the last
    /// arrival the fleet drains to completion; no scaling happens during
    /// the drain.
    ///
    /// # Panics
    ///
    /// Panics if any arrival time is negative or non-finite, or any request
    /// generates zero tokens.
    pub fn run(&self, requests: Vec<EngineRequest>) -> AutoscaleReport {
        self.run_with_mode(requests, &MetricsMode::Exact)
    }

    /// [`Self::run`] with an explicit metrics pipeline. Streaming mode
    /// keeps `O(buckets)` metric state per replica: the fleet report holds
    /// no timelines and no per-request assignment log (the scaling history
    /// and lifetimes are retained either way — they are `O(scale events +
    /// replicas)`).
    pub fn run_with_mode(
        &self,
        requests: Vec<EngineRequest>,
        mode: &MetricsMode,
    ) -> AutoscaleReport {
        self.run_recorded(requests, mode, &mut rago_telemetry::NullRecorder)
            .0
    }

    /// [`Self::run_with_mode`] recording a trace into `rec`: router picks
    /// live during routing; scaling decisions (with the triggering metric
    /// value), replica lifecycle instants, a routable-replica gauge, and
    /// all the per-replica fleet observability of
    /// [`crate::cluster::ClusterEngine::run_traced`] derived post-hoc. A
    /// [`rago_telemetry::NullRecorder`] makes this exactly
    /// [`Self::run_with_mode`].
    pub fn run_traced<R: rago_telemetry::Recorder>(
        &self,
        requests: Vec<EngineRequest>,
        mode: &MetricsMode,
        rec: &mut R,
    ) -> AutoscaleReport {
        let (report, obs) = self.run_recorded(requests, mode, rec);
        if R::ENABLED {
            let end_s = report.fleet.merged.metrics.makespan_s;
            record_fleet_observability(rec, &report.fleet, &obs, self.telemetry.gauge_cadence_s);
            crate::telemetry::record_scaling_events(rec, &report.events);
            crate::telemetry::record_replica_lifetimes(rec, &report.lifetimes);
            crate::telemetry::record_routable_gauge(
                rec,
                &report.lifetimes,
                self.telemetry.gauge_cadence_s,
                end_s,
            );
        }
        report
    }

    /// Convenience wrapper: [`Self::run_traced`] with a
    /// [`rago_telemetry::TraceRecorder`] built from the engine's
    /// [`Self::with_telemetry`] config.
    pub fn run_telemetry(
        &self,
        requests: Vec<EngineRequest>,
        mode: &MetricsMode,
    ) -> (AutoscaleReport, rago_telemetry::TraceRecorder) {
        let mut rec = rago_telemetry::TraceRecorder::new(self.telemetry.clone());
        let report = self.run_traced(requests, mode, &mut rec);
        (report, rec)
    }

    /// The shared elastic-fleet run body: routes, ticks the policy, drains,
    /// and merges; the recorder sees router picks only (everything else is
    /// derived from the returned ledgers).
    fn run_recorded<R: rago_telemetry::Recorder>(
        &self,
        mut requests: Vec<EngineRequest>,
        mode: &MetricsMode,
        rec: &mut R,
    ) -> (AutoscaleReport, Vec<ReplicaObs>) {
        crate::engine::sort_by_arrival(&mut requests);
        let log_assignments = matches!(mode, MetricsMode::Exact);
        let policy = &self.policy;
        let mut slots: Vec<Slot> = (0..policy.min_replicas)
            .map(|_| Slot {
                sim: self.new_sim(R::ENABLED),
                provisioned_s: 0.0,
                routable_s: 0.0,
                decommissioned_s: None,
                assigned: 0,
                completion_cursor: 0,
            })
            .collect();
        let mut events: Vec<ScalingEvent> = Vec::new();
        let mut assignments: Vec<(u64, usize)> = if log_assignments {
            Vec::with_capacity(requests.len())
        } else {
            Vec::new()
        };
        let mut round_robin_next = 0usize;
        let mut last_action_s = f64::NEG_INFINITY;
        let mut peak_provisioned = policy.min_replicas;
        let mut min_provisioned = policy.min_replicas;

        let last_arrival = requests.last().map(|r| r.arrival_s).unwrap_or(0.0);
        let interval = policy.evaluation_interval_s;
        let mut next_tick = interval;
        let mut next_req = 0usize;
        while next_req < requests.len() || next_tick <= last_arrival {
            let arrival_t = requests.get(next_req).map(|r| r.arrival_s);
            // Ticks run first at equal instants: the policy must not see an
            // arrival that has not happened yet from its point of view.
            let tick_due =
                next_tick <= last_arrival && arrival_t.map(|t| next_tick <= t).unwrap_or(true);
            if tick_due {
                let now = next_tick;
                next_tick += interval;
                advance_all(&mut slots, |s| &mut s.sim, now, self.parallel_advance);
                self.evaluate_policy(
                    now,
                    &mut slots,
                    &mut events,
                    &mut last_action_s,
                    &mut peak_provisioned,
                    &mut min_provisioned,
                    R::ENABLED,
                );
            } else {
                let req = requests[next_req];
                next_req += 1;
                advance_all(
                    &mut slots,
                    |s| &mut s.sim,
                    req.arrival_s,
                    self.parallel_advance,
                );
                let routable: Vec<usize> = slots
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.routable_s <= req.arrival_s && s.decommissioned_s.is_none())
                    .map(|(i, _)| i)
                    .collect();
                debug_assert!(
                    !routable.is_empty(),
                    "the fleet never drops below one routable replica"
                );
                let pick = route_pick(
                    self.router,
                    routable.len(),
                    |i| &slots[routable[i]].sim,
                    // Hash homes key on the stable slot index, not the
                    // position in the routable subset, so scale events do
                    // not re-home every template.
                    |i| routable[i],
                    &mut round_robin_next,
                    &req,
                );
                let replica = routable[pick];
                if R::ENABLED {
                    crate::telemetry::record_route_pick(
                        rec,
                        req.arrival_s,
                        self.router,
                        replica,
                        &req,
                        &slots[replica].sim,
                    );
                }
                if log_assignments {
                    assignments.push((req.id, replica));
                }
                slots[replica].assigned += 1;
                slots[replica].sim.inject(req);
            }
        }

        // Drain: no scaling after the last arrival.
        let assigned_counts: Vec<usize> = slots.iter().map(|s| s.assigned).collect();
        let mut lifetimes_partial: Vec<(f64, f64, Option<f64>)> = slots
            .iter()
            .map(|s| (s.provisioned_s, s.routable_s, s.decommissioned_s))
            .collect();
        let sims: Vec<ReplicaSim> = slots.into_iter().map(|s| s.sim).collect();
        let (fleet, obs) = match mode {
            MetricsMode::Exact => {
                merge_finished_replicas(sims, assigned_counts, assignments, self.router)
            }
            MetricsMode::Streaming(config) => {
                merge_finished_replicas_streaming(sims, assigned_counts, self.router, config)
            }
        };

        // Cost accounting: a never-decommissioned replica is paid until the
        // end of the run; a decommissioned one until its drain finishes.
        let makespan = fleet.merged.metrics.makespan_s;
        let mut lifetimes = Vec::with_capacity(lifetimes_partial.len());
        let mut replica_seconds = 0.0;
        for (replica, (provisioned_s, routable_s, decommissioned_s)) in
            lifetimes_partial.drain(..).enumerate()
        {
            let report = &fleet.per_replica[replica].report;
            // The replica's last completion is its makespan (both metric
            // pipelines track it); an idle replica's is its provisioning
            // instant.
            let last_completion = report.metrics.makespan_s.max(provisioned_s);
            let retired_s = match decommissioned_s {
                Some(d) => d.max(last_completion),
                None => makespan.max(provisioned_s),
            };
            replica_seconds += retired_s - provisioned_s;
            lifetimes.push(ReplicaLifetime {
                replica,
                provisioned_s,
                routable_s,
                decommissioned_s,
                retired_s,
                assigned: fleet.per_replica[replica].assigned,
            });
        }

        let report = AutoscaleReport {
            fleet,
            events,
            lifetimes,
            peak_provisioned,
            min_provisioned,
            replica_seconds,
        };
        (report, obs)
    }

    /// One policy evaluation at tick `now`: observe the routable replicas,
    /// then take at most one scaling action.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_policy(
        &self,
        now: f64,
        slots: &mut Vec<Slot>,
        events: &mut Vec<ScalingEvent>,
        last_action_s: &mut f64,
        peak_provisioned: &mut u32,
        min_provisioned: &mut u32,
        track_probes: bool,
    ) {
        let policy = &self.policy;
        let routable: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.routable_s <= now && s.decommissioned_s.is_none())
            .map(|(i, _)| i)
            .collect();
        let provisioned = slots
            .iter()
            .filter(|s| s.decommissioned_s.is_none())
            .count() as u32;
        if routable.is_empty() {
            return; // only possible transiently while the whole minimum fleet warms up
        }
        let n = routable.len() as f64;
        let mean_queue_depth = routable
            .iter()
            .map(|&i| slots[i].sim.queued())
            .sum::<usize>() as f64
            / n;
        let mean_outstanding = routable
            .iter()
            .map(|&i| slots[i].sim.outstanding())
            .sum::<usize>() as f64
            / n;

        let queue_trigger = mean_queue_depth > policy.scale_out_queue_depth;
        // Consecutive ticks are `evaluation_interval_s` apart, so consuming
        // everything up to `now` from each replica's cursor is exactly the
        // last interval's completions — in O(new completions), not a rescan
        // of every request.
        let attainment_trigger = if let Some(t) = &policy.attainment_trigger {
            let mut met = 0usize;
            let mut total = 0usize;
            for slot in slots.iter_mut() {
                for &(_, ttft, tpot) in slot.sim.completions_up_to(&mut slot.completion_cursor, now)
                {
                    total += 1;
                    if t.slo.meets(ttft, tpot) {
                        met += 1;
                    }
                }
            }
            total > 0 && (met as f64 / total as f64) < t.floor
        } else {
            false
        };

        if (queue_trigger || attainment_trigger) && provisioned < policy.max_replicas {
            let replica = slots.len();
            slots.push(Slot {
                sim: self.new_sim(track_probes),
                provisioned_s: now,
                routable_s: now + policy.warmup_s,
                decommissioned_s: None,
                assigned: 0,
                completion_cursor: 0,
            });
            *last_action_s = now;
            *peak_provisioned = (*peak_provisioned).max(provisioned + 1);
            events.push(ScalingEvent {
                time_s: now,
                action: ScalingAction::ScaleOut,
                replica,
                provisioned_after: provisioned + 1,
                // A zero-warm-up replica is routable at this very tick, so
                // it already counts.
                routable_after: routable.len() as u32 + u32::from(policy.warmup_s <= 0.0),
                mean_queue_depth,
                mean_outstanding,
            });
        } else if mean_outstanding < policy.scale_in_outstanding
            && routable.len() as u32 > policy.min_replicas
            && now - *last_action_s >= policy.cooldown_s
        {
            // Drain the emptiest routable replica; ties retire the newest,
            // keeping long-lived replicas (and the round-robin pattern over
            // them) stable.
            let victim = routable
                .iter()
                .copied()
                .min_by_key(|&i| (slots[i].sim.outstanding(), usize::MAX - i))
                .expect("routable is non-empty");
            slots[victim].decommissioned_s = Some(now);
            *last_action_s = now;
            *min_provisioned = (*min_provisioned).min(provisioned - 1);
            events.push(ScalingEvent {
                time_s: now,
                action: ScalingAction::ScaleIn,
                replica: victim,
                provisioned_after: provisioned - 1,
                routable_after: routable.len() as u32 - 1,
                mean_queue_depth,
                mean_outstanding,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterEngine;
    use crate::engine::{DecodeSpec, LatencyTable, StageSpec};
    use rago_schema::SequenceProfile;
    use rago_workloads::{ArrivalProcess, TraceSpec};

    fn one_stage_spec(stage_latency: f64, batch: u32) -> PipelineSpec {
        PipelineSpec::new(
            vec![StageSpec::new(
                "prefix",
                0,
                batch,
                LatencyTable::constant(batch, stage_latency),
            )],
            DecodeSpec::new(8, LatencyTable::constant(8, 2e-3)),
        )
    }

    fn spike_trace(n: usize) -> Trace {
        TraceSpec {
            num_requests: n,
            profile: SequenceProfile::paper_default().with_decode_tokens(16),
            arrival: ArrivalProcess::Spike {
                base_rps: 2.0,
                spike_rps: 80.0,
                start_s: 3.0,
                duration_s: 3.0,
            },
            length_jitter: 0.0,
            seed: 5,
        }
        .generate()
    }

    #[test]
    fn spike_scales_out_and_scales_back_in() {
        let policy = AutoscalerPolicy::new(1, 8)
            .with_evaluation_interval(0.25)
            .with_scale_out_queue_depth(1.5)
            .with_scale_in_outstanding(1.0)
            .with_cooldown(1.0)
            .with_warmup(0.25);
        let report = AutoscaleEngine::new(
            one_stage_spec(0.04, 2),
            RouterPolicy::LeastOutstanding,
            policy,
        )
        .run_trace(&spike_trace(260));
        assert_eq!(report.fleet.merged.metrics.completed, 260);
        assert!(report.peak_provisioned > 1, "spike never scaled out");
        assert!(
            report
                .events
                .iter()
                .any(|e| e.action == ScalingAction::ScaleIn),
            "quiet tail never scaled in"
        );
        // Bounds hold throughout.
        assert!(report.peak_provisioned <= 8);
        assert!(report.min_provisioned >= 1);
        // Replica-seconds are cheaper than statically provisioning the peak.
        let static_cost =
            f64::from(report.peak_provisioned) * report.fleet.merged.metrics.makespan_s;
        assert!(report.replica_seconds < static_cost);
        assert!(report.mean_provisioned() < f64::from(report.peak_provisioned));
    }

    #[test]
    fn zero_trigger_trace_never_scales() {
        // Thresholds no light trace can cross: the fleet must stay at min.
        let policy = AutoscalerPolicy::new(2, 6)
            .with_evaluation_interval(0.5)
            .with_scale_out_queue_depth(1e6)
            .with_scale_in_outstanding(0.0);
        let trace = TraceSpec {
            num_requests: 60,
            profile: SequenceProfile::paper_default().with_decode_tokens(16),
            arrival: ArrivalProcess::Poisson { rate_rps: 10.0 },
            length_jitter: 0.1,
            seed: 7,
        }
        .generate();
        let report =
            AutoscaleEngine::new(one_stage_spec(0.02, 4), RouterPolicy::RoundRobin, policy)
                .run_trace(&trace);
        assert!(report.events.is_empty());
        assert_eq!(report.peak_provisioned, 2);
        assert_eq!(report.min_provisioned, 2);
        assert_eq!(report.fleet.per_replica.len(), 2);
    }

    #[test]
    fn static_policy_reproduces_the_fixed_fleet_exactly() {
        // min == max and disabled triggers: the elastic fleet must be
        // bit-identical to a ClusterEngine run of the same size.
        let spec = one_stage_spec(0.03, 2);
        let trace = spike_trace(150);
        let policy = AutoscalerPolicy::new(3, 3)
            .with_evaluation_interval(0.4)
            .with_scale_in_outstanding(0.0);
        for router in RouterPolicy::ALL {
            let elastic = AutoscaleEngine::new(spec.clone(), router, policy).run_trace(&trace);
            let fixed = ClusterEngine::homogeneous(spec.clone(), 3, router).run_trace(&trace);
            assert_eq!(elastic.fleet, fixed, "router {router} diverged");
            assert!(elastic.events.is_empty());
        }
    }

    #[test]
    fn warmup_delays_traffic_to_new_replicas() {
        let policy = AutoscalerPolicy::new(1, 4)
            .with_evaluation_interval(0.25)
            .with_scale_out_queue_depth(0.5)
            .with_warmup(2.0);
        let report = AutoscaleEngine::new(
            one_stage_spec(0.05, 1),
            RouterPolicy::LeastOutstanding,
            policy,
        )
        .run_trace(&spike_trace(120));
        for (lifetime, scaled_out) in report.lifetimes.iter().zip([false, true, true, true]) {
            if !scaled_out {
                continue;
            }
            assert!(
                (lifetime.routable_s - lifetime.provisioned_s - 2.0).abs() < 1e-12,
                "warm-up window wrong for replica {}",
                lifetime.replica
            );
            // No request was routed to the replica before it became
            // routable.
            let report_r = &report.fleet.per_replica[lifetime.replica].report;
            assert!(report_r
                .timelines
                .iter()
                .all(|t| t.arrival_s >= lifetime.routable_s - 1e-12));
        }
    }

    #[test]
    fn scale_ins_respect_the_cooldown() {
        let policy = AutoscalerPolicy::new(1, 6)
            .with_evaluation_interval(0.2)
            .with_scale_out_queue_depth(1.0)
            .with_scale_in_outstanding(2.0)
            .with_cooldown(1.5);
        let report = AutoscaleEngine::new(
            one_stage_spec(0.03, 2),
            RouterPolicy::LeastOutstanding,
            policy,
        )
        .run_trace(&spike_trace(220));
        let mut last_action = f64::NEG_INFINITY;
        for e in &report.events {
            if e.action == ScalingAction::ScaleIn {
                assert!(
                    e.time_s - last_action >= 1.5 - 1e-12,
                    "scale-in at {} only {} after the previous action",
                    e.time_s,
                    e.time_s - last_action
                );
            }
            last_action = e.time_s;
        }
    }

    #[test]
    fn attainment_trigger_scales_out_without_queueing() {
        // A queue-free SLO violation: the 25 ms decode step blows the 20 ms
        // TPOT target on every request, but the 64-slot decode batch
        // swallows 10 rps of 16-token requests without any queueing — the
        // queue-depth trigger is blind to it, the attainment trigger is not
        // (scaling out cannot fix the step latency, so the reactive policy
        // walks to its maximum — which is exactly the observable signal).
        let spec = PipelineSpec::new(
            Vec::new(),
            DecodeSpec::new(64, LatencyTable::constant(64, 0.025)),
        );
        let trace = TraceSpec {
            num_requests: 150,
            profile: SequenceProfile::paper_default().with_decode_tokens(16),
            arrival: ArrivalProcess::Poisson { rate_rps: 10.0 },
            length_jitter: 0.0,
            seed: 11,
        }
        .generate();
        let queue_only = AutoscalerPolicy::new(1, 4)
            .with_evaluation_interval(0.5)
            .with_scale_out_queue_depth(5.0);
        let with_attainment = queue_only.with_attainment_trigger(SloTarget::new(2.0, 0.02), 0.9);
        let quiet = AutoscaleEngine::new(spec.clone(), RouterPolicy::LeastOutstanding, queue_only)
            .run_trace(&trace);
        let reactive = AutoscaleEngine::new(spec, RouterPolicy::LeastOutstanding, with_attainment)
            .run_trace(&trace);
        assert!(reactive.peak_provisioned > quiet.peak_provisioned);
    }

    #[test]
    fn autoscaled_runs_are_deterministic() {
        let policy = AutoscalerPolicy::new(1, 5)
            .with_evaluation_interval(0.3)
            .with_scale_out_queue_depth(1.0);
        let run = || {
            AutoscaleEngine::new(
                one_stage_spec(0.04, 2),
                RouterPolicy::DecodeFillAware,
                policy,
            )
            .run_trace(&spike_trace(180))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_request_sets_produce_an_empty_report() {
        let policy = AutoscalerPolicy::new(2, 4);
        let report =
            AutoscaleEngine::new(one_stage_spec(0.05, 1), RouterPolicy::RoundRobin, policy)
                .run(Vec::new());
        assert_eq!(report.fleet.merged.metrics.requests, 0);
        assert!(report.events.is_empty());
        assert_eq!(report.lifetimes.len(), 2);
        assert_eq!(report.replica_seconds, 0.0);
    }

    #[test]
    #[should_panic(expected = "min_replicas must be at least 1")]
    fn zero_minimum_fleets_are_rejected() {
        let _ = AutoscaleEngine::new(
            one_stage_spec(0.05, 1),
            RouterPolicy::RoundRobin,
            AutoscalerPolicy::new(0, 2),
        );
    }

    #[test]
    #[should_panic(expected = "at least min_replicas")]
    fn inverted_bounds_are_rejected() {
        let _ = AutoscaleEngine::new(
            one_stage_spec(0.05, 1),
            RouterPolicy::RoundRobin,
            AutoscalerPolicy::new(4, 2),
        );
    }
}
