//! Simulation of decoding with iterative mid-generation retrievals (§5.3).
//!
//! A batch of sequences decodes token by token. Each sequence triggers a
//! number of retrievals at random token positions; when it hits one, the
//! sequence pauses and its retrieval request joins a queue. The queue is
//! dispatched as a batch of `iterative_batch` requests (or earlier, when no
//! sequence can make progress otherwise), and after the retrieval + prefix
//! latency elapses the paused sequences resume decoding. The simulation
//! reports the achieved time-per-output-token and the slowdown relative to
//! uninterrupted decoding — the quantities plotted in Figures 9 and 10 of the
//! paper.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Parameters of one iterative-decode simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterativeDecodeParams {
    /// Number of sequences decoding concurrently (the decode batch size).
    pub decode_batch: u32,
    /// Number of retrieval requests batched together for the iterative
    /// retrieval + prefix pass.
    pub iterative_batch: u32,
    /// Tokens generated per sequence.
    pub decode_len: u32,
    /// Retrievals issued by each sequence during its generation (beyond the
    /// initial pre-decode retrieval). One retrieval per sequence means one
    /// mid-generation pause; zero means plain decoding.
    pub retrievals_per_sequence: u32,
    /// Latency of one decode step for the full batch, in seconds.
    pub step_latency_s: f64,
    /// Latency of one iterative retrieval + prefix pass (for a batch of
    /// `iterative_batch` requests), in seconds. Set to zero to isolate the
    /// batching-induced idleness as in Figure 10.
    pub retrieval_prefix_latency_s: f64,
    /// RNG seed controlling the retrieval trigger positions.
    pub seed: u64,
}

/// Result of an iterative-decode simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterativeDecodeResult {
    /// Wall-clock time until every sequence finished its generation.
    pub total_time_s: f64,
    /// Mean time-per-output-token across sequences.
    pub tpot_mean_s: f64,
    /// Worst-case (slowest-sequence) time-per-output-token.
    pub tpot_worst_s: f64,
    /// Completion time divided by the no-retrieval decode time
    /// (`decode_len * step_latency_s`) — the normalized decoding latency of
    /// Figure 10.
    pub normalized_decode_latency: f64,
    /// Number of retrieval + prefix batches dispatched.
    pub retrieval_batches: u32,
    /// Mean number of requests in each dispatched retrieval batch.
    pub mean_retrieval_batch_fill: f64,
    /// Fraction of sequence-steps lost to waiting (paused while the decoder
    /// was stepping other sequences or idle).
    pub idle_fraction: f64,
}

#[derive(Debug, Clone)]
struct Sequence {
    /// Token positions (1-based) at which this sequence issues a retrieval.
    retrieval_positions: Vec<u32>,
    /// Tokens generated so far.
    generated: u32,
    /// Index of the next retrieval position to trigger.
    next_retrieval: usize,
    /// Whether the sequence is waiting for a retrieval to complete.
    paused: bool,
    /// Wall-clock time at which the sequence finished (if it has).
    finish_time: Option<f64>,
    /// Steps this sequence spent neither decoding nor finished.
    waited_steps: f64,
}

/// The iterative-decode simulator. See the module documentation.
#[derive(Debug, Clone)]
pub struct IterativeDecodeSim {
    params: IterativeDecodeParams,
}

impl IterativeDecodeSim {
    /// Creates a simulator for the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if the decode batch, decode length, or step latency is zero, or
    /// if the iterative batch is zero while retrievals are requested.
    pub fn new(params: IterativeDecodeParams) -> Self {
        assert!(params.decode_batch > 0, "decode_batch must be at least 1");
        assert!(params.decode_len > 0, "decode_len must be at least 1");
        assert!(
            params.step_latency_s > 0.0,
            "step_latency_s must be positive"
        );
        assert!(
            params.retrievals_per_sequence == 0 || params.iterative_batch > 0,
            "iterative_batch must be at least 1 when retrievals are issued"
        );
        Self { params }
    }

    /// Runs the simulation to completion and returns the aggregate metrics.
    ///
    /// # Examples
    ///
    /// ```
    /// use rago_serving_sim::iterative::{IterativeDecodeParams, IterativeDecodeSim};
    ///
    /// // Without mid-generation retrievals decoding is unobstructed.
    /// let result = IterativeDecodeSim::new(IterativeDecodeParams {
    ///     decode_batch: 8,
    ///     iterative_batch: 4,
    ///     decode_len: 32,
    ///     retrievals_per_sequence: 0,
    ///     step_latency_s: 1e-3,
    ///     retrieval_prefix_latency_s: 0.05,
    ///     seed: 0,
    /// })
    /// .run();
    /// assert!((result.normalized_decode_latency - 1.0).abs() < 1e-9);
    /// assert_eq!(result.retrieval_batches, 0);
    /// ```
    pub fn run(&self) -> IterativeDecodeResult {
        let p = self.params;
        let mut rng = StdRng::seed_from_u64(p.seed);
        let mut sequences: Vec<Sequence> = (0..p.decode_batch)
            .map(|_| Sequence {
                retrieval_positions: sample_positions(
                    &mut rng,
                    p.decode_len,
                    p.retrievals_per_sequence,
                ),
                generated: 0,
                next_retrieval: 0,
                paused: false,
                finish_time: None,
                waited_steps: 0.0,
            })
            .collect();

        let mut now = 0.0f64;
        let mut retrieval_queue: Vec<usize> = Vec::new();
        // (completion_time, sequence indices) of in-flight retrieval batches.
        let mut in_flight: Vec<(f64, Vec<usize>)> = Vec::new();
        let mut retrieval_batches = 0u32;
        let mut total_fill = 0u64;

        loop {
            // Resume sequences whose retrieval has completed by `now`.
            let mut resumed = Vec::new();
            in_flight.retain(|(done_at, seqs)| {
                if *done_at <= now + 1e-12 {
                    resumed.extend(seqs.iter().copied());
                    false
                } else {
                    true
                }
            });
            for idx in resumed {
                sequences[idx].paused = false;
            }

            let unfinished: Vec<usize> = sequences
                .iter()
                .enumerate()
                .filter(|(_, s)| s.finish_time.is_none())
                .map(|(i, _)| i)
                .collect();
            if unfinished.is_empty() {
                break;
            }
            let active: Vec<usize> = unfinished
                .iter()
                .copied()
                .filter(|&i| !sequences[i].paused)
                .collect();

            // Dispatch the retrieval queue when it is full, or when nothing
            // can make progress otherwise (avoids deadlock at the tail).
            let should_dispatch = !retrieval_queue.is_empty()
                && (retrieval_queue.len() >= p.iterative_batch as usize
                    || (active.is_empty() && in_flight.is_empty()));
            if should_dispatch {
                let batch: Vec<usize> = retrieval_queue
                    .drain(..retrieval_queue.len().min(p.iterative_batch as usize))
                    .collect();
                retrieval_batches += 1;
                total_fill += batch.len() as u64;
                in_flight.push((now + p.retrieval_prefix_latency_s, batch));
                continue;
            }

            if active.is_empty() {
                // Jump to the next retrieval completion.
                if let Some(next) = in_flight
                    .iter()
                    .map(|(t, _)| *t)
                    .min_by(|a, b| a.total_cmp(b))
                {
                    // Everything unfinished is waiting on retrievals.
                    let waiting = unfinished.len() as f64;
                    let skipped_steps = (next - now) / p.step_latency_s;
                    for &i in &unfinished {
                        sequences[i].waited_steps +=
                            skipped_steps / waiting.max(1.0) * waiting / unfinished.len() as f64;
                    }
                    now = next;
                    continue;
                }
                // No active sequences, nothing in flight, queue empty: done.
                break;
            }

            // Execute one decode step for the active sequences.
            now += p.step_latency_s;
            for &i in &unfinished {
                if sequences[i].paused {
                    sequences[i].waited_steps += 1.0;
                }
            }
            for &i in &active {
                let seq = &mut sequences[i];
                seq.generated += 1;
                // Trigger a retrieval when the sequence reaches its next
                // retrieval position (and has not finished).
                if seq.next_retrieval < seq.retrieval_positions.len()
                    && seq.generated == seq.retrieval_positions[seq.next_retrieval]
                    && seq.generated < p.decode_len
                {
                    seq.next_retrieval += 1;
                    seq.paused = true;
                    retrieval_queue.push(i);
                }
                if seq.generated >= p.decode_len {
                    seq.finish_time = Some(now);
                }
            }
        }

        let total_time = sequences
            .iter()
            .map(|s| s.finish_time.unwrap_or(now))
            .fold(0.0f64, f64::max);
        let tpots: Vec<f64> = sequences
            .iter()
            .map(|s| s.finish_time.unwrap_or(now) / f64::from(p.decode_len))
            .collect();
        let tpot_mean = tpots.iter().sum::<f64>() / tpots.len() as f64;
        let tpot_worst = tpots.iter().fold(0.0f64, |a, &b| a.max(b));
        let baseline = f64::from(p.decode_len) * p.step_latency_s;
        let total_possible_steps =
            f64::from(p.decode_batch) * (total_time / p.step_latency_s).max(1.0);
        let waited: f64 = sequences.iter().map(|s| s.waited_steps).sum();

        IterativeDecodeResult {
            total_time_s: total_time,
            tpot_mean_s: tpot_mean,
            tpot_worst_s: tpot_worst,
            normalized_decode_latency: total_time / baseline,
            retrieval_batches,
            mean_retrieval_batch_fill: if retrieval_batches == 0 {
                0.0
            } else {
                total_fill as f64 / f64::from(retrieval_batches)
            },
            idle_fraction: (waited / total_possible_steps).clamp(0.0, 1.0),
        }
    }
}

/// Samples `count` distinct retrieval positions uniformly from
/// `[1, decode_len - 1]`, sorted ascending (retrievals never trigger on the
/// final token — there is nothing left to generate).
///
/// Shared with the request-level engine ([`crate::engine`]) so both
/// simulators draw identical trigger positions from the same seed — the basis
/// of the degenerate-case equivalence between them.
pub(crate) fn sample_positions(rng: &mut StdRng, decode_len: u32, count: u32) -> Vec<u32> {
    if count == 0 || decode_len <= 1 {
        return Vec::new();
    }
    let mut candidates: Vec<u32> = (1..decode_len).collect();
    candidates.shuffle(rng);
    let take = (count as usize).min(candidates.len());
    let mut positions = candidates[..take].to_vec();
    positions.sort_unstable();
    positions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_params() -> IterativeDecodeParams {
        IterativeDecodeParams {
            decode_batch: 64,
            iterative_batch: 16,
            decode_len: 256,
            retrievals_per_sequence: 4,
            step_latency_s: 5e-3,
            retrieval_prefix_latency_s: 0.05,
            seed: 42,
        }
    }

    #[test]
    fn no_retrievals_means_no_slowdown() {
        let params = IterativeDecodeParams {
            retrievals_per_sequence: 0,
            ..base_params()
        };
        let r = IterativeDecodeSim::new(params).run();
        assert!((r.normalized_decode_latency - 1.0).abs() < 1e-9);
        assert_eq!(r.retrieval_batches, 0);
        assert!((r.total_time_s - 256.0 * 5e-3).abs() < 1e-9);
        assert!(r.idle_fraction < 1e-9);
    }

    #[test]
    fn zero_latency_retrievals_still_cost_time_through_batching() {
        // Figure 10: even with instantaneous retrieval + prefix, waiting for
        // the iterative batch to fill slows decoding down.
        let params = IterativeDecodeParams {
            retrieval_prefix_latency_s: 0.0,
            iterative_batch: 64,
            ..base_params()
        };
        let r = IterativeDecodeSim::new(params).run();
        assert!(
            r.normalized_decode_latency > 1.5,
            "expected substantial idleness, got {}",
            r.normalized_decode_latency
        );
        // With a tiny iterative batch the slowdown (idleness only) vanishes.
        let fast = IterativeDecodeSim::new(IterativeDecodeParams {
            retrieval_prefix_latency_s: 0.0,
            iterative_batch: 1,
            ..base_params()
        })
        .run();
        assert!(fast.normalized_decode_latency < 1.05);
        assert!(fast.normalized_decode_latency < r.normalized_decode_latency);
    }

    #[test]
    fn tpot_grows_with_retrieval_frequency() {
        let mut last = 0.0;
        for freq in [1u32, 2, 4, 8] {
            let r = IterativeDecodeSim::new(IterativeDecodeParams {
                retrievals_per_sequence: freq,
                iterative_batch: 16,
                ..base_params()
            })
            .run();
            assert!(
                r.tpot_worst_s >= last,
                "TPOT not monotone in retrieval frequency at {freq}"
            );
            last = r.tpot_worst_s;
        }
    }

    #[test]
    fn every_sequence_finishes_and_every_retrieval_is_served() {
        let params = base_params();
        let r = IterativeDecodeSim::new(params).run();
        // 64 sequences x 4 retrievals = 256 requests; with a batch of 16 that
        // is at least 16 dispatches (more if partially filled at the tail).
        assert!(r.retrieval_batches >= 16);
        assert!(r.mean_retrieval_batch_fill <= 16.0);
        assert!(r.mean_retrieval_batch_fill > 0.0);
        assert!(r.total_time_s >= 256.0 * 5e-3);
        assert!(r.tpot_worst_s >= r.tpot_mean_s);
    }

    #[test]
    fn matching_decode_and_iterative_batch_is_pathological() {
        // Figure 10b's diagonal: when the iterative batch equals the decode
        // batch, almost every sequence must pause before any retrieval is
        // dispatched, inflating latency well beyond a small-batch policy.
        let equal = IterativeDecodeSim::new(IterativeDecodeParams {
            iterative_batch: 64,
            retrieval_prefix_latency_s: 0.0,
            ..base_params()
        })
        .run();
        let small = IterativeDecodeSim::new(IterativeDecodeParams {
            iterative_batch: 4,
            retrieval_prefix_latency_s: 0.0,
            ..base_params()
        })
        .run();
        assert!(equal.normalized_decode_latency > small.normalized_decode_latency * 1.3);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = IterativeDecodeSim::new(base_params()).run();
        let b = IterativeDecodeSim::new(base_params()).run();
        assert_eq!(a, b);
        let c = IterativeDecodeSim::new(IterativeDecodeParams {
            seed: 43,
            ..base_params()
        })
        .run();
        assert!((a.total_time_s - c.total_time_s).abs() > 0.0 || a == c);
    }

    #[test]
    fn retrieval_latency_adds_to_tpot_at_large_batches() {
        let slow = IterativeDecodeSim::new(IterativeDecodeParams {
            retrieval_prefix_latency_s: 0.2,
            ..base_params()
        })
        .run();
        let fast = IterativeDecodeSim::new(IterativeDecodeParams {
            retrieval_prefix_latency_s: 0.01,
            ..base_params()
        })
        .run();
        assert!(slow.tpot_worst_s > fast.tpot_worst_s);
    }

    #[test]
    fn sample_positions_are_sorted_unique_and_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let pos = sample_positions(&mut rng, 256, 8);
        assert_eq!(pos.len(), 8);
        for w in pos.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!(pos.iter().all(|&p| (1..256).contains(&p)));
        assert!(sample_positions(&mut rng, 1, 5).is_empty());
        assert!(sample_positions(&mut rng, 256, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "decode_batch")]
    fn zero_batch_panics() {
        let _ = IterativeDecodeSim::new(IterativeDecodeParams {
            decode_batch: 0,
            ..base_params()
        });
    }
}
