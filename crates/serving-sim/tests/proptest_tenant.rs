//! Property-based tests for the multi-tenant (class-tagged) surface.
//!
//! Two invariants, each under *every* router policy:
//!
//! 1. **Per-class conservation** — the per-class metric rows partition the
//!    fleet run: class counts sum to the fleet total at every level
//!    (merged and per replica), and class attainments recombine to the
//!    overall attainment.
//! 2. **One-class degeneracy** — a one-class mix trace drives the fleet
//!    bit-identically to the untagged trace with the same parameters, and
//!    the single per-class row *is* the aggregate metrics.

use proptest::prelude::*;
use rago_schema::{RouterPolicy, SequenceProfile, SloTarget};
use rago_serving_sim::cluster::ClusterEngine;
use rago_serving_sim::engine::{DecodeSpec, LatencyTable, PipelineSpec, StageSpec};
use rago_workloads::{ArrivalProcess, MixTraceSpec, RequestClass, TraceSpec, WorkloadMix};

fn pipeline(stage_batch: u32, stage_latency: f64, decode_batch: u32) -> PipelineSpec {
    PipelineSpec::new(
        vec![StageSpec::new(
            "prefix",
            0,
            stage_batch,
            LatencyTable::from_fn(stage_batch, |b| stage_latency * (1.0 + 0.1 * f64::from(b))),
        )],
        DecodeSpec::new(
            decode_batch,
            LatencyTable::from_fn(decode_batch, |b| 2e-3 * (1.0 + 0.05 * f64::from(b))),
        ),
    )
}

fn mix(classes: usize) -> WorkloadMix {
    WorkloadMix::new(
        (0..classes)
            .map(|i| {
                RequestClass::new(
                    format!("tenant-{i}"),
                    1.0 + i as f64,
                    SequenceProfile::paper_default().with_decode_tokens(16 + 16 * i as u32),
                    0.1,
                    SloTarget::new(1.0 + i as f64, 0.05 * (1.0 + i as f64)),
                )
            })
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Per-class rows partition the fleet report under every router policy:
    /// counts sum to the total at the merged and per-replica level, and the
    /// request-weighted class attainments equal the overall attainment.
    #[test]
    fn per_class_counts_sum_to_fleet_counts(
        policy_idx in 0usize..4,
        replicas in 1usize..4,
        classes in 1usize..4,
        n in 1usize..80,
        rate in 5.0f64..120.0,
        stage_batch in 1u32..6,
        decode_batch in 2u32..16,
        seed in 0u64..500,
    ) {
        let policy = RouterPolicy::ALL[policy_idx];
        let trace = MixTraceSpec {
            num_requests: n,
            mix: mix(classes),
            arrival: ArrivalProcess::Poisson { rate_rps: rate },
            seed,
        }
        .generate();
        let fleet = ClusterEngine::homogeneous(
            pipeline(stage_batch, 0.02, decode_batch),
            replicas,
            policy,
        )
        .run_trace(&trace);

        // Merged rows partition the merged run.
        let merged_total: usize = fleet
            .merged
            .per_class
            .iter()
            .map(|c| c.metrics.requests)
            .sum();
        prop_assert_eq!(merged_total, n);
        for row in &fleet.merged.per_class {
            let count = fleet
                .merged
                .timelines
                .iter()
                .filter(|t| t.class == row.class)
                .count();
            prop_assert_eq!(row.metrics.requests, count);
        }

        // Per-replica class rows sum to the merged class rows.
        for row in &fleet.merged.per_class {
            let across_replicas: usize = fleet
                .per_replica
                .iter()
                .flat_map(|r| r.report.per_class.iter())
                .filter(|c| c.class == row.class)
                .map(|c| c.metrics.requests)
                .sum();
            prop_assert_eq!(across_replicas, row.metrics.requests);
        }

        // Class attainments recombine into the fleet attainment.
        let slo = SloTarget::new(0.5, 0.02);
        let weighted: f64 = fleet
            .merged
            .per_class
            .iter()
            .map(|c| {
                fleet.merged.class_attainment(c.class, &slo) * c.metrics.requests as f64
            })
            .sum::<f64>()
            / n as f64;
        prop_assert!((weighted - fleet.merged.attainment(&slo)).abs() < 1e-12);
    }

    /// A one-class mix is indistinguishable from the untagged path: the
    /// generated trace is bit-identical, the fleet run is bit-identical,
    /// and the single per-class row equals the aggregate metrics — under
    /// every router policy.
    #[test]
    fn one_class_mix_runs_bit_exactly_like_untagged(
        policy_idx in 0usize..4,
        replicas in 1usize..4,
        n in 1usize..60,
        rate in 5.0f64..100.0,
        jitter in 0.0f64..0.4,
        decode in 8u32..64,
        seed in 0u64..500,
    ) {
        let policy = RouterPolicy::ALL[policy_idx];
        let profile = SequenceProfile::paper_default().with_decode_tokens(decode);
        let tagged = MixTraceSpec {
            num_requests: n,
            mix: WorkloadMix::single("only", profile, jitter, SloTarget::paper_default()),
            arrival: ArrivalProcess::Poisson { rate_rps: rate },
            seed,
        }
        .generate();
        let untagged = TraceSpec {
            num_requests: n,
            profile,
            arrival: ArrivalProcess::Poisson { rate_rps: rate },
            length_jitter: jitter,
            seed,
        }
        .generate();
        prop_assert_eq!(&tagged, &untagged);

        let engine = ClusterEngine::homogeneous(pipeline(4, 0.02, 8), replicas, policy);
        let from_tagged = engine.run_trace(&tagged);
        let from_untagged = engine.run_trace(&untagged);
        prop_assert_eq!(&from_tagged, &from_untagged);
        prop_assert_eq!(from_tagged.merged.per_class.len(), 1);
        prop_assert_eq!(
            &from_tagged.merged.per_class[0].metrics,
            &from_tagged.merged.metrics
        );
    }
}
