//! Property-based invariants of the reactive autoscaler.
//!
//! For any policy within sane bounds and any Poisson/spike trace:
//!
//! * the provisioned replica count stays within `[min, max]` at every
//!   instant (checked through the event log and the peak/min summaries);
//! * no scale-in happens within the cooldown of the previous scaling
//!   action;
//! * a run whose triggers can never fire (infinite queue threshold, zero
//!   scale-in threshold) keeps exactly `min_replicas` and records no
//!   events;
//! * request conservation: every request completes exactly once, and the
//!   per-replica assignment counts match the report.
//!
//! The `#[ignore]`d variant at the bottom runs the same invariants at 10×
//! the case count — the slow tier CI exercises with
//! `cargo test -q -- --ignored`.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use rago_schema::RouterPolicy;
use rago_schema::SequenceProfile;
use rago_serving_sim::autoscaler::{AutoscaleEngine, AutoscalerPolicy, ScalingAction};
use rago_serving_sim::engine::{DecodeSpec, LatencyTable, PipelineSpec, StageSpec};
use rago_workloads::{ArrivalProcess, TraceSpec};

fn pipeline(stage_latency: f64, stage_batch: u32) -> PipelineSpec {
    PipelineSpec::new(
        vec![StageSpec::new(
            "prefix",
            0,
            stage_batch,
            LatencyTable::constant(stage_batch, stage_latency),
        )],
        DecodeSpec::new(8, LatencyTable::constant(8, 2e-3)),
    )
}

#[allow(clippy::too_many_arguments)]
fn check_invariants(
    policy_idx: usize,
    min: u32,
    extra: u32,
    n: usize,
    rate: f64,
    stage_latency: f64,
    interval: f64,
    cooldown: f64,
    warmup: f64,
    out_depth: f64,
    in_outstanding: f64,
    seed: u64,
) -> Result<(), TestCaseError> {
    let max = min + extra;
    let router = RouterPolicy::ALL[policy_idx % RouterPolicy::ALL.len()];
    let policy = AutoscalerPolicy::new(min, max)
        .with_evaluation_interval(interval)
        .with_scale_out_queue_depth(out_depth)
        .with_scale_in_outstanding(in_outstanding)
        .with_cooldown(cooldown)
        .with_warmup(warmup);
    let trace = TraceSpec {
        num_requests: n,
        profile: SequenceProfile::paper_default().with_decode_tokens(16),
        arrival: ArrivalProcess::Poisson { rate_rps: rate },
        length_jitter: 0.1,
        seed,
    }
    .generate();
    let report = AutoscaleEngine::new(pipeline(stage_latency, 2), router, policy).run_trace(&trace);

    // Conservation: every request completes exactly once.
    prop_assert_eq!(report.fleet.merged.metrics.completed, n);
    prop_assert_eq!(report.fleet.assignments.len(), n);
    let per_replica_total: usize = report
        .fleet
        .per_replica
        .iter()
        .map(|r| r.report.timelines.len())
        .sum();
    prop_assert_eq!(per_replica_total, n);
    for (lifetime, replica) in report.lifetimes.iter().zip(report.fleet.per_replica.iter()) {
        prop_assert_eq!(lifetime.assigned, replica.assigned);
        prop_assert_eq!(replica.assigned, replica.report.timelines.len());
    }

    // Bounds: provisioned count within [min, max] at every event, and the
    // summaries agree.
    prop_assert!(report.peak_provisioned <= max);
    prop_assert!(report.min_provisioned >= min.min(report.peak_provisioned));
    prop_assert!(report.min_provisioned >= 1);
    for e in &report.events {
        prop_assert!(e.provisioned_after >= 1);
        prop_assert!(e.provisioned_after <= max);
        prop_assert!(e.routable_after <= e.provisioned_after);
    }

    // Cooldown: a scale-in never lands within `cooldown` of the previous
    // scaling action (either direction).
    let mut last_action = f64::NEG_INFINITY;
    for e in &report.events {
        if e.action == ScalingAction::ScaleIn {
            prop_assert!(
                e.time_s - last_action >= cooldown - 1e-9,
                "scale-in at {} within cooldown {} of previous action at {}",
                e.time_s,
                cooldown,
                last_action
            );
        }
        last_action = e.time_s;
    }

    // Warm-up: no replica received a request before becoming routable.
    for lifetime in &report.lifetimes {
        let report_r = &report.fleet.per_replica[lifetime.replica].report;
        prop_assert!(report_r
            .timelines
            .iter()
            .all(|t| t.arrival_s >= lifetime.routable_s - 1e-9));
        prop_assert!(lifetime.retired_s >= lifetime.provisioned_s);
    }

    // Cost: the integral is bounded by [min, peak] × makespan.
    let makespan = report.fleet.merged.metrics.makespan_s;
    prop_assert!(report.replica_seconds <= f64::from(report.peak_provisioned) * makespan + 1e-9);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The core invariants, over random policies, routers, and traces.
    #[test]
    fn autoscaler_invariants_hold(
        policy_idx in 0usize..4,
        min in 1u32..3,
        extra in 0u32..4,
        n in 1usize..120,
        rate in 2.0f64..120.0,
        stage_latency in 0.005f64..0.08,
        interval in 0.1f64..1.0,
        cooldown in 0.0f64..3.0,
        warmup in 0.0f64..1.5,
        out_depth in 0.5f64..6.0,
        in_outstanding in 0.0f64..3.0,
        seed in 0u64..500,
    ) {
        check_invariants(
            policy_idx, min, extra, n, rate, stage_latency, interval, cooldown,
            warmup, out_depth, in_outstanding, seed,
        )?;
    }

    /// A policy whose triggers can never fire keeps the fleet at exactly
    /// `min_replicas` for the whole run.
    #[test]
    fn zero_trigger_traces_never_scale(
        policy_idx in 0usize..4,
        min in 1u32..4,
        extra in 0u32..4,
        n in 1usize..100,
        rate in 2.0f64..150.0,
        seed in 0u64..500,
    ) {
        let router = RouterPolicy::ALL[policy_idx];
        let policy = AutoscalerPolicy::new(min, min + extra)
            .with_evaluation_interval(0.25)
            .with_scale_out_queue_depth(1e12)
            .with_scale_in_outstanding(0.0);
        let trace = TraceSpec {
            num_requests: n,
            profile: SequenceProfile::paper_default().with_decode_tokens(16),
            arrival: ArrivalProcess::Poisson { rate_rps: rate },
            length_jitter: 0.2,
            seed,
        }
        .generate();
        let report =
            AutoscaleEngine::new(pipeline(0.03, 2), router, policy).run_trace(&trace);
        prop_assert!(report.events.is_empty());
        prop_assert_eq!(report.peak_provisioned, min);
        prop_assert_eq!(report.min_provisioned, min);
        prop_assert_eq!(report.fleet.per_replica.len(), min as usize);
        prop_assert_eq!(report.fleet.merged.metrics.completed, n);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// The slow tier: the same invariants at 10× the cases. Run with
    /// `cargo test -q -- --ignored`.
    #[test]
    #[ignore = "slow proptest tier (run with --ignored)"]
    fn autoscaler_invariants_hold_slow(
        policy_idx in 0usize..4,
        min in 1u32..3,
        extra in 0u32..5,
        n in 1usize..250,
        rate in 2.0f64..200.0,
        stage_latency in 0.002f64..0.1,
        interval in 0.05f64..1.5,
        cooldown in 0.0f64..4.0,
        warmup in 0.0f64..2.0,
        out_depth in 0.2f64..8.0,
        in_outstanding in 0.0f64..4.0,
        seed in 0u64..5_000,
    ) {
        check_invariants(
            policy_idx, min, extra, n, rate, stage_latency, interval, cooldown,
            warmup, out_depth, in_outstanding, seed,
        )?;
    }
}
