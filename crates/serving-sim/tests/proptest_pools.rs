//! Property-based tests for the disaggregated prefill/decode pools.
//!
//! Two invariants hold for *every* pool router combination, pool size, and
//! crash timing:
//!
//! 1. **Handoff conservation** — the prefill→decode transfer lane neither
//!    loses, duplicates, nor mutates requests: the stitched timelines are
//!    exactly the input multiset (ids, classes, token counts intact), even
//!    while crashes re-queue in-flight work onto pool survivors.
//! 2. **Degeneracy** — a 1+1 split at zero transfer cost reproduces the
//!    monolithic engine: discrete fields bit-exactly, time fields to the
//!    engine's `TIME_EPS` event-grouping tolerance (the monolithic engine
//!    coalesces same-instant events into one group and stamps the group-max
//!    time; the split sees the same instants through two event queues, so
//!    its stamps can differ by up to that grouping epsilon but never more).

use proptest::prelude::*;
use rago_schema::{KvTransferModel, PoolRole, RouterPolicy};
use rago_serving_sim::engine::{
    DecodeSpec, EngineRequest, LatencyTable, PipelineSpec, ServingEngine, StageSpec,
};
use rago_serving_sim::pools::{DisaggEngine, PoolCrash};

/// Per-field tolerance for time stamps that cross the engines'
/// `TIME_EPS = 1e-12` event-grouping boundary.
const TIME_TOL: f64 = 1e-12;

/// The full (monolithic) pipeline the split halves are cut from.
fn full_pipeline(
    stages: usize,
    stage_batch: u32,
    stage_latency: f64,
    decode_batch: u32,
    step_latency: f64,
) -> PipelineSpec {
    let specs = (0..stages)
        .map(|s| {
            StageSpec::new(
                format!("s{s}"),
                s,
                stage_batch,
                LatencyTable::from_fn(stage_batch, |b| stage_latency * (1.0 + 0.1 * f64::from(b))),
            )
        })
        .collect();
    PipelineSpec::new(
        specs,
        DecodeSpec::new(
            decode_batch,
            LatencyTable::from_fn(decode_batch, |b| step_latency * (1.0 + 0.02 * f64::from(b))),
        ),
    )
}

/// Cuts a full pipeline into its (prefill, decode-only) halves.
fn split_specs(full: &PipelineSpec) -> (PipelineSpec, PipelineSpec) {
    let decode = PipelineSpec::decode_only(full.decode.clone(), None);
    (full.clone().with_handoff(), decode)
}

fn requests(n: usize, gap: f64) -> Vec<EngineRequest> {
    (0..n)
        .map(|i| EngineRequest {
            id: i as u64,
            arrival_s: gap * i as f64,
            prefix_tokens: 32 + (i as u32 * 13) % 400,
            decode_tokens: 1 + (i as u32 * 7) % 23,
            class: (i as u32) % 3,
            identity: None,
        })
        .collect()
}

fn policy(index: usize) -> RouterPolicy {
    RouterPolicy::ALL[index % RouterPolicy::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The transfer lane conserves the request multiset for every router
    /// pair and pool shape: every id appears exactly once in the stitched
    /// timelines with its class and token counts untouched, both pools'
    /// assignment ledgers cover every request, and transfer statistics
    /// agree with the request count.
    #[test]
    fn handoff_conserves_the_request_multiset(
        prefill_policy in 0usize..4,
        decode_policy in 0usize..4,
        prefill_replicas in 1usize..4,
        decode_replicas in 1usize..4,
        n in 1usize..50,
        gap in 0.0f64..0.03,
        stages in 1usize..3,
        stage_batch in 1u32..8,
        decode_batch in 1u32..16,
        kv_bytes in 0.0f64..2e5,
        base_latency in 0.0f64..1e-3,
    ) {
        let full = full_pipeline(stages, stage_batch, 0.01, decode_batch, 1e-3);
        let (prefill_spec, decode_spec) = split_specs(&full);
        let transfer = KvTransferModel::new(kv_bytes, 25e9, base_latency);
        let reqs = requests(n, gap);
        let report = DisaggEngine::new(
            prefill_spec,
            prefill_replicas,
            policy(prefill_policy),
            decode_spec,
            decode_replicas,
            policy(decode_policy),
            transfer,
        )
        .run(reqs.clone());

        // Stitched timelines == input multiset, data untouched.
        prop_assert_eq!(report.merged.timelines.len(), n);
        for (t, r) in report.merged.timelines.iter().zip(reqs.iter()) {
            prop_assert_eq!(t.id, r.id);
            prop_assert!((t.arrival_s - r.arrival_s).abs() < 1e-15);
            prop_assert_eq!(t.class, r.class);
            prop_assert_eq!(t.decode_tokens, r.decode_tokens);
            prop_assert!(t.completion_s >= t.first_token_s);
            prop_assert!(t.first_token_s >= t.arrival_s);
        }

        // Both pools dispatched every request exactly once (no crashes, so
        // no re-queues), and the per-slot counts agree with the ledgers.
        let mut prefill_ids: Vec<u64> =
            report.prefill.assignments.iter().map(|&(id, _)| id).collect();
        prefill_ids.sort_unstable();
        let mut decode_ids: Vec<u64> =
            report.decode.assignments.iter().map(|&(id, _)| id).collect();
        decode_ids.sort_unstable();
        let mut expected: Vec<u64> = reqs.iter().map(|r| r.id).collect();
        expected.sort_unstable();
        prop_assert_eq!(&prefill_ids, &expected, "prefill dispatch lost or duplicated ids");
        prop_assert_eq!(&decode_ids, &expected, "decode dispatch lost or duplicated ids");
        for pool in [&report.prefill, &report.decode] {
            for rep in &pool.per_replica {
                let here = pool
                    .assignments
                    .iter()
                    .filter(|&&(_, slot)| slot == rep.replica)
                    .count();
                prop_assert_eq!(here, rep.assigned);
            }
        }

        // One priced transfer per request.
        prop_assert_eq!(report.transfers.transfers, n as u64);
        prop_assert_eq!(report.transfers.requeued_prefill, 0);
        prop_assert_eq!(report.transfers.requeued_decode, 0);
        let expected_bytes: f64 = reqs.iter().map(|r| transfer.bytes_for(r.prefix_tokens)).sum();
        prop_assert!((report.transfers.bytes_total - expected_bytes).abs() < 1e-6);
    }

    /// Conservation survives a crash in either pool at any instant: the
    /// victim's in-flight work re-queues onto same-pool survivors and every
    /// request still completes exactly once.
    #[test]
    fn crashes_requeue_without_losing_requests(
        prefill_policy in 0usize..4,
        decode_policy in 0usize..4,
        crash_decode_pool in any::<bool>(),
        victim in 0usize..2,
        crash_at in 0.0f64..0.6,
        permanent in any::<bool>(),
        restart_delay in 0.01f64..0.3,
        n in 1usize..50,
        gap in 0.0f64..0.02,
        decode_batch in 1u32..16,
    ) {
        // Two replicas in the crashed pool so a permanent loss always
        // leaves a survivor to absorb the re-queued work.
        let full = full_pipeline(1, 4, 0.012, decode_batch, 2e-3);
        let (prefill_spec, decode_spec) = split_specs(&full);
        let reqs = requests(n, gap);
        let crash = PoolCrash {
            pool: if crash_decode_pool { PoolRole::Decode } else { PoolRole::Prefill },
            replica: victim,
            at_s: crash_at,
            restart_delay_s: (!permanent).then_some(restart_delay),
        };
        let report = DisaggEngine::new(
            prefill_spec,
            2,
            policy(prefill_policy),
            decode_spec,
            2,
            policy(decode_policy),
            KvTransferModel::new(1e4, 25e9, 20e-6),
        )
        .with_faults(vec![crash])
        .run(reqs.clone());

        prop_assert_eq!(report.merged.timelines.len(), n);
        let mut seen: Vec<u64> = report.merged.timelines.iter().map(|t| t.id).collect();
        seen.sort_unstable();
        let mut expected: Vec<u64> = reqs.iter().map(|r| r.id).collect();
        expected.sort_unstable();
        prop_assert_eq!(&seen, &expected, "crash re-queue lost or duplicated ids");
        for (t, r) in report.merged.timelines.iter().zip(reqs.iter()) {
            prop_assert_eq!(t.decode_tokens, r.decode_tokens);
            prop_assert_eq!(t.class, r.class);
        }
        // A decode-pool victim's work re-crosses the transfer lane, so the
        // transfer count can exceed n but never undershoot it.
        prop_assert!(report.transfers.transfers >= n as u64);
    }

    /// A 1+1 split at zero transfer cost is the monolithic engine:
    /// discrete fields exactly, time fields to the grouping epsilon.
    #[test]
    fn zero_cost_one_plus_one_is_the_monolithic_engine(
        prefill_policy in 0usize..4,
        decode_policy in 0usize..4,
        n in 1usize..50,
        gap in 0.0f64..0.03,
        stages in 1usize..3,
        stage_batch in 1u32..8,
        decode_batch in 1u32..16,
        step_latency in 1e-4f64..0.01,
    ) {
        let full = full_pipeline(stages, stage_batch, 0.015, decode_batch, step_latency);
        let (prefill_spec, decode_spec) = split_specs(&full);
        let reqs = requests(n, gap);
        let mono = ServingEngine::new(full, reqs.clone()).run();
        let split = DisaggEngine::new(
            prefill_spec,
            1,
            policy(prefill_policy),
            decode_spec,
            1,
            policy(decode_policy),
            KvTransferModel::zero(),
        )
        .run(reqs);

        prop_assert_eq!(split.merged.timelines.len(), mono.timelines.len());
        for (s, m) in split.merged.timelines.iter().zip(mono.timelines.iter()) {
            prop_assert_eq!(s.id, m.id);
            prop_assert_eq!(s.class, m.class);
            prop_assert_eq!(s.decode_tokens, m.decode_tokens);
            prop_assert_eq!(s.stage_starts_s.len(), m.stage_starts_s.len());
            prop_assert!((s.arrival_s - m.arrival_s).abs() <= TIME_TOL);
            prop_assert!((s.first_token_s - m.first_token_s).abs() <= TIME_TOL,
                "id {}: first token {} vs {}", s.id, s.first_token_s, m.first_token_s);
            prop_assert!((s.decode_join_s - m.decode_join_s).abs() <= TIME_TOL,
                "id {}: decode join {} vs {}", s.id, s.decode_join_s, m.decode_join_s);
            prop_assert!((s.completion_s - m.completion_s).abs() <= TIME_TOL,
                "id {}: completion {} vs {}", s.id, s.completion_s, m.completion_s);
            prop_assert!((s.queueing_s - m.queueing_s).abs() <= TIME_TOL);
            for (a, b) in s.stage_starts_s.iter().zip(m.stage_starts_s.iter()) {
                prop_assert!((a - b).abs() <= TIME_TOL);
            }
            for (a, b) in s.stage_ends_s.iter().zip(m.stage_ends_s.iter()) {
                prop_assert!((a - b).abs() <= TIME_TOL);
            }
        }
        prop_assert_eq!(split.merged.metrics.completed, mono.metrics.completed);
        // One extra arrival event per request: the transfer completion.
        prop_assert_eq!(
            split.merged.metrics.events_processed,
            mono.metrics.events_processed + split.merged.timelines.len() as u64
        );
    }

    /// Disaggregated runs are deterministic for every router pair and
    /// pool shape.
    #[test]
    fn disagg_runs_are_deterministic(
        prefill_policy in 0usize..4,
        decode_policy in 0usize..4,
        prefill_replicas in 1usize..3,
        decode_replicas in 1usize..3,
        n in 1usize..40,
        gap in 0.0f64..0.02,
    ) {
        let run = || {
            let full = full_pipeline(1, 4, 0.01, 8, 1e-3);
            let (prefill_spec, decode_spec) = split_specs(&full);
            DisaggEngine::new(
                prefill_spec,
                prefill_replicas,
                policy(prefill_policy),
                decode_spec,
                decode_replicas,
                policy(decode_policy),
                KvTransferModel::new(1e4, 25e9, 5e-6),
            )
            .run(requests(n, gap))
        };
        prop_assert_eq!(run(), run());
    }
}
