//! Property-based tests for the fleet-level cluster simulation.
//!
//! Two invariants hold for *every* router policy:
//!
//! 1. **Conservation** — the union of per-replica timelines is exactly the
//!    input request set: no request is lost, duplicated, or mutated by
//!    routing.
//! 2. **Degeneracy** — a one-replica fleet reproduces
//!    [`ServingEngine::run`] exactly (bit-identical timelines and metrics),
//!    because the shared-clock composition of `ReplicaSim` preserves the
//!    engine's event order.

use proptest::prelude::*;
use rago_schema::RouterPolicy;
use rago_serving_sim::cluster::ClusterEngine;
use rago_serving_sim::engine::{
    DecodeSpec, EngineRequest, IterativeSpec, LatencyTable, PipelineSpec, ServingEngine, StageSpec,
};

/// Builds a pipeline with one or two pre-decode stages plus decode.
fn pipeline(
    stages: usize,
    stage_batch: u32,
    stage_latency: f64,
    collocate: bool,
    decode_batch: u32,
    step_latency: f64,
) -> PipelineSpec {
    let specs = (0..stages)
        .map(|s| {
            StageSpec::new(
                format!("s{s}"),
                if collocate { 0 } else { s },
                stage_batch,
                LatencyTable::from_fn(stage_batch, |b| stage_latency * (1.0 + 0.1 * f64::from(b))),
            )
        })
        .collect();
    PipelineSpec::new(
        specs,
        DecodeSpec::new(
            decode_batch,
            LatencyTable::from_fn(decode_batch, |b| step_latency * (1.0 + 0.02 * f64::from(b))),
        ),
    )
}

/// Builds a request list with the given arrival gap and token spread.
fn requests(n: usize, gap: f64) -> Vec<EngineRequest> {
    (0..n)
        .map(|i| EngineRequest {
            id: i as u64,
            arrival_s: gap * i as f64,
            prefix_tokens: 0,
            decode_tokens: 1 + (i as u32 * 7) % 23,
            class: 0,
            identity: None,
        })
        .collect()
}

fn policy(index: usize) -> RouterPolicy {
    RouterPolicy::ALL[index % RouterPolicy::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any router policy the fleet neither loses nor duplicates
    /// requests: per-replica timelines partition the input set, ids and
    /// arrival data survive routing untouched, and the merged report covers
    /// everything once.
    #[test]
    fn routing_conserves_the_request_set(
        policy_idx in 0usize..4,
        replicas in 1usize..5,
        n in 1usize..60,
        gap in 0.0f64..0.03,
        stages in 1usize..3,
        collocate in any::<bool>(),
        stage_batch in 1u32..8,
        decode_batch in 1u32..16,
    ) {
        let spec = pipeline(stages, stage_batch, 0.01, collocate, decode_batch, 1e-3);
        let reqs = requests(n, gap);
        let fleet = ClusterEngine::homogeneous(spec, replicas, policy(policy_idx));
        let report = fleet.run(reqs.clone());

        // Union of per-replica timelines == input set, no loss/duplication.
        let mut seen: Vec<u64> = report
            .per_replica
            .iter()
            .flat_map(|r| r.report.timelines.iter().map(|t| t.id))
            .collect();
        seen.sort_unstable();
        let mut expected: Vec<u64> = reqs.iter().map(|r| r.id).collect();
        expected.sort_unstable();
        prop_assert_eq!(&seen, &expected, "per-replica timelines lost or duplicated ids");

        // Merged report covers each request exactly once, data untouched.
        prop_assert_eq!(report.merged.timelines.len(), n);
        for (t, r) in report.merged.timelines.iter().zip(reqs.iter()) {
            prop_assert_eq!(t.id, r.id);
            prop_assert!((t.arrival_s - r.arrival_s).abs() < 1e-15);
            prop_assert_eq!(t.decode_tokens, r.decode_tokens);
            prop_assert!(t.completion_s >= t.arrival_s);
        }

        // Assignments agree with the per-replica counts.
        prop_assert_eq!(report.assignments.len(), n);
        for rep in &report.per_replica {
            let assigned_here = report
                .assignments
                .iter()
                .filter(|&&(_, r)| r == rep.replica)
                .count();
            prop_assert_eq!(assigned_here, rep.assigned);
            prop_assert_eq!(rep.assigned, rep.report.timelines.len());
        }
        let total: usize = report.imbalance.assigned_per_replica.iter().sum();
        prop_assert_eq!(total, n);
    }

    /// A one-replica fleet is the engine, exactly — every policy, every
    /// pipeline shape, including same-instant arrival bursts.
    #[test]
    fn one_replica_fleet_is_the_engine(
        policy_idx in 0usize..4,
        n in 1usize..60,
        gap in 0.0f64..0.02,
        stages in 0usize..3,
        collocate in any::<bool>(),
        stage_batch in 1u32..8,
        decode_batch in 1u32..16,
        step_latency in 1e-4f64..0.01,
    ) {
        let spec = pipeline(stages, stage_batch, 0.015, collocate, decode_batch, step_latency);
        let reqs = requests(n, gap);
        let engine = ServingEngine::new(spec.clone(), reqs.clone()).run();
        let fleet = ClusterEngine::homogeneous(spec, 1, policy(policy_idx)).run(reqs);
        prop_assert_eq!(&fleet.merged, &engine, "one-replica fleet diverged from the engine");
        prop_assert_eq!(&fleet.per_replica[0].report, &engine);
        prop_assert_eq!(fleet.per_replica[0].assigned, engine.timelines.len());
    }

    /// The exact-degeneracy property survives iterative retrieval, whose
    /// trigger positions are sampled per replica at injection time.
    #[test]
    fn one_replica_fleet_is_the_engine_with_iterative_retrieval(
        policy_idx in 0usize..4,
        n in 1usize..32,
        gap in 0.0f64..0.02,
        retrievals in 1u32..4,
        iterative_batch in 1u32..8,
        retrieval_latency in 0.0f64..0.05,
        seed in 0u64..200,
    ) {
        let spec = pipeline(1, 4, 0.01, false, 16, 2e-3).with_iterative(IterativeSpec {
            retrievals_per_sequence: retrievals,
            iterative_batch,
            retrieval_prefix_latency_s: retrieval_latency,
            seed,
        });
        let reqs = requests(n, gap);
        let engine = ServingEngine::new(spec.clone(), reqs.clone()).run();
        let fleet = ClusterEngine::homogeneous(spec, 1, policy(policy_idx)).run(reqs);
        prop_assert_eq!(&fleet.merged, &engine);
    }

    /// Fleet runs are deterministic for every policy and replica count.
    #[test]
    fn fleet_runs_are_deterministic(
        policy_idx in 0usize..4,
        replicas in 1usize..4,
        n in 1usize..40,
        gap in 0.0f64..0.02,
    ) {
        let run = || {
            let spec = pipeline(1, 4, 0.01, false, 8, 1e-3);
            ClusterEngine::homogeneous(spec, replicas, policy(policy_idx)).run(requests(n, gap))
        };
        prop_assert_eq!(run(), run());
    }
}
