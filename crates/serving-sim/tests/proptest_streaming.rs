//! Property-based and degenerate-case pins of the streaming metrics path
//! and the engine's canonical injection order:
//!
//! * On random traces, the streaming (histogram) report tracks the exact
//!   report within the sink's documented error bars — percentiles within
//!   one bucket width, maxima and makespan bit-equal, means up to
//!   summation order — and online SLO counts match post-hoc scoring.
//! * Injection order is canonical: shuffled or reversed request vectors
//!   produce reports identical to sorted input, for the single-replica
//!   engine and the autoscaler alike (the `sort_by_arrival` fast path
//!   must never change what a run computes, only what it costs).
//! * Empty and single-request traces run in both modes without NaNs.

use proptest::prelude::*;
use rago_schema::{HistogramSpec, RouterPolicy, SloTarget};
use rago_serving_sim::autoscaler::{AutoscaleEngine, AutoscalerPolicy};
use rago_serving_sim::engine::{
    DecodeSpec, EngineRequest, LatencyTable, PipelineSpec, RequestTimeline, ServingEngine,
    StageSpec,
};
use rago_serving_sim::{MetricsMode, StreamingConfig};

/// A two-stage pipeline plus continuous-batching decode, sized so random
/// traces exercise queueing, batching, and the decode drain tail.
fn pipeline(stage_batch: u32, decode_batch: u32) -> PipelineSpec {
    PipelineSpec::new(
        vec![
            StageSpec::new(
                "retrieval",
                0,
                stage_batch,
                LatencyTable::from_fn(stage_batch, |b| 0.002 + 0.0003 * f64::from(b)),
            ),
            StageSpec::new(
                "prefix",
                1,
                stage_batch,
                LatencyTable::from_fn(stage_batch, |b| 0.004 + 0.0006 * f64::from(b)),
            ),
        ],
        DecodeSpec::new(
            decode_batch,
            LatencyTable::from_fn(decode_batch, |b| 0.001 + 0.0001 * f64::from(b)),
        ),
    )
}

fn requests_from(raw: &[(f64, u32, u32)]) -> Vec<EngineRequest> {
    raw.iter()
        .enumerate()
        .map(|(i, &(arrival_s, decode_tokens, class))| EngineRequest {
            id: i as u64,
            arrival_s,
            prefix_tokens: 0,
            decode_tokens,
            class,
            identity: None,
        })
        .collect()
}

/// A deterministic non-trivial permutation: strided order by a prime
/// co-prime to most lengths, so neither sorted nor reversed.
fn shuffled<T: Clone>(items: &[T]) -> Vec<T> {
    let n = items.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (i.wrapping_mul(7919)) % n.max(1));
    order.into_iter().map(|i| items[i].clone()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The streaming report tracks the exact report within the sink's
    /// documented error bars, and online SLO attainment matches post-hoc
    /// timeline scoring exactly.
    #[test]
    fn streaming_tracks_exact_within_one_bucket(
        raw in prop::collection::vec((0.0f64..20.0, 1u32..40, 0u32..3), 1..200),
        stage_batch in 1u32..16,
        decode_batch in 1u32..32,
    ) {
        let spec = pipeline(stage_batch, decode_batch);
        let requests = requests_from(&raw);
        let slo = SloTarget::new(0.5, 0.01);
        let config = StreamingConfig::new(HistogramSpec::default()).with_slo(slo);
        let engine = ServingEngine::new(spec, requests);

        let exact = engine.run();
        let streaming = engine.run_with_mode(&MetricsMode::Streaming(config));

        prop_assert_eq!(exact.metrics.requests, streaming.metrics.requests);
        prop_assert_eq!(exact.metrics.events_processed, streaming.metrics.events_processed);
        prop_assert_eq!(exact.metrics.makespan_s, streaming.metrics.makespan_s);
        prop_assert_eq!(exact.metrics.last_arrival_s, streaming.metrics.last_arrival_s);

        let width = HistogramSpec::default().bucket_width_s * (1.0 + 1e-9);
        for (e, s) in [
            (&exact.metrics.ttft, &streaming.metrics.ttft),
            (&exact.metrics.tpot, &streaming.metrics.tpot),
            (&exact.metrics.latency, &streaming.metrics.latency),
        ] {
            // Maxima are tracked exactly; means agree up to summation order
            // (the exact path averages sorted samples); percentiles within
            // one bucket width, never undershooting the exact value.
            prop_assert_eq!(e.max_s, s.max_s);
            prop_assert!((e.mean_s - s.mean_s).abs() <= 1e-9 * e.mean_s.abs().max(1.0));
            for (pe, ps) in [(e.p50_s, s.p50_s), (e.p95_s, s.p95_s), (e.p99_s, s.p99_s)] {
                prop_assert!(
                    (pe - ps).abs() <= width,
                    "percentile {ps} strayed beyond one bucket from exact {pe}"
                );
                prop_assert!(ps >= pe - 1e-12, "histogram upper edge undershot exact");
            }
        }

        // The sink counted the SLO online; the exact report scores the
        // retained timelines after the fact. Same rule, same count.
        prop_assert_eq!(exact.attainment(&slo), streaming.attainment(&slo));
        for class in 0..3 {
            prop_assert_eq!(
                exact.class_attainment(class, &slo),
                streaming.class_attainment(class, &slo)
            );
        }
    }

    /// Injection order is canonical: reversed and strided-shuffled request
    /// vectors produce byte-identical reports in both metrics modes.
    #[test]
    fn shuffled_traces_round_trip_to_identical_reports(
        raw in prop::collection::vec((0.0f64..10.0, 1u32..20, 0u32..2), 2..120),
        stage_batch in 1u32..8,
    ) {
        let spec = pipeline(stage_batch, 16);
        let sorted = requests_from(&raw);
        let mode = MetricsMode::Streaming(StreamingConfig::new(HistogramSpec::default()));

        let reference = ServingEngine::new(spec.clone(), sorted.clone());
        let ref_exact = reference.run();
        let ref_streaming = reference.run_with_mode(&mode);

        let mut reversed = sorted.clone();
        reversed.reverse();
        for permuted in [reversed, shuffled(&sorted)] {
            let engine = ServingEngine::new(spec.clone(), permuted);
            prop_assert_eq!(&engine.run(), &ref_exact);
            prop_assert_eq!(&engine.run_with_mode(&mode), &ref_streaming);
        }
    }
}

/// The autoscaler sorts injected requests into the same canonical order as
/// the single-replica engine: a reversed vector changes nothing in the
/// report, including the scaling timeline.
#[test]
fn autoscaler_report_is_invariant_to_injection_order() {
    let spec = pipeline(8, 16);
    let requests = requests_from(
        &(0..500)
            .map(|i| (f64::from(i) * 0.011, 4 + (i % 7) as u32, (i % 2) as u32))
            .collect::<Vec<_>>(),
    );
    let policy = AutoscalerPolicy::new(1, 4)
        .with_evaluation_interval(0.5)
        .with_scale_out_queue_depth(4.0)
        .with_scale_in_outstanding(1.0)
        .with_cooldown(1.0);
    let engine = AutoscaleEngine::new(spec, RouterPolicy::LeastOutstanding, policy);
    let mode = MetricsMode::Streaming(StreamingConfig::new(HistogramSpec::default()));

    let mut reversed = requests.clone();
    reversed.reverse();
    let strided = shuffled(&requests);

    let sorted_exact = engine.run(requests.clone());
    let sorted_streaming = engine.run_with_mode(requests, &mode);
    for permuted in [reversed, strided] {
        assert_eq!(engine.run(permuted.clone()), sorted_exact);
        assert_eq!(engine.run_with_mode(permuted, &mode), sorted_streaming);
    }
}

/// An empty trace is the zero-duration run: both modes report all-zero
/// metrics with no NaNs and full (vacuous) SLO attainment.
#[test]
fn empty_trace_runs_cleanly_in_both_modes() {
    let spec = pipeline(4, 8);
    let slo = SloTarget::new(1.0, 0.1);
    let engine = ServingEngine::new(spec, Vec::new());
    let config = StreamingConfig::new(HistogramSpec::default()).with_slo(slo);

    for report in [
        engine.run(),
        engine.run_with_mode(&MetricsMode::Exact),
        engine.run_with_mode(&MetricsMode::Streaming(config)),
    ] {
        assert_eq!(report.metrics.requests, 0);
        assert_eq!(report.metrics.completed, 0);
        assert_eq!(report.metrics.makespan_s, 0.0);
        assert_eq!(report.metrics.serving_duration_s, 0.0);
        assert_eq!(report.metrics.throughput_rps, 0.0);
        assert_eq!(report.metrics.events_processed, 0);
        for stats in [
            &report.metrics.ttft,
            &report.metrics.tpot,
            &report.metrics.latency,
        ] {
            for v in [
                stats.mean_s,
                stats.p50_s,
                stats.p95_s,
                stats.p99_s,
                stats.max_s,
            ] {
                assert_eq!(v, 0.0);
            }
        }
        assert_eq!(report.attainment(&slo), 1.0);
        assert!(report.timelines.is_empty());
    }
}

/// A single instantaneous request exercises every degenerate denominator:
/// percentile ranks of one sample, a drain tail equal to the makespan, and
/// identical percentiles across all three quantiles.
#[test]
fn single_request_trace_is_degenerate_but_finite() {
    let spec = pipeline(4, 8);
    let engine = ServingEngine::new(
        spec,
        vec![EngineRequest {
            id: 0,
            arrival_s: 0.0,
            prefix_tokens: 0,
            decode_tokens: 1,
            class: 0,
            identity: None,
        }],
    );
    let exact = engine.run();
    let streaming = engine.run_with_mode(&MetricsMode::Streaming(StreamingConfig::new(
        HistogramSpec::default(),
    )));

    assert_eq!(exact.metrics.requests, 1);
    assert!(exact.metrics.makespan_s > 0.0);
    assert_eq!(exact.metrics.drain_tail_s, exact.metrics.makespan_s);
    // One sample: every rank selects it, so all percentiles equal the max.
    for stats in [&exact.metrics.ttft, &exact.metrics.latency] {
        assert_eq!(stats.p50_s, stats.max_s);
        assert_eq!(stats.p99_s, stats.max_s);
    }
    assert_eq!(exact.metrics.makespan_s, streaming.metrics.makespan_s);
    assert_eq!(exact.metrics.latency.max_s, streaming.metrics.latency.max_s);
}

/// `run_with_mode(Exact)` is the identity path: it must reproduce `run()`
/// byte for byte — timelines, metrics, per-class rows, everything the
/// report derives, on a workload big enough to exercise queue growth,
/// calendar rebuilds, and multi-class accounting.
#[test]
fn exact_mode_reproduces_run_byte_for_byte() {
    let spec = pipeline(8, 32);
    let requests = requests_from(
        &(0..5_000)
            .map(|i| (f64::from(i) * 0.0013, 1 + (i % 23) as u32, (i % 3) as u32))
            .collect::<Vec<_>>(),
    );
    let engine = ServingEngine::new(spec, requests);
    let plain = engine.run();
    let via_sink = engine.run_with_mode(&MetricsMode::Exact);
    assert_eq!(plain, via_sink);
    // And the timelines really are populated (this is not a vacuous check).
    assert_eq!(plain.timelines.len(), 5_000);
    assert!(plain
        .timelines
        .iter()
        .all(|t: &RequestTimeline| t.completion_s >= t.arrival_s));
}
