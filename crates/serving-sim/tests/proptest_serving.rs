//! Property-based tests for the discrete-event serving simulators.

use proptest::prelude::*;
use rago_serving_sim::engine::{
    DecodeSpec, EngineRequest, IterativeSpec, LatencyTable, PipelineSpec, RequestTimeline,
    ServingEngine, StageSpec,
};
use rago_serving_sim::iterative::{IterativeDecodeParams, IterativeDecodeSim};
use rago_serving_sim::microbatch::{simulate_collocated_burst, simulate_pipelined_burst};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The iterative decode simulation always finishes, its normalized latency
    /// is at least 1, and the worst TPOT bounds the mean.
    #[test]
    fn iterative_sim_basic_invariants(
        decode_batch in 1u32..128,
        iterative_batch in 1u32..128,
        retrievals in 0u32..8,
        decode_len in 8u32..256,
        retrieval_latency in 0.0f64..0.2,
        seed in 0u64..500,
    ) {
        let params = IterativeDecodeParams {
            decode_batch,
            iterative_batch,
            decode_len,
            retrievals_per_sequence: retrievals,
            step_latency_s: 2e-3,
            retrieval_prefix_latency_s: retrieval_latency,
            seed,
        };
        let r = IterativeDecodeSim::new(params).run();
        prop_assert!(r.total_time_s >= f64::from(decode_len) * 2e-3 - 1e-12);
        prop_assert!(r.normalized_decode_latency >= 1.0 - 1e-9);
        prop_assert!(r.tpot_worst_s >= r.tpot_mean_s - 1e-12);
        prop_assert!(r.idle_fraction >= 0.0 && r.idle_fraction <= 1.0);
        if retrievals == 0 {
            prop_assert_eq!(r.retrieval_batches, 0);
            prop_assert!((r.normalized_decode_latency - 1.0).abs() < 1e-9);
        } else {
            // Every retrieval is eventually dispatched.
            prop_assert!(r.retrieval_batches >= 1);
            prop_assert!(r.mean_retrieval_batch_fill <= f64::from(iterative_batch) + 1e-9);
        }
    }

    /// Higher retrieval latency never speeds up the iterative simulation.
    #[test]
    fn iterative_sim_monotone_in_retrieval_latency(
        decode_batch in 2u32..64,
        seed in 0u64..200,
    ) {
        let base = IterativeDecodeParams {
            decode_batch,
            iterative_batch: (decode_batch / 2).max(1),
            decode_len: 64,
            retrievals_per_sequence: 2,
            step_latency_s: 1e-3,
            retrieval_prefix_latency_s: 0.0,
            seed,
        };
        let fast = IterativeDecodeSim::new(base).run();
        let slow = IterativeDecodeSim::new(IterativeDecodeParams {
            retrieval_prefix_latency_s: 0.05,
            ..base
        })
        .run();
        prop_assert!(slow.total_time_s >= fast.total_time_s - 1e-12);
    }

    /// Pipelined execution never loses to collocated execution on the same
    /// stage costs, and both preserve basic ordering invariants.
    #[test]
    fn pipelined_never_loses_to_collocated(
        burst in 1u32..64,
        microbatch in 1u32..64,
        base1 in 1e-4f64..0.05,
        per1 in 1e-5f64..0.01,
        base2 in 1e-4f64..0.05,
        per2 in 1e-5f64..0.01,
    ) {
        let s1 = move |b: u32| base1 + per1 * f64::from(b);
        let s2 = move |b: u32| base2 + per2 * f64::from(b);
        let stages: Vec<&dyn Fn(u32) -> f64> = vec![&s1, &s2];
        let pipe = simulate_pipelined_burst(&stages, burst, microbatch);
        let col = simulate_collocated_burst(&stages, burst, microbatch);
        prop_assert!(pipe.makespan_s <= col.makespan_s + 1e-9);
        prop_assert!(pipe.first_completion_s <= pipe.mean_completion_s + 1e-9);
        prop_assert!(pipe.mean_completion_s <= pipe.makespan_s + 1e-9);
        prop_assert!(col.first_completion_s <= col.mean_completion_s + 1e-9);
        prop_assert_eq!(pipe.num_microbatches, col.num_microbatches);
        // Number of micro-batches is ceil(burst / microbatch).
        prop_assert_eq!(pipe.num_microbatches, burst.div_ceil(microbatch));
    }

    /// The request-level engine reproduces `IterativeDecodeSim` for random
    /// degenerate configurations (no pre-decode stages, simultaneous
    /// arrivals, decode batch equal to the request count).
    #[test]
    fn engine_matches_iterative_sim_on_random_configs(
        decode_batch in 1u32..48,
        iterative_batch in 1u32..48,
        retrievals in 0u32..5,
        decode_len in 4u32..96,
        retrieval_latency in 0.0f64..0.1,
        seed in 0u64..300,
    ) {
        let params = IterativeDecodeParams {
            decode_batch,
            iterative_batch,
            decode_len,
            retrievals_per_sequence: retrievals,
            step_latency_s: 2e-3,
            retrieval_prefix_latency_s: retrieval_latency,
            seed,
        };
        let reference = IterativeDecodeSim::new(params).run();
        let spec = PipelineSpec::new(
            Vec::new(),
            DecodeSpec::new(decode_batch, LatencyTable::constant(decode_batch, 2e-3)),
        )
        .with_iterative(IterativeSpec {
            retrievals_per_sequence: retrievals,
            iterative_batch,
            retrieval_prefix_latency_s: retrieval_latency,
            seed,
        });
        let requests: Vec<EngineRequest> = (0..decode_batch)
            .map(|i| EngineRequest { id: u64::from(i), arrival_s: 0.0, prefix_tokens: 0, decode_tokens: decode_len, class: 0, identity: None })
            .collect();
        let report = ServingEngine::new(spec, requests).run();
        prop_assert!((report.metrics.makespan_s - reference.total_time_s).abs() < 1e-9);
        let tpot_worst = report
            .timelines
            .iter()
            .map(RequestTimeline::tpot_s)
            .fold(0.0f64, f64::max);
        prop_assert!((tpot_worst - reference.tpot_worst_s).abs() < 1e-9);
        prop_assert_eq!(report.metrics.retrieval_batches, reference.retrieval_batches);
    }

    /// Engine timelines are causally ordered and every request completes,
    /// for random loads, stage shapes, and decode caps.
    #[test]
    fn engine_timelines_are_causal(
        requests in 1usize..80,
        stage_batch in 1u32..16,
        decode_batch in 1u32..32,
        stage_latency in 1e-4f64..0.05,
        step_latency in 1e-4f64..0.01,
        gap in 0.0f64..0.02,
    ) {
        let spec = PipelineSpec::new(
            vec![StageSpec::new(
                "prefix",
                0,
                stage_batch,
                LatencyTable::constant(stage_batch, stage_latency),
            )],
            DecodeSpec::new(decode_batch, LatencyTable::constant(decode_batch, step_latency)),
        );
        let reqs: Vec<EngineRequest> = (0..requests)
            .map(|i| EngineRequest {
                id: i as u64,
                arrival_s: gap * i as f64,
                prefix_tokens: 0,
                decode_tokens: 1 + (i as u32 % 17),
                class: 0,
                identity: None,
            })
            .collect();
        let report = ServingEngine::new(spec, reqs).run();
        prop_assert_eq!(report.metrics.completed, requests);
        for t in &report.timelines {
            prop_assert!(t.first_token_s >= t.arrival_s - 1e-12);
            prop_assert!(t.decode_join_s >= t.arrival_s - 1e-12);
            prop_assert!(t.completion_s >= t.first_token_s - 1e-12);
            prop_assert!(t.queueing_s >= -1e-12);
            prop_assert!(t.queueing_s <= t.latency_s() + 1e-9);
            // Decode can't finish faster than one step per token.
            prop_assert!(
                t.completion_s - t.decode_join_s
                    >= step_latency * f64::from(t.decode_tokens) - 1e-9
            );
        }
        prop_assert!(report.metrics.ttft.p50_s <= report.metrics.ttft.p99_s + 1e-12);
        prop_assert!(report.metrics.throughput_rps > 0.0);
    }

    /// The makespan of a pipelined burst is at least the bottleneck stage's
    /// total work and at most the fully serial execution.
    #[test]
    fn pipelined_makespan_bounds(
        burst in 1u32..48,
        microbatch in 1u32..48,
        per1 in 1e-5f64..0.01,
        per2 in 1e-5f64..0.01,
    ) {
        let s1 = move |b: u32| per1 * f64::from(b);
        let s2 = move |b: u32| per2 * f64::from(b);
        let stages: Vec<&dyn Fn(u32) -> f64> = vec![&s1, &s2];
        let r = simulate_pipelined_burst(&stages, burst, microbatch);
        let total1 = per1 * f64::from(burst);
        let total2 = per2 * f64::from(burst);
        let serial = total1 + total2;
        prop_assert!(r.makespan_s >= total1.max(total2) - 1e-12);
        prop_assert!(r.makespan_s <= serial + 1e-9);
    }
}
