//! Engine-level cache semantics: prefix-suffix prefill charging, retrieval
//! stage skipping, replica-local cold caches, content-aware routing — and
//! the degenerate-case equivalences the issue pins (identity-free traces
//! and zero-capacity caches reproduce the cache-less engine bit-exactly).

use rago_cache::{CacheConfig, EvictionPolicy, PrefixKvCacheConfig, RetrievalCacheConfig};
use rago_schema::{RouterPolicy, SequenceProfile};
use rago_serving_sim::autoscaler::{AutoscaleEngine, AutoscalerPolicy};
use rago_serving_sim::cluster::ClusterEngine;
use rago_serving_sim::engine::{
    CachePlan, DecodeSpec, EngineRequest, LatencyTable, PipelineSpec, ServingEngine, StageSpec,
};
use rago_workloads::{ArrivalProcess, ContentIdentity, ContentSpec, PopularityModel, TraceSpec};

/// Retrieval (0.05 s) then prefix (0.2 s), each on its own resource.
fn two_stage_spec() -> PipelineSpec {
    PipelineSpec::new(
        vec![
            StageSpec::new("retrieval", 0, 4, LatencyTable::constant(4, 0.05)),
            StageSpec::new("prefix", 1, 4, LatencyTable::constant(4, 0.2)),
        ],
        DecodeSpec::new(8, LatencyTable::constant(8, 2e-3)),
    )
}

fn plan(config: CacheConfig) -> CachePlan {
    CachePlan {
        config,
        prefix_stage: Some(1),
        retrieval_stages: vec![0],
    }
}

fn prefix_only(capacity_tokens: u64) -> CacheConfig {
    CacheConfig {
        prefix: Some(PrefixKvCacheConfig::new(
            capacity_tokens,
            EvictionPolicy::Lru,
        )),
        retrieval: None,
    }
}

fn retrieval_only(capacity_entries: u64) -> CacheConfig {
    CacheConfig {
        prefix: None,
        retrieval: Some(RetrievalCacheConfig::new(
            capacity_entries,
            EvictionPolicy::Lru,
        )),
    }
}

fn both(prefix_tokens: u64, retrieval_entries: u64) -> CacheConfig {
    CacheConfig {
        prefix: Some(PrefixKvCacheConfig::new(prefix_tokens, EvictionPolicy::Lru)),
        retrieval: Some(RetrievalCacheConfig::new(
            retrieval_entries,
            EvictionPolicy::Lru,
        )),
    }
}

fn req_with_identity(
    id: u64,
    arrival: f64,
    prefix_id: u64,
    shared: u32,
    doc_key: u64,
) -> EngineRequest {
    EngineRequest {
        id,
        arrival_s: arrival,
        prefix_tokens: 1000,
        decode_tokens: 4,
        class: 0,
        identity: Some(ContentIdentity {
            prefix_id,
            shared_prefix_tokens: shared,
            doc_key,
        }),
    }
}

/// A prefix-KV hit charges the prefix stage only for the uncached suffix:
/// with 800 of 1000 tokens shared, the second request's prefill costs
/// 0.2 × 200/1000 = 0.04 s instead of 0.2 s.
#[test]
fn prefix_hit_charges_only_the_uncached_suffix() {
    let spec = two_stage_spec().with_cache(plan(prefix_only(100_000)));
    // Distinct doc keys; arrivals far apart so every micro-batch is one
    // request.
    let report = ServingEngine::new(
        spec,
        vec![
            req_with_identity(0, 0.0, 7, 800, 100),
            req_with_identity(1, 1.0, 7, 800, 101),
        ],
    )
    .run();
    let prefix_duration =
        |i: usize| report.timelines[i].stage_ends_s[1] - report.timelines[i].stage_starts_s[1];
    assert!(
        (prefix_duration(0) - 0.2).abs() < 1e-12,
        "cold miss pays full prefill"
    );
    assert!(
        (prefix_duration(1) - 0.04).abs() < 1e-12,
        "hit should pay the 20 % suffix, got {}",
        prefix_duration(1)
    );
    let usage = &report.cache;
    assert_eq!(usage.prefix.lookups, 2);
    assert_eq!(usage.prefix.hits, 1);
    assert_eq!(usage.prefix.tokens_saved, 800);
    assert_eq!(usage.retrieval.lookups, 0);
    // TTFT improves by exactly the saved prefill time.
    let ttft = |i: usize| report.timelines[i].ttft_s();
    assert!((ttft(0) - 0.25).abs() < 1e-12);
    assert!((ttft(1) - 0.09).abs() < 1e-12);
}

/// A retrieval-result hit skips the retrieve stage outright: the stage is
/// recorded as a zero-duration pass-through and the request goes straight
/// to prefill.
#[test]
fn retrieval_hit_skips_the_stage() {
    let spec = two_stage_spec().with_cache(plan(retrieval_only(64)));
    let report = ServingEngine::new(
        spec,
        vec![
            req_with_identity(0, 0.0, 1, 0, 42),
            req_with_identity(1, 1.0, 2, 0, 42), // same doc key
        ],
    )
    .run();
    let t0 = &report.timelines[0];
    let t1 = &report.timelines[1];
    // First request executes retrieval for 0.05 s.
    assert!((t0.stage_ends_s[0] - t0.stage_starts_s[0] - 0.05).abs() < 1e-12);
    assert!((t0.ttft_s() - 0.25).abs() < 1e-12);
    // Second passes retrieval through at its arrival instant.
    assert_eq!(t1.stage_starts_s[0], t1.stage_ends_s[0]);
    assert!((t1.stage_starts_s[0] - 1.0).abs() < 1e-12);
    assert!((t1.ttft_s() - 0.2).abs() < 1e-12, "only prefill remains");
    assert_eq!(report.cache.retrieval.hits, 1);
    assert_eq!(report.cache.retrieval.lookups, 2);
}

/// Identity-free traffic never touches configured caches: the run is
/// bit-identical to the cache-less engine, counters included.
#[test]
fn identity_free_runs_match_the_cacheless_engine_bit_exactly() {
    let trace = TraceSpec {
        num_requests: 120,
        profile: SequenceProfile::paper_default().with_decode_tokens(24),
        arrival: ArrivalProcess::Poisson { rate_rps: 40.0 },
        length_jitter: 0.2,
        seed: 11,
    }
    .generate();
    let plain = ServingEngine::from_trace(two_stage_spec(), &trace).run();
    let cached =
        ServingEngine::from_trace(two_stage_spec().with_cache(plan(both(50_000, 64))), &trace)
            .run();
    assert_eq!(plain, cached);
    assert_eq!(cached.cache.prefix.lookups, 0);
    assert_eq!(cached.cache.retrieval.lookups, 0);
}

/// Zero-capacity caches look up, miss every time, and change nothing:
/// timelines, metrics, and per-class rows are bit-identical to the
/// cache-less run.
#[test]
fn zero_capacity_caches_match_the_cacheless_engine_bit_exactly() {
    let content = ContentSpec {
        prefixes: PopularityModel::zipf(6, 1.0),
        shared_prefix_fraction: 0.7,
        docs: PopularityModel::zipf(20, 1.0),
        seed: 5,
    };
    let trace = content.tag(
        &TraceSpec {
            num_requests: 120,
            profile: SequenceProfile::paper_default().with_decode_tokens(24),
            arrival: ArrivalProcess::Poisson { rate_rps: 40.0 },
            length_jitter: 0.2,
            seed: 11,
        }
        .generate(),
    );
    let plain = ServingEngine::from_trace(two_stage_spec(), &trace).run();
    let cached =
        ServingEngine::from_trace(two_stage_spec().with_cache(plan(both(0, 0))), &trace).run();
    assert_eq!(plain.timelines, cached.timelines);
    assert_eq!(plain.metrics, cached.metrics);
    assert_eq!(plain.per_class, cached.per_class);
    // The lookups all happened — and all missed.
    assert_eq!(cached.cache.prefix.lookups, 120);
    assert_eq!(cached.cache.prefix.hits, 0);
    assert_eq!(cached.cache.retrieval.hits, 0);
    assert_eq!(cached.cache.prefix.insertions, 0);
    // The same holds for a whole fleet.
    let fleet_plain =
        ClusterEngine::homogeneous(two_stage_spec(), 2, RouterPolicy::LeastOutstanding)
            .run_trace(&trace);
    let fleet_cached = ClusterEngine::homogeneous(
        two_stage_spec().with_cache(plan(both(0, 0))),
        2,
        RouterPolicy::LeastOutstanding,
    )
    .run_trace(&trace);
    assert_eq!(fleet_plain.merged.timelines, fleet_cached.merged.timelines);
    assert_eq!(fleet_plain.merged.metrics, fleet_cached.merged.metrics);
    assert_eq!(fleet_plain.assignments, fleet_cached.assignments);
}

/// Every replica owns its own cold cache: round-robin over two replicas
/// with one hot template pays one cold miss *per replica*.
#[test]
fn cluster_replicas_start_cold_and_warm_independently() {
    let spec = two_stage_spec().with_cache(plan(prefix_only(100_000)));
    let requests: Vec<EngineRequest> = (0..6)
        .map(|i| req_with_identity(i, i as f64, 7, 800, 100 + i))
        .collect();
    let fleet = ClusterEngine::homogeneous(spec, 2, RouterPolicy::RoundRobin).run(requests);
    let usage = &fleet.merged.cache;
    assert_eq!(usage.prefix.lookups, 6);
    assert_eq!(usage.prefix.insertions, 2, "one cold miss per replica");
    assert_eq!(usage.prefix.hits, 4);
    for replica in &fleet.per_replica {
        assert_eq!(replica.report.cache.prefix.insertions, 1);
        assert_eq!(replica.report.cache.prefix.hits, 2);
    }
}

/// Cache-affinity routing concentrates each template on one replica (so a
/// fleet pays one cold miss per template), while least-outstanding scatters
/// templates and pays more misses.
#[test]
fn cache_affinity_concentrates_templates() {
    let spec = two_stage_spec().with_cache(plan(prefix_only(100_000)));
    // Two templates, alternating arrivals, far enough apart that load-based
    // routing sees symmetric (empty) replicas.
    let requests: Vec<EngineRequest> = (0..12)
        .map(|i| req_with_identity(i, i as f64, i % 2, 800, 1000 + i))
        .collect();
    let affinity = ClusterEngine::homogeneous(spec.clone(), 3, RouterPolicy::CacheAffinity)
        .run(requests.clone());
    // One cold miss per template; everything else hits.
    assert_eq!(affinity.merged.cache.prefix.insertions, 2);
    assert_eq!(affinity.merged.cache.prefix.hits, 10);
    // Each template's requests all landed on a single replica.
    for template in 0..2u64 {
        let replicas: std::collections::BTreeSet<usize> = affinity
            .assignments
            .iter()
            .filter(|(id, _)| id % 2 == template)
            .map(|&(_, r)| r)
            .collect();
        assert_eq!(replicas.len(), 1, "template {template} was scattered");
    }
    // The hash router achieves the same concentration statically.
    let hashed =
        ClusterEngine::homogeneous(spec, 3, RouterPolicy::PrefixHash).run(requests.clone());
    assert_eq!(hashed.merged.cache.prefix.insertions, 2);
    assert_eq!(hashed.merged.cache.prefix.hits, 10);
}

/// With caches in the spec, a min == max autoscaler still reproduces the
/// fixed fleet bit-exactly — the cache state lives inside the shared
/// replica simulation, so elastic and fixed paths stay one implementation.
#[test]
fn static_autoscaler_policy_matches_fixed_fleet_with_caches() {
    let content = ContentSpec {
        prefixes: PopularityModel::zipf(4, 1.0),
        shared_prefix_fraction: 0.75,
        docs: PopularityModel::zipf(16, 1.0),
        seed: 23,
    };
    let trace = content.tag(
        &TraceSpec {
            num_requests: 100,
            profile: SequenceProfile::paper_default().with_decode_tokens(16),
            arrival: ArrivalProcess::Poisson { rate_rps: 30.0 },
            length_jitter: 0.1,
            seed: 3,
        }
        .generate(),
    );
    let spec = two_stage_spec().with_cache(plan(both(100_000, 64)));
    let policy = AutoscalerPolicy::new(2, 2)
        .with_evaluation_interval(0.5)
        .with_scale_in_outstanding(0.0);
    for router in [RouterPolicy::CacheAffinity, RouterPolicy::LeastOutstanding] {
        let elastic = AutoscaleEngine::new(spec.clone(), router, policy).run_trace(&trace);
        let fixed = ClusterEngine::homogeneous(spec.clone(), 2, router).run_trace(&trace);
        assert_eq!(elastic.fleet, fixed, "router {router} diverged");
    }
}

/// Skewed traffic through a cached pipeline beats the cache-less pipeline
/// on TTFT at identical arrivals — the end-to-end point of the subsystem.
#[test]
fn caches_improve_ttft_on_skewed_traffic() {
    let content = ContentSpec {
        prefixes: PopularityModel::zipf(4, 1.2),
        shared_prefix_fraction: 0.8,
        docs: PopularityModel::zipf(8, 1.2),
        seed: 41,
    };
    let trace = content.tag(
        &TraceSpec {
            num_requests: 150,
            profile: SequenceProfile::paper_default().with_decode_tokens(16),
            arrival: ArrivalProcess::Poisson { rate_rps: 12.0 },
            length_jitter: 0.1,
            seed: 9,
        }
        .generate(),
    );
    let plain = ServingEngine::from_trace(two_stage_spec(), &trace).run();
    let cached =
        ServingEngine::from_trace(two_stage_spec().with_cache(plan(both(200_000, 64))), &trace)
            .run();
    assert!(cached.cache.prefix.hit_rate() > 0.6);
    assert!(cached.cache.retrieval.hit_rate() > 0.6);
    assert!(
        cached.metrics.ttft.mean_s < plain.metrics.ttft.mean_s,
        "cached {} vs plain {}",
        cached.metrics.ttft.mean_s,
        plain.metrics.ttft.mean_s
    );
}

#[test]
#[should_panic(expected = "prefix-KV cache needs a prefix stage")]
fn prefix_cache_without_a_prefix_stage_is_rejected() {
    let _ = two_stage_spec().with_cache(CachePlan {
        config: prefix_only(1000),
        prefix_stage: None,
        retrieval_stages: vec![0],
    });
}

#[test]
#[should_panic(expected = "retrieval stage to skip")]
fn retrieval_cache_without_retrieval_stages_is_rejected() {
    // A retrieval cache that skips nothing would report hits that save no
    // work — reject the plan outright.
    let _ = two_stage_spec().with_cache(CachePlan {
        config: retrieval_only(8),
        prefix_stage: None,
        retrieval_stages: vec![],
    });
}

#[test]
#[should_panic(expected = "out of range")]
fn out_of_range_cache_stages_are_rejected() {
    let _ = two_stage_spec().with_cache(CachePlan {
        config: retrieval_only(8),
        prefix_stage: None,
        retrieval_stages: vec![5],
    });
}
