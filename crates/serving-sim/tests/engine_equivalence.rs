//! Degenerate-case equivalence of the request-level engine against the two
//! special-case simulators it subsumes (the acceptance criterion of the
//! engine):
//!
//! * With no pre-decode stages, all requests present at t = 0, and a decode
//!   batch equal to the request count, the engine **is**
//!   [`IterativeDecodeSim`] — same TPOT, same completion time, same
//!   retrieval-batch accounting.
//! * With a burst at t = 0 flowing through pre-decode stages only, the
//!   engine's TTFT distribution **is** the micro-batch burst model — the
//!   pipelined variant when every stage owns a resource, the collocated
//!   variant when all stages share one.

use rago_serving_sim::engine::{
    DecodeSpec, EngineRequest, IterativeSpec, LatencyTable, PipelineSpec, RequestTimeline,
    ServingEngine, StageSpec,
};
use rago_serving_sim::iterative::{IterativeDecodeParams, IterativeDecodeSim};
use rago_serving_sim::microbatch::{simulate_collocated_burst, simulate_pipelined_burst};

const EPS: f64 = 1e-9;

/// Builds the engine configuration that degenerates to one
/// `IterativeDecodeSim` run.
fn engine_for(params: IterativeDecodeParams) -> ServingEngine {
    let spec = PipelineSpec::new(
        Vec::new(),
        DecodeSpec::new(
            params.decode_batch,
            LatencyTable::constant(params.decode_batch, params.step_latency_s),
        ),
    )
    .with_iterative(IterativeSpec {
        retrievals_per_sequence: params.retrievals_per_sequence,
        iterative_batch: params.iterative_batch,
        retrieval_prefix_latency_s: params.retrieval_prefix_latency_s,
        seed: params.seed,
    });
    let requests = (0..params.decode_batch)
        .map(|i| EngineRequest {
            id: u64::from(i),
            arrival_s: 0.0,
            prefix_tokens: 0,
            decode_tokens: params.decode_len,
            class: 0,
            identity: None,
        })
        .collect();
    ServingEngine::new(spec, requests)
}

fn assert_matches_iterative_sim(params: IterativeDecodeParams) {
    let reference = IterativeDecodeSim::new(params).run();
    let report = engine_for(params).run();

    let tpots: Vec<f64> = report
        .timelines
        .iter()
        .map(RequestTimeline::tpot_s)
        .collect();
    let tpot_mean = tpots.iter().sum::<f64>() / tpots.len() as f64;
    let tpot_worst = tpots.iter().fold(0.0f64, |a, &b| a.max(b));

    assert!(
        (report.metrics.makespan_s - reference.total_time_s).abs() < EPS,
        "makespan {} != reference total time {}",
        report.metrics.makespan_s,
        reference.total_time_s
    );
    assert!(
        (tpot_mean - reference.tpot_mean_s).abs() < EPS,
        "mean TPOT {tpot_mean} != reference {}",
        reference.tpot_mean_s
    );
    assert!(
        (tpot_worst - reference.tpot_worst_s).abs() < EPS,
        "worst TPOT {tpot_worst} != reference {}",
        reference.tpot_worst_s
    );
    assert_eq!(
        report.metrics.retrieval_batches,
        reference.retrieval_batches
    );
    assert!(
        (report.metrics.mean_retrieval_batch_fill - reference.mean_retrieval_batch_fill).abs()
            < EPS
    );
}

#[test]
fn engine_reproduces_iterative_decode_sim_exactly() {
    assert_matches_iterative_sim(IterativeDecodeParams {
        decode_batch: 64,
        iterative_batch: 16,
        decode_len: 256,
        retrievals_per_sequence: 4,
        step_latency_s: 5e-3,
        retrieval_prefix_latency_s: 0.05,
        seed: 42,
    });
}

#[test]
fn engine_reproduces_iterative_decode_sim_across_the_figure10_grid() {
    // The Figure 10 regimes: zero-latency retrieval isolates batching
    // idleness; the diagonal (iterative batch == decode batch) is the
    // pathological corner; small batches approach no-slowdown.
    for (decode_batch, iterative_batch, latency) in [
        (64u32, 64u32, 0.0f64),
        (64, 1, 0.0),
        (32, 8, 0.1),
        (16, 4, 0.02),
        (8, 8, 0.05),
    ] {
        for seed in [0u64, 7, 1234] {
            assert_matches_iterative_sim(IterativeDecodeParams {
                decode_batch,
                iterative_batch,
                decode_len: 128,
                retrievals_per_sequence: 3,
                step_latency_s: 2e-3,
                retrieval_prefix_latency_s: latency,
                seed,
            });
        }
    }
}

#[test]
fn engine_without_retrievals_decodes_unobstructed() {
    assert_matches_iterative_sim(IterativeDecodeParams {
        decode_batch: 48,
        iterative_batch: 8,
        decode_len: 200,
        retrievals_per_sequence: 0,
        step_latency_s: 3e-3,
        retrieval_prefix_latency_s: 0.05,
        seed: 1,
    });
}

/// Affine stage latencies shared by both burst models.
fn affine(base: f64, per_item: f64) -> impl Fn(u32) -> f64 {
    move |b: u32| base + per_item * f64::from(b)
}

/// Builds a burst engine over the given stage closures, one resource per
/// stage (`disaggregated`) or all on resource zero (`collocated`).
fn burst_engine(
    stages: &[(f64, f64)],
    burst: u32,
    microbatch: u32,
    disaggregated: bool,
) -> ServingEngine {
    let specs: Vec<StageSpec> = stages
        .iter()
        .enumerate()
        .map(|(s, &(base, per))| {
            StageSpec::new(
                format!("s{s}"),
                if disaggregated { s } else { 0 },
                microbatch,
                LatencyTable::from_fn(microbatch, affine(base, per)),
            )
        })
        .collect();
    // A trivially fast decode stage: TTFT is unaffected by decoding.
    let spec = PipelineSpec::new(
        specs,
        DecodeSpec::new(burst, LatencyTable::constant(burst, 1e-9)),
    );
    let requests = (0..burst)
        .map(|i| EngineRequest {
            id: u64::from(i),
            arrival_s: 0.0,
            prefix_tokens: 0,
            decode_tokens: 1,
            class: 0,
            identity: None,
        })
        .collect();
    ServingEngine::new(spec, requests)
}

fn ttft_first_mean_makespan(engine: &ServingEngine) -> (f64, f64, f64) {
    let report = engine.run();
    let ttfts: Vec<f64> = report
        .timelines
        .iter()
        .map(RequestTimeline::ttft_s)
        .collect();
    let first = ttfts.iter().fold(f64::INFINITY, |a, &b| a.min(b));
    let mean = ttfts.iter().sum::<f64>() / ttfts.len() as f64;
    let max = ttfts.iter().fold(0.0f64, |a, &b| a.max(b));
    (first, mean, max)
}

#[test]
fn engine_reproduces_pipelined_burst_completion_times() {
    let stage_params = [(0.01, 0.001), (0.02, 0.002), (0.005, 0.004)];
    let s0 = affine(0.01, 0.001);
    let s1 = affine(0.02, 0.002);
    let s2 = affine(0.005, 0.004);
    let closures: Vec<&dyn Fn(u32) -> f64> = vec![&s0, &s1, &s2];
    for (burst, microbatch) in [(32u32, 4u32), (32, 32), (17, 5), (8, 1), (3, 16)] {
        let reference = simulate_pipelined_burst(&closures, burst, microbatch);
        let engine = burst_engine(&stage_params, burst, microbatch, true);
        let (first, mean, max) = ttft_first_mean_makespan(&engine);
        assert!(
            (first - reference.first_completion_s).abs() < EPS,
            "burst={burst} mb={microbatch}: first {first} != {}",
            reference.first_completion_s
        );
        assert!(
            (mean - reference.mean_completion_s).abs() < EPS,
            "burst={burst} mb={microbatch}: mean {mean} != {}",
            reference.mean_completion_s
        );
        assert!(
            (max - reference.makespan_s).abs() < EPS,
            "burst={burst} mb={microbatch}: makespan {max} != {}",
            reference.makespan_s
        );
    }
}

#[test]
fn engine_reproduces_collocated_burst_completion_times() {
    let stage_params = [(0.0, 0.01), (0.0, 0.01)];
    let s0 = affine(0.0, 0.01);
    let s1 = affine(0.0, 0.01);
    let closures: Vec<&dyn Fn(u32) -> f64> = vec![&s0, &s1];
    for (burst, microbatch) in [(8u32, 4u32), (16, 4), (16, 16), (9, 2)] {
        let reference = simulate_collocated_burst(&closures, burst, microbatch);
        let engine = burst_engine(&stage_params, burst, microbatch, false);
        let (first, mean, max) = ttft_first_mean_makespan(&engine);
        assert!(
            (first - reference.first_completion_s).abs() < EPS,
            "burst={burst} mb={microbatch}: first {first} != {}",
            reference.first_completion_s
        );
        assert!(
            (mean - reference.mean_completion_s).abs() < EPS,
            "burst={burst} mb={microbatch}: mean {mean} != {}",
            reference.mean_completion_s
        );
        assert!(
            (max - reference.makespan_s).abs() < EPS,
            "burst={burst} mb={microbatch}: makespan {max} != {}",
            reference.makespan_s
        );
    }
}

#[test]
fn engine_collocated_matches_heterogeneous_stage_costs_too() {
    let stage_params = [(0.01, 0.005), (0.02, 0.001), (0.005, 0.002)];
    let s0 = affine(0.01, 0.005);
    let s1 = affine(0.02, 0.001);
    let s2 = affine(0.005, 0.002);
    let closures: Vec<&dyn Fn(u32) -> f64> = vec![&s0, &s1, &s2];
    for mb in [1u32, 2, 4, 8, 16] {
        let reference = simulate_collocated_burst(&closures, 16, mb);
        let engine = burst_engine(&stage_params, 16, mb, false);
        let (_, mean, max) = ttft_first_mean_makespan(&engine);
        assert!(
            (mean - reference.mean_completion_s).abs() < EPS,
            "mb={mb}: mean {mean} != {}",
            reference.mean_completion_s
        );
        assert!((max - reference.makespan_s).abs() < EPS);
    }
}
