//! Streaming-metrics configuration for the serving simulators.
//!
//! Million-request simulations cannot afford to retain a per-request
//! timeline just to compute latency percentiles at the end of the run. The
//! serving engine's *streaming* metrics mode instead folds each completed
//! request into fixed-resolution histograms and keeps `O(buckets)` state
//! regardless of trace length. A [`HistogramSpec`] is the schema-level
//! description of those histograms — resolution and size cap — shared by
//! the engine, the evaluators in `rago-core`, and the `scale_stress` bench
//! so every layer agrees on the accuracy/memory trade-off.
//!
//! # Examples
//!
//! ```
//! use rago_schema::HistogramSpec;
//!
//! let spec = HistogramSpec::default();
//! assert!(spec.validate().is_ok());
//! // Percentiles read from such a histogram are exact to within one
//! // bucket width (1 ms by default) for values under the cap.
//! assert_eq!(spec.bucket_width_s, 1e-3);
//! ```

use crate::error::SchemaError;
use serde::{Deserialize, Serialize};

/// Fixed-resolution linear histogram configuration for streaming latency
/// metrics.
///
/// Buckets are `[k·w, (k+1)·w)` for bucket width `w =`
/// [`bucket_width_s`](Self::bucket_width_s); storage grows on demand up to
/// [`max_buckets`](Self::max_buckets) buckets, beyond which samples clamp
/// into the final bucket (percentile error is then bounded by the tracked
/// exact maximum rather than the bucket width). Percentiles reported from
/// the histogram are within one bucket width of the exact nearest-rank
/// value for unclamped samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistogramSpec {
    /// Bucket width, in seconds; strictly positive and finite.
    pub bucket_width_s: f64,
    /// Maximum number of buckets storage may grow to; at least one.
    pub max_buckets: usize,
}

impl HistogramSpec {
    /// A histogram with the given bucket width and the default size cap.
    pub fn with_width(bucket_width_s: f64) -> Self {
        Self {
            bucket_width_s,
            ..Self::default()
        }
    }

    /// Checks the configuration is usable.
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError::Invalid`] when the bucket width is not
    /// strictly positive and finite, or the bucket cap is zero.
    pub fn validate(&self) -> Result<(), SchemaError> {
        if !(self.bucket_width_s.is_finite() && self.bucket_width_s > 0.0) {
            return Err(SchemaError::Invalid {
                field: "bucket_width_s",
                reason: "histogram bucket width must be strictly positive and finite".to_string(),
            });
        }
        if self.max_buckets == 0 {
            return Err(SchemaError::Invalid {
                field: "max_buckets",
                reason: "a histogram needs at least one bucket".to_string(),
            });
        }
        Ok(())
    }
}

impl Default for HistogramSpec {
    /// 1 ms buckets capped at 200 000 buckets: sub-millisecond percentile
    /// error over a 200 s latency range in ~1.6 MB per histogram worst
    /// case (and far less in practice — storage grows to the observed
    /// maximum, not the cap).
    fn default() -> Self {
        Self {
            bucket_width_s: 1e-3,
            max_buckets: 200_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_valid() {
        assert!(HistogramSpec::default().validate().is_ok());
    }

    #[test]
    fn rejects_degenerate_widths_and_caps() {
        assert!(HistogramSpec::with_width(0.0).validate().is_err());
        assert!(HistogramSpec::with_width(-1.0).validate().is_err());
        assert!(HistogramSpec::with_width(f64::NAN).validate().is_err());
        assert!(HistogramSpec::with_width(f64::INFINITY).validate().is_err());
        let spec = HistogramSpec {
            bucket_width_s: 1e-3,
            max_buckets: 0,
        };
        assert!(spec.validate().is_err());
    }

    #[test]
    fn with_width_keeps_the_default_cap() {
        let spec = HistogramSpec::with_width(0.5);
        assert_eq!(spec.bucket_width_s, 0.5);
        assert_eq!(spec.max_buckets, HistogramSpec::default().max_buckets);
    }
}
