//! `RAGSchema`: the structured workload abstraction of the RAGO paper (§3).
//!
//! A [`RagSchema`] captures the performance-relevant attributes of a RAG
//! serving workload: which pipeline components are present (document encoder,
//! query rewriter, retrieval, reranker, generative LLM), how large each model
//! is, and how the retrieval is configured (database size, vector
//! dimensionality, queries per retrieval, iterative-retrieval frequency). The
//! four representative paradigms of the paper (Table 3) are provided as
//! presets.
//!
//! # Examples
//!
//! ```
//! use rago_schema::{presets, Stage};
//!
//! // Case I: hyperscale retrieval in front of an 8B generative LLM.
//! let schema = presets::case1_hyperscale(presets::LlmSize::B8, 1);
//! let stages = schema.pipeline();
//! assert_eq!(stages.first(), Some(&Stage::Retrieval));
//! assert_eq!(stages.last(), Some(&Stage::Decode));
//! assert!(schema.validate().is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod fleet;
pub mod metrics;
pub mod model;
pub mod presets;
pub mod retrieval;
pub mod schema;
pub mod sequence;
pub mod slo;
pub mod stage;

pub use error::SchemaError;
pub use fleet::{FleetConfig, KvTransferModel, PoolRole, PoolSpec, RouterPolicy};
pub use metrics::HistogramSpec;
pub use model::{LlmArchitecture, ModelConfig, Quantization};
pub use presets::LlmSize;
pub use retrieval::{RetrievalConfig, SearchMode};
pub use schema::{RagSchema, RagSchemaBuilder};
pub use sequence::SequenceProfile;
pub use slo::SloTarget;
pub use stage::{Stage, StageClass};
