//! The [`RagSchema`] type: a complete description of one RAG serving workload.

use crate::error::SchemaError;
use crate::model::ModelConfig;
use crate::retrieval::RetrievalConfig;
use crate::sequence::SequenceProfile;
use crate::stage::Stage;
use serde::{Deserialize, Serialize};

/// A complete RAGSchema (Table 1 / Figure 3 of the paper): the set of pipeline
/// components present, their model configurations, the retrieval
/// configuration, and the sequence-length profile.
///
/// Optional components (`document_encoder`, `query_rewriter`, `reranker`) are
/// `None` when the paradigm omits them; `retrieval` is `None` only for
/// LLM-only baselines.
///
/// # Examples
///
/// ```
/// use rago_schema::{RagSchema, ModelConfig, RetrievalConfig, SequenceProfile, Stage};
///
/// let schema = RagSchema::builder("my-rag")
///     .generative_llm(ModelConfig::llama3_8b())
///     .retrieval(RetrievalConfig::hyperscale_64b())
///     .sequence(SequenceProfile::paper_default())
///     .build()?;
/// assert_eq!(schema.pipeline(), vec![Stage::Retrieval, Stage::Prefix, Stage::Decode]);
/// # Ok::<(), rago_schema::SchemaError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RagSchema {
    /// Workload name used in reports.
    pub name: String,
    /// Database/document encoder (present in long-context paradigms).
    pub document_encoder: Option<ModelConfig>,
    /// Generative query rewriter (pre-processing), if applied.
    pub query_rewriter: Option<ModelConfig>,
    /// Retrieval-result reranker (post-processing), if applied.
    pub reranker: Option<ModelConfig>,
    /// The main generative LLM producing the answer.
    pub generative_llm: ModelConfig,
    /// Retrieval configuration, or `None` for an LLM-only system.
    pub retrieval: Option<RetrievalConfig>,
    /// Sequence-length profile of requests.
    pub sequence: SequenceProfile,
    /// Number of tokens produced by the query rewriter's decode phase (the
    /// paper rewrites a 32-token question into another 32-token question).
    pub rewriter_output_tokens: u32,
    /// Number of candidate passages scored by the reranker per request (the
    /// paper reranks 16 candidates down to the top 5).
    pub rerank_candidates: u32,
}

impl RagSchema {
    /// Starts building a schema with the given name.
    pub fn builder(name: impl Into<String>) -> RagSchemaBuilder {
        RagSchemaBuilder::new(name)
    }

    /// An LLM-only workload (no retrieval, no auxiliary models) answering the
    /// same questions — the comparison system of Figure 5.
    pub fn llm_only(name: impl Into<String>, llm: ModelConfig, sequence: SequenceProfile) -> Self {
        Self {
            name: name.into(),
            document_encoder: None,
            query_rewriter: None,
            reranker: None,
            generative_llm: llm,
            retrieval: None,
            sequence,
            rewriter_output_tokens: 0,
            rerank_candidates: 0,
        }
    }

    /// The ordered list of stages this workload executes (Figure 3), derived
    /// from which components are present.
    pub fn pipeline(&self) -> Vec<Stage> {
        let mut stages = Vec::with_capacity(7);
        if self.document_encoder.is_some() {
            stages.push(Stage::DatabaseEncode);
        }
        if self.query_rewriter.is_some() {
            stages.push(Stage::RewritePrefix);
            stages.push(Stage::RewriteDecode);
        }
        if self.retrieval.is_some() {
            stages.push(Stage::Retrieval);
        }
        if self.reranker.is_some() {
            stages.push(Stage::Rerank);
        }
        stages.push(Stage::Prefix);
        stages.push(Stage::Decode);
        stages
    }

    /// The model serving a given stage, if that stage is an inference stage
    /// present in this schema.
    pub fn model_for_stage(&self, stage: Stage) -> Option<&ModelConfig> {
        match stage {
            Stage::DatabaseEncode => self.document_encoder.as_ref(),
            Stage::RewritePrefix | Stage::RewriteDecode => self.query_rewriter.as_ref(),
            Stage::Rerank => self.reranker.as_ref(),
            Stage::Prefix | Stage::Decode => Some(&self.generative_llm),
            Stage::Retrieval => None,
        }
    }

    /// Whether the workload performs retrieval at all.
    pub fn has_retrieval(&self) -> bool {
        self.retrieval.is_some()
    }

    /// Whether the workload performs iterative retrieval during decoding.
    pub fn is_iterative(&self) -> bool {
        self.retrieval
            .as_ref()
            .map(RetrievalConfig::is_iterative)
            .unwrap_or(false)
    }

    /// The prompt length of the main LLM's prefix phase: with retrieval the
    /// question plus retrieved passages, without retrieval just the question.
    pub fn main_prefix_tokens(&self) -> u32 {
        if self.has_retrieval() {
            self.sequence.prefix_tokens()
        } else {
            self.sequence.llm_only_prefix_tokens()
        }
    }

    /// Validates the schema and all nested configurations.
    ///
    /// # Errors
    ///
    /// Returns a [`SchemaError`] if any component configuration is invalid or
    /// the combination is inconsistent (e.g. a reranker without retrieval, or
    /// a document encoder without a long context to encode).
    pub fn validate(&self) -> Result<(), SchemaError> {
        self.generative_llm.validate()?;
        self.sequence.validate()?;
        if let Some(enc) = &self.document_encoder {
            enc.validate()?;
            if self.sequence.long_context_tokens == 0 {
                return Err(SchemaError::Inconsistent {
                    reason: "a document encoder is configured but the sequence profile has no \
                             long context to encode"
                        .into(),
                });
            }
            if self.retrieval.is_none() {
                return Err(SchemaError::Inconsistent {
                    reason: "a document encoder is configured but retrieval is disabled".into(),
                });
            }
        }
        if let Some(rw) = &self.query_rewriter {
            rw.validate()?;
            if rw.architecture.is_encoder {
                return Err(SchemaError::Inconsistent {
                    reason: "the query rewriter must be a generative (decoder) model".into(),
                });
            }
            if self.rewriter_output_tokens == 0 {
                return Err(SchemaError::Invalid {
                    field: "rewriter_output_tokens",
                    reason: "must be at least 1 when a query rewriter is present".into(),
                });
            }
        }
        if let Some(rr) = &self.reranker {
            rr.validate()?;
            if self.retrieval.is_none() {
                return Err(SchemaError::Inconsistent {
                    reason: "a reranker is configured but retrieval is disabled".into(),
                });
            }
            if self.rerank_candidates == 0 {
                return Err(SchemaError::Invalid {
                    field: "rerank_candidates",
                    reason: "must be at least 1 when a reranker is present".into(),
                });
            }
        }
        if let Some(r) = &self.retrieval {
            r.validate()?;
            if let Some(rr) = r.top_k.checked_mul(1) {
                if self.reranker.is_some() && self.rerank_candidates < rr {
                    return Err(SchemaError::Inconsistent {
                        reason: format!(
                            "the reranker scores {} candidates but retrieval returns top-{}",
                            self.rerank_candidates, r.top_k
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

/// Builder for [`RagSchema`] (C-BUILDER).
#[derive(Debug, Clone)]
pub struct RagSchemaBuilder {
    name: String,
    document_encoder: Option<ModelConfig>,
    query_rewriter: Option<ModelConfig>,
    reranker: Option<ModelConfig>,
    generative_llm: Option<ModelConfig>,
    retrieval: Option<RetrievalConfig>,
    sequence: SequenceProfile,
    rewriter_output_tokens: u32,
    rerank_candidates: u32,
}

impl RagSchemaBuilder {
    /// Creates a new builder for a workload called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            document_encoder: None,
            query_rewriter: None,
            reranker: None,
            generative_llm: None,
            retrieval: None,
            sequence: SequenceProfile::paper_default(),
            rewriter_output_tokens: 32,
            rerank_candidates: 16,
        }
    }

    /// Sets the main generative LLM (required).
    pub fn generative_llm(mut self, model: ModelConfig) -> Self {
        self.generative_llm = Some(model);
        self
    }

    /// Adds a database/document encoder.
    pub fn document_encoder(mut self, model: ModelConfig) -> Self {
        self.document_encoder = Some(model);
        self
    }

    /// Adds a generative query rewriter producing `output_tokens` tokens.
    pub fn query_rewriter(mut self, model: ModelConfig, output_tokens: u32) -> Self {
        self.query_rewriter = Some(model);
        self.rewriter_output_tokens = output_tokens;
        self
    }

    /// Adds a retrieval-result reranker scoring `candidates` passages.
    pub fn reranker(mut self, model: ModelConfig, candidates: u32) -> Self {
        self.reranker = Some(model);
        self.rerank_candidates = candidates;
        self
    }

    /// Sets the retrieval configuration.
    pub fn retrieval(mut self, retrieval: RetrievalConfig) -> Self {
        self.retrieval = Some(retrieval);
        self
    }

    /// Sets the sequence-length profile.
    pub fn sequence(mut self, sequence: SequenceProfile) -> Self {
        self.sequence = sequence;
        self
    }

    /// Builds and validates the schema.
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError::Invalid`] if the generative LLM was never set,
    /// or any validation error from [`RagSchema::validate`].
    pub fn build(self) -> Result<RagSchema, SchemaError> {
        let generative_llm = self.generative_llm.ok_or(SchemaError::Invalid {
            field: "generative_llm",
            reason: "a RAGSchema requires a main generative LLM".into(),
        })?;
        let schema = RagSchema {
            name: self.name,
            document_encoder: self.document_encoder,
            query_rewriter: self.query_rewriter,
            reranker: self.reranker,
            generative_llm,
            retrieval: self.retrieval,
            sequence: self.sequence,
            rewriter_output_tokens: self.rewriter_output_tokens,
            rerank_candidates: self.rerank_candidates,
        };
        schema.validate()?;
        Ok(schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;

    fn basic() -> RagSchema {
        RagSchema::builder("basic")
            .generative_llm(ModelConfig::llama3_8b())
            .retrieval(RetrievalConfig::hyperscale_64b())
            .build()
            .unwrap()
    }

    #[test]
    fn minimal_pipeline_is_retrieval_prefix_decode() {
        assert_eq!(
            basic().pipeline(),
            vec![Stage::Retrieval, Stage::Prefix, Stage::Decode]
        );
    }

    #[test]
    fn llm_only_pipeline_has_no_retrieval() {
        let s = RagSchema::llm_only(
            "llm-only",
            ModelConfig::llama3_70b(),
            SequenceProfile::paper_default(),
        );
        assert_eq!(s.pipeline(), vec![Stage::Prefix, Stage::Decode]);
        assert!(!s.has_retrieval());
        assert_eq!(s.main_prefix_tokens(), 32);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn full_pipeline_order_matches_figure3() {
        let s = RagSchema::builder("full")
            .document_encoder(ModelConfig::encoder_120m())
            .query_rewriter(ModelConfig::llama3_8b(), 32)
            .reranker(ModelConfig::encoder_120m(), 16)
            .generative_llm(ModelConfig::llama3_70b())
            .retrieval(RetrievalConfig::long_context(1_000_000, 128, 768))
            .sequence(SequenceProfile::long_context(1_000_000))
            .build()
            .unwrap();
        assert_eq!(
            s.pipeline(),
            vec![
                Stage::DatabaseEncode,
                Stage::RewritePrefix,
                Stage::RewriteDecode,
                Stage::Retrieval,
                Stage::Rerank,
                Stage::Prefix,
                Stage::Decode
            ]
        );
    }

    #[test]
    fn model_for_stage_resolution() {
        let s = basic();
        assert!(s.model_for_stage(Stage::Prefix).is_some());
        assert!(s.model_for_stage(Stage::Retrieval).is_none());
        assert!(s.model_for_stage(Stage::Rerank).is_none());
        assert_eq!(s.model_for_stage(Stage::Decode).unwrap().name, "Llama3-8B");
    }

    #[test]
    fn builder_requires_generative_llm() {
        let err = RagSchema::builder("x")
            .retrieval(RetrievalConfig::hyperscale_64b())
            .build()
            .unwrap_err();
        assert!(matches!(err, SchemaError::Invalid { field, .. } if field == "generative_llm"));
    }

    #[test]
    fn encoder_without_long_context_is_inconsistent() {
        let err = RagSchema::builder("x")
            .document_encoder(ModelConfig::encoder_120m())
            .generative_llm(ModelConfig::llama3_8b())
            .retrieval(RetrievalConfig::hyperscale_64b())
            .build()
            .unwrap_err();
        assert!(matches!(err, SchemaError::Inconsistent { .. }));
    }

    #[test]
    fn reranker_without_retrieval_is_inconsistent() {
        let err = RagSchema::builder("x")
            .reranker(ModelConfig::encoder_120m(), 16)
            .generative_llm(ModelConfig::llama3_8b())
            .build()
            .unwrap_err();
        assert!(matches!(err, SchemaError::Inconsistent { .. }));
    }

    #[test]
    fn reranker_candidate_count_must_cover_top_k() {
        let err = RagSchema::builder("x")
            .reranker(ModelConfig::encoder_120m(), 2)
            .generative_llm(ModelConfig::llama3_8b())
            .retrieval(RetrievalConfig::hyperscale_64b()) // top_k = 5 > 2
            .build()
            .unwrap_err();
        assert!(matches!(err, SchemaError::Inconsistent { .. }));
    }

    #[test]
    fn iterative_flag_follows_retrieval_config() {
        let s = RagSchema::builder("iter")
            .generative_llm(ModelConfig::llama3_70b())
            .retrieval(RetrievalConfig::hyperscale_64b().with_retrievals_per_sequence(4))
            .build()
            .unwrap();
        assert!(s.is_iterative());
        assert!(!basic().is_iterative());
    }

    #[test]
    fn main_prefix_tokens_with_retrieval() {
        assert_eq!(basic().main_prefix_tokens(), 532);
    }
}
