//! RAG pipeline stages (Figure 3 of the paper).
//!
//! A "stage" is the execution of one RAG pipeline component. The general
//! pipeline is:
//!
//! ```text
//! Database Encode → Rewrite(prefix) → Rewrite(decode) → Retrieval → Rerank → Prefix → Decode
//! ```
//!
//! where every stage except the main LLM's `Prefix` and `Decode` is optional.
//! Iterative retrieval re-enters `Retrieval` + `Prefix` during `Decode`.

use serde::{Deserialize, Serialize};

/// One component execution in the RAG pipeline, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Stage {
    /// Encoding of a user-provided document collection into database vectors
    /// (present in long-context paradigms, Case II).
    DatabaseEncode,
    /// Prefix (prompt-processing) phase of the query rewriter LLM.
    RewritePrefix,
    /// Autoregressive decode phase of the query rewriter LLM.
    RewriteDecode,
    /// Vector-search retrieval over the knowledge database (runs on CPUs).
    Retrieval,
    /// Scoring of retrieved candidates by the reranker model.
    Rerank,
    /// Prefix (prompt-processing) phase of the main generative LLM.
    Prefix,
    /// Token-generation (decode) phase of the main generative LLM.
    Decode,
}

impl Stage {
    /// All stages in canonical pipeline order.
    pub const PIPELINE_ORDER: [Stage; 7] = [
        Stage::DatabaseEncode,
        Stage::RewritePrefix,
        Stage::RewriteDecode,
        Stage::Retrieval,
        Stage::Rerank,
        Stage::Prefix,
        Stage::Decode,
    ];

    /// The broad class of the stage, which determines which cost model and
    /// which hardware pool (XPU vs CPU) serves it.
    pub fn class(self) -> StageClass {
        match self {
            Stage::Retrieval => StageClass::Retrieval,
            Stage::RewriteDecode | Stage::Decode => StageClass::AutoregressiveInference,
            Stage::DatabaseEncode | Stage::RewritePrefix | Stage::Rerank | Stage::Prefix => {
                StageClass::BatchInference
            }
        }
    }

    /// Whether this stage runs on XPU accelerators (retrieval runs on CPUs).
    pub fn runs_on_xpu(self) -> bool {
        self.class() != StageClass::Retrieval
    }

    /// Whether the stage contributes to time-to-first-token (all stages up to
    /// and including the main LLM prefix do; decode does not).
    pub fn affects_ttft(self) -> bool {
        self != Stage::Decode
    }

    /// Whether the paper's placement rule allows this stage to be collocated
    /// with neighbouring stages: every XPU stage up to and including the main
    /// LLM prefix may be collocated; the main decode is always disaggregated
    /// and retrieval always runs on CPU servers (Figure 13).
    pub fn collocatable(self) -> bool {
        self.runs_on_xpu() && self != Stage::Decode
    }

    /// A short lowercase identifier used in reports and schedules.
    pub fn short_name(self) -> &'static str {
        match self {
            Stage::DatabaseEncode => "encode",
            Stage::RewritePrefix => "rewrite-prefix",
            Stage::RewriteDecode => "rewrite-decode",
            Stage::Retrieval => "retrieval",
            Stage::Rerank => "rerank",
            Stage::Prefix => "prefix",
            Stage::Decode => "decode",
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Broad workload class of a stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StageClass {
    /// Compute-intensive batch inference over full sequences (encoder, prefix,
    /// reranker) — runs on XPUs and benefits from large batches.
    BatchInference,
    /// Memory-bound autoregressive token generation — runs on XPUs with
    /// continuous batching.
    AutoregressiveInference,
    /// Vector-search retrieval — runs on CPU host servers.
    Retrieval,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_order_is_sorted() {
        let mut sorted = Stage::PIPELINE_ORDER.to_vec();
        sorted.sort();
        assert_eq!(sorted.as_slice(), &Stage::PIPELINE_ORDER);
    }

    #[test]
    fn retrieval_runs_on_cpu_everything_else_on_xpu() {
        for s in Stage::PIPELINE_ORDER {
            assert_eq!(s.runs_on_xpu(), s != Stage::Retrieval);
        }
    }

    #[test]
    fn only_decode_does_not_affect_ttft() {
        let non_ttft: Vec<_> = Stage::PIPELINE_ORDER
            .into_iter()
            .filter(|s| !s.affects_ttft())
            .collect();
        assert_eq!(non_ttft, vec![Stage::Decode]);
    }

    #[test]
    fn decode_and_retrieval_are_not_collocatable() {
        assert!(!Stage::Decode.collocatable());
        assert!(!Stage::Retrieval.collocatable());
        assert!(Stage::Prefix.collocatable());
        assert!(Stage::RewriteDecode.collocatable());
        assert!(Stage::DatabaseEncode.collocatable());
    }

    #[test]
    fn classes_match_the_paper_description() {
        assert_eq!(Stage::Prefix.class(), StageClass::BatchInference);
        assert_eq!(Stage::Rerank.class(), StageClass::BatchInference);
        assert_eq!(Stage::Decode.class(), StageClass::AutoregressiveInference);
        assert_eq!(
            Stage::RewriteDecode.class(),
            StageClass::AutoregressiveInference
        );
        assert_eq!(Stage::Retrieval.class(), StageClass::Retrieval);
    }

    #[test]
    fn display_uses_short_names() {
        assert_eq!(Stage::RewritePrefix.to_string(), "rewrite-prefix");
        assert_eq!(Stage::DatabaseEncode.to_string(), "encode");
    }
}
