//! Service-level objectives for RAG serving.
//!
//! The paper's evaluation reports TTFT and TPOT as continuous trade-off
//! curves; a production deployment instead fixes *targets* for both and asks
//! what fraction of requests meets them (SLO attainment) and how much
//! traffic the system sustains while still meeting them (goodput). An
//! [`SloTarget`] captures those targets so the dynamic serving simulation in
//! `rago-serving-sim` and the SLO-aware ranking in `rago-core` can score
//! schedules by goodput instead of steady-state throughput alone.

use crate::error::SchemaError;
use serde::{Deserialize, Serialize};

/// A latency service-level objective for one serving deployment.
///
/// A request *meets* the SLO when both its time-to-first-token and its
/// time-per-output-token are within the targets; a deployment meets the SLO
/// when the fraction of requests meeting it is at least
/// [`attainment`](Self::attainment).
///
/// # Examples
///
/// ```
/// use rago_schema::SloTarget;
///
/// let slo = SloTarget::new(2.0, 0.05);
/// assert!(slo.meets(0.5, 0.02));
/// assert!(!slo.meets(2.5, 0.02)); // TTFT blown
/// assert!(!slo.meets(0.5, 0.08)); // TPOT blown
/// assert!(slo.validate().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloTarget {
    /// Maximum acceptable time-to-first-token, in seconds.
    pub ttft_s: f64,
    /// Maximum acceptable time-per-output-token, in seconds.
    pub tpot_s: f64,
    /// Required fraction of requests meeting both targets, in `(0, 1]`.
    pub attainment: f64,
}

impl SloTarget {
    /// An SLO with the given TTFT and TPOT targets and the default 90 %
    /// attainment requirement.
    pub fn new(ttft_s: f64, tpot_s: f64) -> Self {
        Self {
            ttft_s,
            tpot_s,
            attainment: 0.9,
        }
    }

    /// A chatbot-style default: first token within 2 s, then at least
    /// 20 tokens/s, for 90 % of requests — the regime the paper's QA/chatbot
    /// workload characterization targets.
    pub fn paper_default() -> Self {
        Self::new(2.0, 0.05)
    }

    /// Sets the required attainment fraction.
    pub fn with_attainment(mut self, attainment: f64) -> Self {
        self.attainment = attainment;
        self
    }

    /// Whether a request with the given TTFT and TPOT meets both targets.
    pub fn meets(&self, ttft_s: f64, tpot_s: f64) -> bool {
        ttft_s <= self.ttft_s && tpot_s <= self.tpot_s
    }

    /// Validates the targets.
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError::Invalid`] when a latency target is not positive
    /// and finite, or the attainment fraction is outside `(0, 1]`.
    pub fn validate(&self) -> Result<(), SchemaError> {
        if !(self.ttft_s > 0.0 && self.ttft_s.is_finite()) {
            return Err(SchemaError::Invalid {
                field: "ttft_s",
                reason: "the TTFT target must be positive and finite".into(),
            });
        }
        if !(self.tpot_s > 0.0 && self.tpot_s.is_finite()) {
            return Err(SchemaError::Invalid {
                field: "tpot_s",
                reason: "the TPOT target must be positive and finite".into(),
            });
        }
        if !(self.attainment > 0.0 && self.attainment <= 1.0) {
            return Err(SchemaError::Invalid {
                field: "attainment",
                reason: "the attainment fraction must be in (0, 1]".into(),
            });
        }
        Ok(())
    }
}

impl Default for SloTarget {
    fn default() -> Self {
        SloTarget::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_validates() {
        let slo = SloTarget::paper_default();
        assert!(slo.validate().is_ok());
        assert!((slo.attainment - 0.9).abs() < 1e-12);
    }

    #[test]
    fn meets_is_a_conjunction() {
        let slo = SloTarget::new(1.0, 0.01);
        assert!(slo.meets(1.0, 0.01)); // boundary counts as meeting
        assert!(!slo.meets(1.0 + 1e-9, 0.01));
        assert!(!slo.meets(1.0, 0.01 + 1e-9));
    }

    #[test]
    fn validation_rejects_degenerate_targets() {
        assert!(SloTarget::new(0.0, 0.05).validate().is_err());
        assert!(SloTarget::new(2.0, -1.0).validate().is_err());
        assert!(SloTarget::new(f64::INFINITY, 0.05).validate().is_err());
        assert!(SloTarget::new(2.0, 0.05)
            .with_attainment(0.0)
            .validate()
            .is_err());
        assert!(SloTarget::new(2.0, 0.05)
            .with_attainment(1.5)
            .validate()
            .is_err());
        assert!(SloTarget::new(2.0, 0.05)
            .with_attainment(1.0)
            .validate()
            .is_ok());
    }
}
