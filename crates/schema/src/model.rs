//! Model configurations: parameter counts, transformer architecture shapes,
//! and quantization.
//!
//! The RAGO cost model only needs parameter counts and layer shapes — no
//! weights. We ship architecture descriptors for the Llama-3 model family
//! (1B/8B/70B/405B) used by the paper, the 120M sentence-transformer style
//! encoder used as document encoder and reranker, and a generic constructor
//! that derives a plausible architecture from an arbitrary parameter count.

use crate::error::SchemaError;
use serde::{Deserialize, Serialize};

/// Weight quantization assumed for serving.
///
/// The paper quantizes all models to 8-bit integers, so accelerator memory in
/// bytes equals the parameter count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Quantization {
    /// 8-bit integer weights (1 byte per parameter) — the paper's default.
    #[default]
    Int8,
    /// 16-bit brain-float weights (2 bytes per parameter).
    Bf16,
    /// 32-bit float weights (4 bytes per parameter).
    Fp32,
}

impl Quantization {
    /// Bytes of accelerator memory per model parameter.
    pub fn bytes_per_param(self) -> f64 {
        match self {
            Quantization::Int8 => 1.0,
            Quantization::Bf16 => 2.0,
            Quantization::Fp32 => 4.0,
        }
    }
}

/// Transformer layer shape used to build the operator graph of the inference
/// cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LlmArchitecture {
    /// Hidden (model) dimension.
    pub hidden_dim: u32,
    /// Number of transformer layers.
    pub num_layers: u32,
    /// Number of attention heads.
    pub num_heads: u32,
    /// Number of key/value heads (grouped-query attention); equals
    /// `num_heads` for multi-head attention.
    pub num_kv_heads: u32,
    /// FFN intermediate dimension.
    pub ffn_dim: u32,
    /// Vocabulary size.
    pub vocab_size: u32,
    /// Whether the model is a bidirectional encoder (no KV cache, no
    /// autoregressive decode) rather than a causal decoder.
    pub is_encoder: bool,
}

impl LlmArchitecture {
    /// Dimension of each attention head.
    pub fn head_dim(&self) -> u32 {
        self.hidden_dim / self.num_heads
    }

    /// Bytes of KV cache per token per sequence under the given quantization
    /// (keys + values across all layers, using the KV-head dimensionality).
    pub fn kv_cache_bytes_per_token(&self, quant: Quantization) -> f64 {
        if self.is_encoder {
            return 0.0;
        }
        let kv_dim = f64::from(self.head_dim()) * f64::from(self.num_kv_heads);
        2.0 * kv_dim * f64::from(self.num_layers) * quant.bytes_per_param()
    }

    /// Approximate parameter count implied by the architecture (attention +
    /// FFN + embeddings).
    pub fn implied_params(&self) -> f64 {
        let h = f64::from(self.hidden_dim);
        let kv_dim = f64::from(self.head_dim()) * f64::from(self.num_kv_heads);
        let attn = h * h + 2.0 * h * kv_dim + h * h; // q, k, v, o projections
                                                     // Llama-style gated FFN has three matrices; encoders have two.
        let ffn_mats = if self.is_encoder { 2.0 } else { 3.0 };
        let ffn = ffn_mats * h * f64::from(self.ffn_dim);
        let per_layer = attn + ffn;
        per_layer * f64::from(self.num_layers) + h * f64::from(self.vocab_size)
    }
}

/// A model in the RAG pipeline: a name, a parameter count, an architecture
/// shape, and a serving quantization.
///
/// # Examples
///
/// ```
/// use rago_schema::ModelConfig;
/// let m = ModelConfig::llama3_8b();
/// assert_eq!(m.params, 8.0e9);
/// assert!(m.weight_bytes() >= 8.0e9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable name (e.g. `"Llama3-8B"`).
    pub name: String,
    /// Parameter count.
    pub params: f64,
    /// Layer shape used by the operator-level cost model.
    pub architecture: LlmArchitecture,
    /// Serving quantization.
    pub quantization: Quantization,
}

impl ModelConfig {
    /// Llama-3 1B class model.
    pub fn llama3_1b() -> Self {
        Self {
            name: "Llama3-1B".into(),
            params: 1.0e9,
            architecture: LlmArchitecture {
                hidden_dim: 2048,
                num_layers: 16,
                num_heads: 32,
                num_kv_heads: 8,
                ffn_dim: 8192,
                vocab_size: 128_256,
                is_encoder: false,
            },
            quantization: Quantization::Int8,
        }
    }

    /// Llama-3 8B class model.
    pub fn llama3_8b() -> Self {
        Self {
            name: "Llama3-8B".into(),
            params: 8.0e9,
            architecture: LlmArchitecture {
                hidden_dim: 4096,
                num_layers: 32,
                num_heads: 32,
                num_kv_heads: 8,
                ffn_dim: 14336,
                vocab_size: 128_256,
                is_encoder: false,
            },
            quantization: Quantization::Int8,
        }
    }

    /// Llama-3 70B class model.
    pub fn llama3_70b() -> Self {
        Self {
            name: "Llama3-70B".into(),
            params: 70.0e9,
            architecture: LlmArchitecture {
                hidden_dim: 8192,
                num_layers: 80,
                num_heads: 64,
                num_kv_heads: 8,
                ffn_dim: 28672,
                vocab_size: 128_256,
                is_encoder: false,
            },
            quantization: Quantization::Int8,
        }
    }

    /// Llama-3 405B class model.
    pub fn llama3_405b() -> Self {
        Self {
            name: "Llama3-405B".into(),
            params: 405.0e9,
            architecture: LlmArchitecture {
                hidden_dim: 16384,
                num_layers: 126,
                num_heads: 128,
                num_kv_heads: 8,
                ffn_dim: 53248,
                vocab_size: 128_256,
                is_encoder: false,
            },
            quantization: Quantization::Int8,
        }
    }

    /// The 120M-parameter sentence-transformer style bidirectional encoder
    /// used by the paper as document encoder and retrieval reranker
    /// (768-dimensional embeddings).
    pub fn encoder_120m() -> Self {
        Self {
            name: "Encoder-120M".into(),
            params: 120.0e6,
            architecture: LlmArchitecture {
                hidden_dim: 768,
                num_layers: 12,
                num_heads: 12,
                num_kv_heads: 12,
                ffn_dim: 3072,
                vocab_size: 30_522,
                is_encoder: true,
            },
            quantization: Quantization::Int8,
        }
    }

    /// Derives a plausible decoder-only architecture for an arbitrary
    /// parameter count by interpolating within the Llama-3 family. Useful for
    /// sensitivity sweeps over model size.
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError::Invalid`] if `params` is not strictly positive.
    pub fn decoder_with_params(name: impl Into<String>, params: f64) -> Result<Self, SchemaError> {
        if !(params > 0.0 && params.is_finite()) {
            return Err(SchemaError::Invalid {
                field: "params",
                reason: format!("parameter count must be positive, got {params}"),
            });
        }
        // Scale hidden dim ~ params^(1/3), layers ~ params^(1/3), keeping
        // Llama-like aspect ratios; snap to multiples of 128 / whole layers.
        let anchor = Self::llama3_8b();
        let ratio = (params / anchor.params).powf(1.0 / 3.0);
        let hidden = ((f64::from(anchor.architecture.hidden_dim) * ratio) / 128.0).round() * 128.0;
        let hidden = hidden.clamp(256.0, 32768.0) as u32;
        let layers = (f64::from(anchor.architecture.num_layers) * ratio)
            .round()
            .clamp(2.0, 256.0) as u32;
        let heads = (hidden / 128).max(1);
        let arch = LlmArchitecture {
            hidden_dim: hidden,
            num_layers: layers,
            num_heads: heads,
            num_kv_heads: heads.clamp(1, 8),
            ffn_dim: hidden * 7 / 2,
            vocab_size: anchor.architecture.vocab_size,
            is_encoder: false,
        };
        Ok(Self {
            name: name.into(),
            params,
            architecture: arch,
            quantization: Quantization::Int8,
        })
    }

    /// Overrides the quantization.
    pub fn with_quantization(mut self, quantization: Quantization) -> Self {
        self.quantization = quantization;
        self
    }

    /// Total weight bytes under the configured quantization.
    pub fn weight_bytes(&self) -> f64 {
        self.params * self.quantization.bytes_per_param()
    }

    /// KV-cache bytes per token per sequence (zero for encoders).
    pub fn kv_cache_bytes_per_token(&self) -> f64 {
        self.architecture
            .kv_cache_bytes_per_token(self.quantization)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError::Invalid`] when the parameter count is not
    /// positive or the architecture has zero-sized dimensions or a head count
    /// that does not divide the hidden dimension.
    pub fn validate(&self) -> Result<(), SchemaError> {
        if !(self.params > 0.0 && self.params.is_finite()) {
            return Err(SchemaError::Invalid {
                field: "params",
                reason: format!("must be positive, got {}", self.params),
            });
        }
        let a = &self.architecture;
        if a.hidden_dim == 0 || a.num_layers == 0 || a.num_heads == 0 || a.ffn_dim == 0 {
            return Err(SchemaError::Invalid {
                field: "architecture",
                reason: "dimensions must be non-zero".to_string(),
            });
        }
        if a.hidden_dim % a.num_heads != 0 {
            return Err(SchemaError::Invalid {
                field: "architecture",
                reason: format!(
                    "hidden_dim {} must be divisible by num_heads {}",
                    a.hidden_dim, a.num_heads
                ),
            });
        }
        if a.num_kv_heads == 0 || a.num_kv_heads > a.num_heads {
            return Err(SchemaError::Invalid {
                field: "architecture",
                reason: "num_kv_heads must be in [1, num_heads]".to_string(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama_family_presets_validate() {
        for m in [
            ModelConfig::llama3_1b(),
            ModelConfig::llama3_8b(),
            ModelConfig::llama3_70b(),
            ModelConfig::llama3_405b(),
            ModelConfig::encoder_120m(),
        ] {
            assert!(m.validate().is_ok(), "{} failed validation", m.name);
        }
    }

    #[test]
    fn implied_params_are_in_the_right_ballpark() {
        // The architecture-implied parameter count should be within ~40% of
        // the nominal size for every preset (embeddings/layer-norms ignored).
        for m in [
            ModelConfig::llama3_1b(),
            ModelConfig::llama3_8b(),
            ModelConfig::llama3_70b(),
            ModelConfig::llama3_405b(),
        ] {
            let implied = m.architecture.implied_params();
            let ratio = implied / m.params;
            assert!(
                (0.6..=1.6).contains(&ratio),
                "{}: implied {:.2e} vs nominal {:.2e}",
                m.name,
                implied,
                m.params
            );
        }
    }

    #[test]
    fn int8_weight_bytes_equal_params() {
        let m = ModelConfig::llama3_70b();
        assert_eq!(m.weight_bytes(), 70.0e9);
        let bf16 = m.with_quantization(Quantization::Bf16);
        assert_eq!(bf16.weight_bytes(), 140.0e9);
    }

    #[test]
    fn kv_cache_per_token_is_reasonable_for_8b() {
        // 8B with GQA (8 KV heads x 128 dim x 32 layers x 2 (K and V) x 1 byte).
        let m = ModelConfig::llama3_8b();
        let expected = 2.0 * 8.0 * 128.0 * 32.0;
        assert!((m.kv_cache_bytes_per_token() - expected).abs() < 1e-6);
    }

    #[test]
    fn encoder_has_no_kv_cache() {
        assert_eq!(ModelConfig::encoder_120m().kv_cache_bytes_per_token(), 0.0);
    }

    #[test]
    fn derived_decoder_scales_with_params() {
        let small = ModelConfig::decoder_with_params("S", 3.0e9).unwrap();
        let big = ModelConfig::decoder_with_params("B", 100.0e9).unwrap();
        assert!(big.architecture.hidden_dim > small.architecture.hidden_dim);
        assert!(big.architecture.num_layers > small.architecture.num_layers);
        assert!(small.validate().is_ok());
        assert!(big.validate().is_ok());
        assert!(ModelConfig::decoder_with_params("bad", -1.0).is_err());
    }

    #[test]
    fn validation_catches_inconsistent_architecture() {
        let mut m = ModelConfig::llama3_8b();
        m.architecture.num_heads = 33; // does not divide 4096
        assert!(m.validate().is_err());
        let mut m = ModelConfig::llama3_8b();
        m.architecture.num_kv_heads = 0;
        assert!(m.validate().is_err());
    }
}
