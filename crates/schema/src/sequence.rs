//! Sequence-length profile of a RAG workload (§4 "LLM sequence lengths").
//!
//! The paper derives representative lengths from QA and chatbot datasets:
//! 32-token questions, five retrieved passages of ~100 tokens each (so a
//! ~512-token prefix for the main LLM), and 256-token generations. Case II
//! additionally has a long user-provided context that must be encoded into
//! the per-request database.

use crate::error::SchemaError;
use serde::{Deserialize, Serialize};

/// Token-length profile of a single request.
///
/// # Examples
///
/// ```
/// use rago_schema::SequenceProfile;
/// let s = SequenceProfile::paper_default();
/// assert_eq!(s.prefix_tokens(), 532); // 32-token question + 5 x 100-token passages
/// assert_eq!(s.decode_tokens, 256);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SequenceProfile {
    /// Length of the user question in tokens.
    pub question_tokens: u32,
    /// Length of each retrieved passage in tokens.
    pub chunk_tokens: u32,
    /// Number of retrieved passages appended to the prompt.
    pub num_neighbors: u32,
    /// Number of generated output tokens (decode length).
    pub decode_tokens: u32,
    /// Length of the user-provided long context (Case II) that the database
    /// encoder must process, in tokens; zero when there is no such context.
    pub long_context_tokens: u64,
    /// Bytes per token when shipping retrieved text from CPU hosts to XPUs.
    pub bytes_per_token: u32,
}

impl SequenceProfile {
    /// The paper's default profile: 32-token question, five 100-token
    /// neighbours, 256-token generation, no long context, 2 bytes per token.
    pub fn paper_default() -> Self {
        Self {
            question_tokens: 32,
            chunk_tokens: 100,
            num_neighbors: 5,
            decode_tokens: 256,
            long_context_tokens: 0,
            bytes_per_token: 2,
        }
    }

    /// Profile for the long-context paradigm (Case II): the user uploads
    /// `long_context_tokens` of text which is chunked into 128-token passages.
    pub fn long_context(long_context_tokens: u64) -> Self {
        Self {
            chunk_tokens: 128,
            long_context_tokens,
            ..Self::paper_default()
        }
    }

    /// Sets the question length.
    pub fn with_question_tokens(mut self, t: u32) -> Self {
        self.question_tokens = t;
        self
    }

    /// Sets the decode (generation) length.
    pub fn with_decode_tokens(mut self, t: u32) -> Self {
        self.decode_tokens = t;
        self
    }

    /// Sets the number of retrieved neighbours in the prompt.
    pub fn with_num_neighbors(mut self, n: u32) -> Self {
        self.num_neighbors = n;
        self
    }

    /// Overrides the total prefix length by adjusting the neighbour count and
    /// question so that `prefix_tokens()` equals `total` (used for the
    /// sequence-length sensitivity sweeps of Figure 7c). The question length
    /// is preserved; the retrieved content absorbs the difference.
    pub fn with_prefix_tokens(mut self, total: u32) -> Self {
        let retrieved = total.saturating_sub(self.question_tokens);
        // Represent the retrieved content as a single pseudo-chunk so that
        // arbitrary totals are expressible.
        self.num_neighbors = 1;
        self.chunk_tokens = retrieved;
        self
    }

    /// Total prompt length seen by the main generative LLM's prefix phase:
    /// the question plus all retrieved passages.
    pub fn prefix_tokens(&self) -> u32 {
        self.question_tokens + self.chunk_tokens * self.num_neighbors
    }

    /// Prompt length of an LLM-only system answering the same question
    /// without retrieval (just the question).
    pub fn llm_only_prefix_tokens(&self) -> u32 {
        self.question_tokens
    }

    /// Number of tokens the database encoder must process for one request
    /// (zero when there is no long context).
    pub fn encoder_tokens(&self) -> u64 {
        self.long_context_tokens
    }

    /// Bytes transferred from the retrieval hosts to the XPUs per retrieval
    /// (retrieved passages only).
    pub fn retrieved_bytes(&self) -> f64 {
        f64::from(self.chunk_tokens)
            * f64::from(self.num_neighbors)
            * f64::from(self.bytes_per_token)
    }

    /// Validates the profile.
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError::Invalid`] when the question or decode length is
    /// zero.
    pub fn validate(&self) -> Result<(), SchemaError> {
        if self.question_tokens == 0 {
            return Err(SchemaError::Invalid {
                field: "question_tokens",
                reason: "question must contain at least one token".into(),
            });
        }
        if self.decode_tokens == 0 {
            return Err(SchemaError::Invalid {
                field: "decode_tokens",
                reason: "generation must produce at least one token".into(),
            });
        }
        if self.bytes_per_token == 0 {
            return Err(SchemaError::Invalid {
                field: "bytes_per_token",
                reason: "token encoding must occupy at least one byte".into(),
            });
        }
        Ok(())
    }
}

impl Default for SequenceProfile {
    fn default() -> Self {
        SequenceProfile::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_prefix_is_about_512() {
        let s = SequenceProfile::paper_default();
        // The paper approximates 32 + 5*100 as "512 tokens".
        assert!((500..=540).contains(&s.prefix_tokens()));
        assert_eq!(s.llm_only_prefix_tokens(), 32);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn long_context_profile() {
        let s = SequenceProfile::long_context(1_000_000);
        assert_eq!(s.encoder_tokens(), 1_000_000);
        assert_eq!(s.chunk_tokens, 128);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn with_prefix_tokens_hits_exact_totals() {
        for total in [128u32, 256, 512, 1024, 2048] {
            let s = SequenceProfile::paper_default().with_prefix_tokens(total);
            assert_eq!(s.prefix_tokens(), total);
            assert_eq!(s.question_tokens, 32);
        }
    }

    #[test]
    fn retrieved_bytes_match_paper_example() {
        // Five 100-token documents at 2 bytes per token = 1 KB per retrieval.
        let s = SequenceProfile::paper_default();
        assert_eq!(s.retrieved_bytes(), 1000.0);
    }

    #[test]
    fn validation_rejects_zero_lengths() {
        assert!(SequenceProfile::paper_default()
            .with_question_tokens(0)
            .validate()
            .is_err());
        assert!(SequenceProfile::paper_default()
            .with_decode_tokens(0)
            .validate()
            .is_err());
    }

    #[test]
    fn builder_methods_compose() {
        let s = SequenceProfile::paper_default()
            .with_decode_tokens(512)
            .with_num_neighbors(10);
        assert_eq!(s.decode_tokens, 512);
        assert_eq!(s.prefix_tokens(), 32 + 10 * 100);
    }
}
