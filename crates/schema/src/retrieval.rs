//! Retrieval configuration: database size, quantization, scan fraction,
//! queries per retrieval, and iterative-retrieval frequency.

use crate::error::SchemaError;
use serde::{Deserialize, Serialize};

/// How the nearest-neighbour search is executed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SearchMode {
    /// ScaNN/Faiss-style approximate search: a multi-level tree (IVF) index
    /// over product-quantized codes. `tree_levels` is the depth of the tree
    /// (the paper uses 3 levels with a balanced fanout of ~4K for the
    /// 64-billion-vector database).
    IvfPq {
        /// Number of levels in the balanced search tree.
        tree_levels: u32,
    },
    /// Exact brute-force kNN over full-precision vectors — what the paper uses
    /// for the tiny per-request databases of the long-context paradigm
    /// (Case II), where building an ANN index would cost more than it saves.
    BruteForce,
}

/// Configuration of the retrieval component of a RAG pipeline.
///
/// # Examples
///
/// ```
/// use rago_schema::RetrievalConfig;
/// let r = RetrievalConfig::hyperscale_64b();
/// assert_eq!(r.num_vectors, 64e9 as u64);
/// // 64B x 96B = 6.1 TB of PQ codes; a 0.1% scan touches ~6.1 GB per query.
/// assert!(r.scanned_bytes_per_query() > 6.0e9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetrievalConfig {
    /// Number of database vectors.
    pub num_vectors: u64,
    /// Dimensionality of each database vector.
    pub dim: u32,
    /// Bytes per stored vector after quantization (96 for the paper's PQ
    /// setting of one byte per eight dimensions at 768 dims; `dim * 4` for
    /// full-precision float storage).
    pub bytes_per_vector: u32,
    /// Fraction of database vectors scanned per query (the paper's default is
    /// 0.001, i.e. 0.1%). For brute-force search this is 1.0.
    pub scan_fraction: f64,
    /// Number of query vectors issued per retrieval (multi-query RAG uses >1).
    pub queries_per_retrieval: u32,
    /// Number of retrievals per generated sequence. One means a single
    /// retrieval before generation; larger values model iterative retrieval
    /// during decoding (Case III).
    pub retrievals_per_sequence: u32,
    /// Number of nearest neighbours returned (top-K documents).
    pub top_k: u32,
    /// Search algorithm.
    pub mode: SearchMode,
}

impl RetrievalConfig {
    /// The paper's hyperscale database: 64 billion 768-dimensional passages,
    /// product-quantized to 96 bytes per vector, 0.1 % scanned per query,
    /// three-level tree, one query per retrieval, a single retrieval per
    /// sequence, top-5 neighbours.
    pub fn hyperscale_64b() -> Self {
        Self {
            num_vectors: 64_000_000_000,
            dim: 768,
            bytes_per_vector: 96,
            scan_fraction: 0.001,
            queries_per_retrieval: 1,
            retrievals_per_sequence: 1,
            top_k: 5,
            mode: SearchMode::IvfPq { tree_levels: 3 },
        }
    }

    /// A small per-request database built from a long context of
    /// `context_tokens` tokens chunked every `chunk_tokens` tokens, searched
    /// by brute force over full-precision vectors (Case II).
    pub fn long_context(context_tokens: u64, chunk_tokens: u32, dim: u32) -> Self {
        let num_vectors = (context_tokens / u64::from(chunk_tokens.max(1))).max(1);
        Self {
            num_vectors,
            dim,
            bytes_per_vector: dim * 4,
            scan_fraction: 1.0,
            queries_per_retrieval: 1,
            retrievals_per_sequence: 1,
            top_k: 5,
            mode: SearchMode::BruteForce,
        }
    }

    /// Sets the number of query vectors per retrieval.
    pub fn with_queries_per_retrieval(mut self, q: u32) -> Self {
        self.queries_per_retrieval = q;
        self
    }

    /// Sets the number of retrievals per sequence (iterative retrieval).
    pub fn with_retrievals_per_sequence(mut self, r: u32) -> Self {
        self.retrievals_per_sequence = r;
        self
    }

    /// Sets the scanned database fraction.
    pub fn with_scan_fraction(mut self, f: f64) -> Self {
        self.scan_fraction = f;
        self
    }

    /// Sets the returned neighbour count.
    pub fn with_top_k(mut self, k: u32) -> Self {
        self.top_k = k;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError::Invalid`] if any count is zero or the scan
    /// fraction is outside `(0, 1]`.
    pub fn validate(&self) -> Result<(), SchemaError> {
        if self.num_vectors == 0 {
            return Err(SchemaError::Invalid {
                field: "num_vectors",
                reason: "database must contain at least one vector".into(),
            });
        }
        if self.dim == 0 {
            return Err(SchemaError::Invalid {
                field: "dim",
                reason: "vector dimensionality must be non-zero".into(),
            });
        }
        if self.bytes_per_vector == 0 {
            return Err(SchemaError::Invalid {
                field: "bytes_per_vector",
                reason: "stored vector size must be non-zero".into(),
            });
        }
        if !(self.scan_fraction > 0.0 && self.scan_fraction <= 1.0) {
            return Err(SchemaError::Invalid {
                field: "scan_fraction",
                reason: format!("must be in (0, 1], got {}", self.scan_fraction),
            });
        }
        if self.queries_per_retrieval == 0 {
            return Err(SchemaError::Invalid {
                field: "queries_per_retrieval",
                reason: "must be at least 1".into(),
            });
        }
        if self.retrievals_per_sequence == 0 {
            return Err(SchemaError::Invalid {
                field: "retrievals_per_sequence",
                reason: "must be at least 1".into(),
            });
        }
        if self.top_k == 0 {
            return Err(SchemaError::Invalid {
                field: "top_k",
                reason: "must return at least one neighbour".into(),
            });
        }
        if let SearchMode::IvfPq { tree_levels } = self.mode {
            if tree_levels == 0 {
                return Err(SchemaError::Invalid {
                    field: "tree_levels",
                    reason: "IVF-PQ tree must have at least one level".into(),
                });
            }
        }
        Ok(())
    }

    /// Total size of the stored (quantized) database in bytes.
    pub fn database_bytes(&self) -> f64 {
        self.num_vectors as f64 * f64::from(self.bytes_per_vector)
    }

    /// Bytes of database vectors scanned by one query vector: the paper's
    /// `B_retrieval ≈ N_dbvec · B_vec · P_scan` (§3.3).
    pub fn scanned_bytes_per_query(&self) -> f64 {
        self.database_bytes() * self.scan_fraction
    }

    /// Bytes scanned per retrieval (all query vectors of that retrieval).
    pub fn scanned_bytes_per_retrieval(&self) -> f64 {
        self.scanned_bytes_per_query() * f64::from(self.queries_per_retrieval)
    }

    /// Whether the workload performs iterative retrievals during decoding.
    pub fn is_iterative(&self) -> bool {
        self.retrievals_per_sequence > 1
    }

    /// Balanced per-level fanout of the IVF tree (the paper uses
    /// `(64e9)^(1/3) ≈ 4000` for its 3-level tree). Returns `None` for
    /// brute-force search.
    pub fn tree_fanout(&self) -> Option<f64> {
        match self.mode {
            SearchMode::IvfPq { tree_levels } => Some(
                (self.num_vectors as f64)
                    .powf(1.0 / f64::from(tree_levels))
                    .max(1.0),
            ),
            SearchMode::BruteForce => None,
        }
    }
}

impl Default for RetrievalConfig {
    fn default() -> Self {
        RetrievalConfig::hyperscale_64b()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hyperscale_matches_paper_numbers() {
        let r = RetrievalConfig::hyperscale_64b();
        assert!(r.validate().is_ok());
        // 64B x 96 bytes = 6.144e12 bytes ~ 5.6 TiB.
        assert!((r.database_bytes() - 6.144e12).abs() < 1e6);
        let tib = r.database_bytes() / (1024.0f64.powi(4));
        assert!((tib - 5.59).abs() < 0.02);
        // 0.1% scan = ~6.1 GB per query.
        assert!((r.scanned_bytes_per_query() - 6.144e9).abs() < 1e3);
        // Three-level balanced fanout ~ 4000.
        let fanout = r.tree_fanout().unwrap();
        assert!((fanout - 4000.0).abs() < 20.0);
    }

    #[test]
    fn long_context_database_sizes() {
        // 100K tokens / 128-token chunks ~ 781 vectors; 1M ~ 7.8K; 10M ~ 78K.
        let small = RetrievalConfig::long_context(100_000, 128, 768);
        let medium = RetrievalConfig::long_context(1_000_000, 128, 768);
        let large = RetrievalConfig::long_context(10_000_000, 128, 768);
        assert_eq!(small.num_vectors, 781);
        assert_eq!(medium.num_vectors, 7812);
        assert_eq!(large.num_vectors, 78125);
        assert_eq!(small.mode, SearchMode::BruteForce);
        assert!(small.validate().is_ok());
    }

    #[test]
    fn builder_methods() {
        let r = RetrievalConfig::hyperscale_64b()
            .with_queries_per_retrieval(4)
            .with_retrievals_per_sequence(8)
            .with_scan_fraction(0.01)
            .with_top_k(16);
        assert_eq!(r.queries_per_retrieval, 4);
        assert!(r.is_iterative());
        assert_eq!(r.top_k, 16);
        assert!((r.scanned_bytes_per_retrieval() - r.database_bytes() * 0.01 * 4.0).abs() < 1.0);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut r = RetrievalConfig::hyperscale_64b();
        r.scan_fraction = 0.0;
        assert!(r.validate().is_err());
        let mut r = RetrievalConfig::hyperscale_64b();
        r.scan_fraction = 1.5;
        assert!(r.validate().is_err());
        let mut r = RetrievalConfig::hyperscale_64b();
        r.queries_per_retrieval = 0;
        assert!(r.validate().is_err());
        let mut r = RetrievalConfig::hyperscale_64b();
        r.num_vectors = 0;
        assert!(r.validate().is_err());
        let mut r = RetrievalConfig::hyperscale_64b();
        r.mode = SearchMode::IvfPq { tree_levels: 0 };
        assert!(r.validate().is_err());
    }

    #[test]
    fn brute_force_has_no_fanout() {
        assert!(RetrievalConfig::long_context(100_000, 128, 768)
            .tree_fanout()
            .is_none());
    }
}
