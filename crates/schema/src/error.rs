//! Error type for RAGSchema construction and validation.

use std::error::Error;
use std::fmt;

/// Error raised when a RAGSchema (or one of its components) is inconsistent.
///
/// ```
/// use rago_schema::SchemaError;
/// let err = SchemaError::Invalid { field: "queries_per_retrieval", reason: "must be >= 1".into() };
/// assert!(err.to_string().contains("queries_per_retrieval"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// A configuration field holds a meaningless value.
    Invalid {
        /// Name of the offending field.
        field: &'static str,
        /// Why the value was rejected.
        reason: String,
    },
    /// Two parts of the schema contradict each other (e.g. iterative
    /// retrieval requested but retrieval disabled).
    Inconsistent {
        /// Description of the contradiction.
        reason: String,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::Invalid { field, reason } => {
                write!(f, "invalid RAGSchema field `{field}`: {reason}")
            }
            SchemaError::Inconsistent { reason } => {
                write!(f, "inconsistent RAGSchema: {reason}")
            }
        }
    }
}

impl Error for SchemaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SchemaError::Inconsistent {
            reason: "iterative retrieval without a retrieval stage".into(),
        };
        assert!(e.to_string().contains("inconsistent"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SchemaError>();
    }
}
