//! Fleet-level serving configuration: replica counts, request routing, and
//! typed replica pools.
//!
//! One schedule describes one pipeline replica. Serving heavy traffic means
//! running *N* replicas of that pipeline behind a router — the decisions
//! studied by the cluster-provisioning literature (DistServe, Splitwise):
//! how many replicas does an SLO at a target rate require, and which routing
//! policy spreads the load best? A [`FleetConfig`] captures both knobs so
//! the cluster simulation in `rago-serving-sim` and the capacity planner in
//! `rago-core` can share one description.
//!
//! A fleet may additionally be *disaggregated* into typed pools
//! ([`PoolSpec`]): a Prefill pool runs the pre-decode stages and hands each
//! request's KV state to a Decode pool over an interconnect priced by a
//! [`KvTransferModel`]. The flat single-pool case keeps the original struct
//! shape (an empty [`FleetConfig::pools`] list means one Monolithic pool).

use crate::error::SchemaError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How arriving requests are routed across the replicas of a fleet.
///
/// Policies are evaluated at each request's arrival instant against the live
/// state of every replica simulation; ties always break toward the
/// lowest-indexed replica, keeping fleet runs deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RouterPolicy {
    /// Cycle through replicas in index order, ignoring load. The baseline
    /// policy: perfectly fair in counts, oblivious to request-size skew.
    RoundRobin,
    /// Route to the replica with the fewest outstanding requests (arrived
    /// but not yet fully decoded).
    #[default]
    LeastOutstanding,
    /// Route to the replica with the shortest wait queue (requests queued
    /// before a pre-decode stage or for decode admission, excluding those in
    /// service).
    JoinShortestQueue,
    /// Route to the replica whose continuous-batching decode has the lowest
    /// fill fraction (resident sequences over slot capacity), falling back
    /// to least-outstanding on ties. Decode residency is the long-lived
    /// resource in LLM serving, so balancing it directly protects TPOT.
    DecodeFillAware,
    /// Route by the request's shared-prefix/template id via rendezvous
    /// hashing over the replicas' *stable* slot ids — a static partition
    /// of the template space, so each template's prefix-KV state
    /// concentrates on one replica, and an autoscaler scale event re-homes
    /// only the templates touching the added/removed replica. Identity-free
    /// requests fall back to least-outstanding. Oblivious to load: a hot
    /// template hot-spots its home replica.
    PrefixHash,
    /// Route to the replica whose *live* prefix-KV cache currently owns the
    /// request's template (least-outstanding among several owners); when no
    /// replica owns it, fall back to the template's hash home so residency
    /// builds in one place. Identity-free requests fall back to
    /// least-outstanding. This is the state-aware refinement of
    /// [`RouterPolicy::PrefixHash`]: it follows evictions and newly warmed
    /// replicas instead of a fixed partition.
    CacheAffinity,
}

impl RouterPolicy {
    /// Every policy, in a stable order (useful for sweeps and benches).
    pub const ALL: [RouterPolicy; 6] = [
        RouterPolicy::RoundRobin,
        RouterPolicy::LeastOutstanding,
        RouterPolicy::JoinShortestQueue,
        RouterPolicy::DecodeFillAware,
        RouterPolicy::PrefixHash,
        RouterPolicy::CacheAffinity,
    ];
}

impl fmt::Display for RouterPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            RouterPolicy::RoundRobin => "round-robin",
            RouterPolicy::LeastOutstanding => "least-outstanding",
            RouterPolicy::JoinShortestQueue => "join-shortest-queue",
            RouterPolicy::DecodeFillAware => "decode-fill-aware",
            RouterPolicy::PrefixHash => "prefix-hash",
            RouterPolicy::CacheAffinity => "cache-affinity",
        };
        f.write_str(name)
    }
}

/// The phase a replica pool serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PoolRole {
    /// The classic collocated replica: every request runs its full
    /// pre-decode pipeline *and* decode on the same replica.
    #[default]
    Monolithic,
    /// Prefill-only replicas: requests run the pre-decode stages (encode …
    /// prefix) and then hand their KV state to a Decode pool.
    Prefill,
    /// Decode-only replicas: requests arrive with prefilled KV state (after
    /// the cross-pool transfer) and run continuous-batching decode.
    Decode,
}

impl fmt::Display for PoolRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PoolRole::Monolithic => "monolithic",
            PoolRole::Prefill => "prefill",
            PoolRole::Decode => "decode",
        })
    }
}

/// One typed pool of identical replicas inside a disaggregated fleet.
///
/// # Examples
///
/// ```
/// use rago_schema::{PoolRole, PoolSpec, RouterPolicy};
///
/// let pool = PoolSpec::new(PoolRole::Decode, 3, RouterPolicy::CacheAffinity);
/// assert!(pool.validate().is_ok());
/// assert!(PoolSpec::new(PoolRole::Prefill, 0, RouterPolicy::RoundRobin).validate().is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolSpec {
    /// The phase this pool serves.
    pub role: PoolRole,
    /// Number of replicas in the pool (at least 1).
    pub replicas: u32,
    /// Intra-pool routing policy dispatching requests across the pool's
    /// replicas (for a Decode pool this routes transfer completions).
    pub router: RouterPolicy,
    /// Optional chip type label for heterogeneous-pool studies (e.g. a
    /// bandwidth-heavy part for decode). Informational: the pipeline spec
    /// bound to the pool carries the actual latency tables.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub chip: Option<String>,
}

impl PoolSpec {
    /// Creates a pool.
    pub fn new(role: PoolRole, replicas: u32, router: RouterPolicy) -> Self {
        Self {
            role,
            replicas,
            router,
            chip: None,
        }
    }

    /// Labels the pool with a chip type.
    #[must_use]
    pub fn with_chip(mut self, chip: impl Into<String>) -> Self {
        self.chip = Some(chip.into());
        self
    }

    /// Validates the pool.
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError::Invalid`] when the pool has zero replicas.
    pub fn validate(&self) -> Result<(), SchemaError> {
        if self.replicas == 0 {
            return Err(SchemaError::Invalid {
                field: "pool.replicas",
                reason: format!("a {} pool needs at least one replica", self.role),
            });
        }
        Ok(())
    }
}

/// Prices the prefill→decode KV-cache handoff of a disaggregated fleet.
///
/// Transferred bytes scale with the request's prefix length
/// (`prefix_tokens × kv_bytes_per_token`); latency is a fixed overhead plus
/// bytes over bandwidth — the same shape as
/// `rago-hardware`'s `InterconnectSpec::transfer_latency_s`, which is the
/// intended source of the bandwidth and overhead numbers.
///
/// # Examples
///
/// ```
/// use rago_schema::KvTransferModel;
///
/// // 128 KiB of KV per token over a 200 GB/s link with 50 µs of overhead.
/// let model = KvTransferModel::new(131_072.0, 200e9, 50e-6);
/// assert_eq!(model.bytes_for(1000), 131_072_000.0);
/// let latency = model.latency_s(1000);
/// assert!((latency - (50e-6 + 131_072_000.0 / 200e9)).abs() < 1e-15);
///
/// // The degenerate model prices every transfer at exactly zero.
/// assert_eq!(KvTransferModel::zero().latency_s(4096), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KvTransferModel {
    /// KV-cache bytes per prefix token (2 × layers × KV heads × head dim ×
    /// bytes per element for a transformer).
    pub kv_bytes_per_token: f64,
    /// Interconnect bandwidth in bytes per second. `f64::INFINITY` makes
    /// the per-byte cost exactly zero.
    pub bandwidth_bytes_per_s: f64,
    /// Fixed per-transfer overhead in seconds (handshake, scheduling).
    pub base_latency_s: f64,
}

impl KvTransferModel {
    /// Creates a transfer model.
    pub fn new(kv_bytes_per_token: f64, bandwidth_bytes_per_s: f64, base_latency_s: f64) -> Self {
        Self {
            kv_bytes_per_token,
            bandwidth_bytes_per_s,
            base_latency_s,
        }
    }

    /// The zero-cost model: every handoff completes instantaneously. A
    /// disaggregated 1+1 fleet under this model reproduces the monolithic
    /// engine's per-request timings exactly.
    pub fn zero() -> Self {
        Self::new(0.0, f64::INFINITY, 0.0)
    }

    /// Whether every transfer under this model costs exactly zero seconds.
    pub fn is_zero_cost(&self) -> bool {
        self.base_latency_s == 0.0
            && (self.kv_bytes_per_token == 0.0 || self.bandwidth_bytes_per_s == f64::INFINITY)
    }

    /// KV bytes moved for a request with `prefix_tokens` of prefilled state.
    pub fn bytes_for(&self, prefix_tokens: u32) -> f64 {
        f64::from(prefix_tokens) * self.kv_bytes_per_token
    }

    /// Seconds the handoff of `prefix_tokens` of KV state takes.
    pub fn latency_s(&self, prefix_tokens: u32) -> f64 {
        self.base_latency_s + self.bytes_for(prefix_tokens) / self.bandwidth_bytes_per_s
    }

    /// Validates the model.
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError::Invalid`] for negative or NaN fields or a
    /// non-positive bandwidth.
    pub fn validate(&self) -> Result<(), SchemaError> {
        if !(self.kv_bytes_per_token >= 0.0 && self.kv_bytes_per_token.is_finite()) {
            return Err(SchemaError::Invalid {
                field: "kv_bytes_per_token",
                reason: "must be finite and non-negative".into(),
            });
        }
        if self.bandwidth_bytes_per_s <= 0.0 || self.bandwidth_bytes_per_s.is_nan() {
            return Err(SchemaError::Invalid {
                field: "bandwidth_bytes_per_s",
                reason: "must be positive (INFINITY for a free interconnect)".into(),
            });
        }
        if !(self.base_latency_s >= 0.0 && self.base_latency_s.is_finite()) {
            return Err(SchemaError::Invalid {
                field: "base_latency_s",
                reason: "must be finite and non-negative".into(),
            });
        }
        Ok(())
    }
}

impl Default for KvTransferModel {
    fn default() -> Self {
        KvTransferModel::zero()
    }
}

/// A fleet of pipeline replicas behind a router, either flat (one implicit
/// Monolithic pool — the original struct shape) or disaggregated into a
/// Prefill pool feeding a Decode pool.
///
/// # Examples
///
/// ```
/// use rago_schema::{FleetConfig, PoolRole, RouterPolicy};
///
/// let fleet = FleetConfig::new(4, RouterPolicy::LeastOutstanding);
/// assert_eq!(fleet.replicas, 4);
/// assert!(!fleet.is_disaggregated());
/// assert!(fleet.validate().is_ok());
/// assert!(FleetConfig::new(0, RouterPolicy::RoundRobin).validate().is_err());
///
/// let split = FleetConfig::split(2, 3, RouterPolicy::LeastOutstanding);
/// assert!(split.is_disaggregated());
/// assert_eq!(split.replicas, 5);
/// let (prefill, decode) = split.prefill_decode().unwrap();
/// assert_eq!((prefill.role, prefill.replicas), (PoolRole::Prefill, 2));
/// assert_eq!((decode.role, decode.replicas), (PoolRole::Decode, 3));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Total number of pipeline replicas across all pools (at least 1).
    pub replicas: u32,
    /// Routing policy dispatching arrivals across the replicas (for a
    /// disaggregated fleet this is the Prefill pool's arrival router).
    pub router: RouterPolicy,
    /// Typed replica pools. Empty means one implicit Monolithic pool of
    /// `replicas` replicas — the flat fleet every pre-pools config
    /// deserializes to.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub pools: Vec<PoolSpec>,
    /// Prices the prefill→decode KV handoff of a disaggregated fleet.
    /// Ignored by flat / single-Monolithic-pool fleets. Defaults to
    /// [`KvTransferModel::zero`], under which a 1+1 split reproduces the
    /// monolithic engine's per-request timings.
    #[serde(default)]
    pub transfer: KvTransferModel,
}

impl FleetConfig {
    /// Creates a flat (single implicit Monolithic pool) fleet.
    pub fn new(replicas: u32, router: RouterPolicy) -> Self {
        Self {
            replicas,
            router,
            pools: Vec::new(),
            transfer: KvTransferModel::zero(),
        }
    }

    /// A single replica behind the default router — the degenerate fleet
    /// equivalent to running the engine directly.
    pub fn single() -> Self {
        Self::new(1, RouterPolicy::default())
    }

    /// Creates a disaggregated fleet from explicit pools. `replicas` is set
    /// to the pool total and `router` to the prefill pool's router.
    pub fn disaggregated(prefill: PoolSpec, decode: PoolSpec) -> Self {
        Self {
            replicas: prefill.replicas + decode.replicas,
            router: prefill.router,
            pools: vec![prefill, decode],
            transfer: KvTransferModel::zero(),
        }
    }

    /// Prices the KV handoff of a disaggregated fleet (see
    /// [`KvTransferModel`]; `rago-hardware`'s
    /// `InterconnectSpec::transfer_latency_s` is the intended source of the
    /// bandwidth and overhead numbers).
    #[must_use]
    pub fn with_transfer(mut self, transfer: KvTransferModel) -> Self {
        self.transfer = transfer;
        self
    }

    /// Convenience constructor: `prefill_replicas` + `decode_replicas`
    /// pools, both routed by `router`.
    pub fn split(prefill_replicas: u32, decode_replicas: u32, router: RouterPolicy) -> Self {
        Self::disaggregated(
            PoolSpec::new(PoolRole::Prefill, prefill_replicas, router),
            PoolSpec::new(PoolRole::Decode, decode_replicas, router),
        )
    }

    /// Whether the fleet splits prefill and decode onto separate pools.
    pub fn is_disaggregated(&self) -> bool {
        self.prefill_decode().is_some()
    }

    /// The (prefill, decode) pool pair of a disaggregated fleet, or `None`
    /// for a flat / single-Monolithic-pool fleet.
    pub fn prefill_decode(&self) -> Option<(&PoolSpec, &PoolSpec)> {
        match self.pools.as_slice() {
            [p, d] if p.role == PoolRole::Prefill && d.role == PoolRole::Decode => Some((p, d)),
            _ => None,
        }
    }

    /// The effective pool list: the declared pools, or the implicit
    /// Monolithic pool of a flat fleet.
    pub fn effective_pools(&self) -> Vec<PoolSpec> {
        if self.pools.is_empty() {
            vec![PoolSpec::new(
                PoolRole::Monolithic,
                self.replicas,
                self.router,
            )]
        } else {
            self.pools.clone()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError::Invalid`] when the fleet has zero replicas,
    /// any pool is invalid, the pool list has an unsupported shape (only
    /// `[]`, `[Monolithic]`, and `[Prefill, Decode]` are recognized), or
    /// `replicas` disagrees with the pool total.
    pub fn validate(&self) -> Result<(), SchemaError> {
        if self.replicas == 0 {
            return Err(SchemaError::Invalid {
                field: "replicas",
                reason: "a fleet needs at least one replica".into(),
            });
        }
        for pool in &self.pools {
            pool.validate()?;
        }
        self.transfer.validate()?;
        let shape_ok = match self.pools.as_slice() {
            [] => true,
            [only] => only.role == PoolRole::Monolithic,
            [p, d] => p.role == PoolRole::Prefill && d.role == PoolRole::Decode,
            _ => false,
        };
        if !shape_ok {
            return Err(SchemaError::Invalid {
                field: "pools",
                reason: "supported pool shapes: [], [Monolithic], [Prefill, Decode]".into(),
            });
        }
        if !self.pools.is_empty() {
            let total: u32 = self.pools.iter().map(|p| p.replicas).sum();
            if total != self.replicas {
                return Err(SchemaError::Invalid {
                    field: "replicas",
                    reason: format!(
                        "replicas ({}) must equal the pool total ({total})",
                        self.replicas
                    ),
                });
            }
        }
        Ok(())
    }
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig::single()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_empty_fleets() {
        assert!(FleetConfig::new(0, RouterPolicy::RoundRobin)
            .validate()
            .is_err());
        assert!(FleetConfig::new(1, RouterPolicy::RoundRobin)
            .validate()
            .is_ok());
        assert!(FleetConfig::default().validate().is_ok());
        assert_eq!(FleetConfig::default().replicas, 1);
    }

    #[test]
    fn policies_display_distinctly() {
        let names: std::collections::HashSet<String> =
            RouterPolicy::ALL.iter().map(|p| p.to_string()).collect();
        assert_eq!(names.len(), RouterPolicy::ALL.len());
    }

    #[test]
    fn default_router_is_least_outstanding() {
        assert_eq!(RouterPolicy::default(), RouterPolicy::LeastOutstanding);
    }

    #[test]
    fn flat_constructors_keep_the_original_shape() {
        // `new`/`single` must keep producing the pre-pools flat fleet: no
        // declared pools, same replica count and router as before.
        let flat = FleetConfig::new(4, RouterPolicy::RoundRobin);
        assert!(flat.pools.is_empty());
        assert!(!flat.is_disaggregated());
        assert!(flat.prefill_decode().is_none());
        assert_eq!(FleetConfig::single().replicas, 1);
        assert!(FleetConfig::single().pools.is_empty());
    }

    #[test]
    fn pool_shape_validation() {
        let ok = FleetConfig::split(2, 3, RouterPolicy::LeastOutstanding);
        assert!(ok.validate().is_ok());
        assert_eq!(ok.effective_pools().len(), 2);

        let mut reversed = ok.clone();
        reversed.pools.swap(0, 1);
        assert!(reversed.validate().is_err());

        let mut mismatched = ok.clone();
        mismatched.replicas = 4;
        assert!(mismatched.validate().is_err());

        let mut zero_pool = ok;
        zero_pool.pools[0].replicas = 0;
        assert!(zero_pool.validate().is_err());

        let mono = FleetConfig {
            replicas: 3,
            router: RouterPolicy::RoundRobin,
            pools: vec![PoolSpec::new(
                PoolRole::Monolithic,
                3,
                RouterPolicy::RoundRobin,
            )],
            transfer: KvTransferModel::zero(),
        };
        assert!(mono.validate().is_ok());
        assert!(!mono.is_disaggregated());
    }

    #[test]
    fn flat_fleet_effective_pools_is_one_monolithic() {
        let pools = FleetConfig::new(5, RouterPolicy::PrefixHash).effective_pools();
        assert_eq!(pools.len(), 1);
        assert_eq!(pools[0].role, PoolRole::Monolithic);
        assert_eq!(pools[0].replicas, 5);
        assert_eq!(pools[0].router, RouterPolicy::PrefixHash);
    }

    #[test]
    fn fleet_carries_and_validates_its_transfer_model() {
        let fleet = FleetConfig::split(2, 3, RouterPolicy::LeastOutstanding)
            .with_transfer(KvTransferModel::new(131_072.0, 25e9, 20e-6));
        assert!(fleet.validate().is_ok());
        assert!(!fleet.transfer.is_zero_cost());
        // Flat fleets default to the zero-cost model.
        assert!(FleetConfig::new(2, RouterPolicy::RoundRobin)
            .transfer
            .is_zero_cost());
        // An invalid transfer model fails fleet validation.
        let bad = FleetConfig::split(1, 1, RouterPolicy::RoundRobin)
            .with_transfer(KvTransferModel::new(-1.0, 1e9, 0.0));
        assert!(bad.validate().is_err());
    }

    #[test]
    fn transfer_model_prices_handoffs() {
        let model = KvTransferModel::new(1024.0, 1e9, 1e-4);
        assert!(model.validate().is_ok());
        assert_eq!(model.bytes_for(100), 102_400.0);
        assert!((model.latency_s(100) - (1e-4 + 102_400.0 / 1e9)).abs() < 1e-15);
        assert!(!model.is_zero_cost());

        let zero = KvTransferModel::zero();
        assert!(zero.validate().is_ok());
        assert!(zero.is_zero_cost());
        assert_eq!(zero.latency_s(u32::MAX), 0.0);

        assert!(KvTransferModel::new(-1.0, 1e9, 0.0).validate().is_err());
        assert!(KvTransferModel::new(1.0, 0.0, 0.0).validate().is_err());
        assert!(KvTransferModel::new(1.0, 1e9, f64::NAN).validate().is_err());
    }
}
