//! Fleet-level serving configuration: replica counts and request routing.
//!
//! One schedule describes one pipeline replica. Serving heavy traffic means
//! running *N* replicas of that pipeline behind a router — the decisions
//! studied by the cluster-provisioning literature (DistServe, Splitwise):
//! how many replicas does an SLO at a target rate require, and which routing
//! policy spreads the load best? A [`FleetConfig`] captures both knobs so
//! the cluster simulation in `rago-serving-sim` and the capacity planner in
//! `rago-core` can share one description.

use crate::error::SchemaError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How arriving requests are routed across the replicas of a fleet.
///
/// Policies are evaluated at each request's arrival instant against the live
/// state of every replica simulation; ties always break toward the
/// lowest-indexed replica, keeping fleet runs deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RouterPolicy {
    /// Cycle through replicas in index order, ignoring load. The baseline
    /// policy: perfectly fair in counts, oblivious to request-size skew.
    RoundRobin,
    /// Route to the replica with the fewest outstanding requests (arrived
    /// but not yet fully decoded).
    #[default]
    LeastOutstanding,
    /// Route to the replica with the shortest wait queue (requests queued
    /// before a pre-decode stage or for decode admission, excluding those in
    /// service).
    JoinShortestQueue,
    /// Route to the replica whose continuous-batching decode has the lowest
    /// fill fraction (resident sequences over slot capacity), falling back
    /// to least-outstanding on ties. Decode residency is the long-lived
    /// resource in LLM serving, so balancing it directly protects TPOT.
    DecodeFillAware,
    /// Route by the request's shared-prefix/template id via rendezvous
    /// hashing over the replicas' *stable* slot ids — a static partition
    /// of the template space, so each template's prefix-KV state
    /// concentrates on one replica, and an autoscaler scale event re-homes
    /// only the templates touching the added/removed replica. Identity-free
    /// requests fall back to least-outstanding. Oblivious to load: a hot
    /// template hot-spots its home replica.
    PrefixHash,
    /// Route to the replica whose *live* prefix-KV cache currently owns the
    /// request's template (least-outstanding among several owners); when no
    /// replica owns it, fall back to the template's hash home so residency
    /// builds in one place. Identity-free requests fall back to
    /// least-outstanding. This is the state-aware refinement of
    /// [`RouterPolicy::PrefixHash`]: it follows evictions and newly warmed
    /// replicas instead of a fixed partition.
    CacheAffinity,
}

impl RouterPolicy {
    /// Every policy, in a stable order (useful for sweeps and benches).
    pub const ALL: [RouterPolicy; 6] = [
        RouterPolicy::RoundRobin,
        RouterPolicy::LeastOutstanding,
        RouterPolicy::JoinShortestQueue,
        RouterPolicy::DecodeFillAware,
        RouterPolicy::PrefixHash,
        RouterPolicy::CacheAffinity,
    ];
}

impl fmt::Display for RouterPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            RouterPolicy::RoundRobin => "round-robin",
            RouterPolicy::LeastOutstanding => "least-outstanding",
            RouterPolicy::JoinShortestQueue => "join-shortest-queue",
            RouterPolicy::DecodeFillAware => "decode-fill-aware",
            RouterPolicy::PrefixHash => "prefix-hash",
            RouterPolicy::CacheAffinity => "cache-affinity",
        };
        f.write_str(name)
    }
}

/// A fleet of identical pipeline replicas behind a router.
///
/// # Examples
///
/// ```
/// use rago_schema::{FleetConfig, RouterPolicy};
///
/// let fleet = FleetConfig::new(4, RouterPolicy::LeastOutstanding);
/// assert_eq!(fleet.replicas, 4);
/// assert!(fleet.validate().is_ok());
/// assert!(FleetConfig::new(0, RouterPolicy::RoundRobin).validate().is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of pipeline replicas (at least 1).
    pub replicas: u32,
    /// Routing policy dispatching arrivals across the replicas.
    pub router: RouterPolicy,
}

impl FleetConfig {
    /// Creates a fleet configuration.
    pub fn new(replicas: u32, router: RouterPolicy) -> Self {
        Self { replicas, router }
    }

    /// A single replica behind the default router — the degenerate fleet
    /// equivalent to running the engine directly.
    pub fn single() -> Self {
        Self::new(1, RouterPolicy::default())
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError::Invalid`] when the fleet has zero replicas.
    pub fn validate(&self) -> Result<(), SchemaError> {
        if self.replicas == 0 {
            return Err(SchemaError::Invalid {
                field: "replicas",
                reason: "a fleet needs at least one replica".into(),
            });
        }
        Ok(())
    }
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig::single()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_empty_fleets() {
        assert!(FleetConfig::new(0, RouterPolicy::RoundRobin)
            .validate()
            .is_err());
        assert!(FleetConfig::new(1, RouterPolicy::RoundRobin)
            .validate()
            .is_ok());
        assert!(FleetConfig::default().validate().is_ok());
        assert_eq!(FleetConfig::default().replicas, 1);
    }

    #[test]
    fn policies_display_distinctly() {
        let names: std::collections::HashSet<String> =
            RouterPolicy::ALL.iter().map(|p| p.to_string()).collect();
        assert_eq!(names.len(), RouterPolicy::ALL.len());
    }

    #[test]
    fn default_router_is_least_outstanding() {
        assert_eq!(RouterPolicy::default(), RouterPolicy::LeastOutstanding);
    }
}
