//! Preset RAGSchema instances for the paper's four case studies (Table 3).
//!
//! | Component | Case 1 | Case 2 | Case 3 | Case 4 |
//! |---|---|---|---|---|
//! | Document encoder | — | 120M (768-d) | — | — |
//! | Database vectors | 64 B | 1/10/100 K | 64 B | 64 B |
//! | Retrieval frequency | 1 | 1 | 2/4/8 | 1 |
//! | Queries per retrieval | 1/2/4/8 | 1 | 1 | 1 |
//! | Query rewriter | — | — | — | 8B |
//! | Query reranker | — | — | — | 120M |
//! | Generative LLM | 1/8/70/405B | 8/70B | 8/70B | 8/70B |

use crate::model::ModelConfig;
use crate::retrieval::RetrievalConfig;
use crate::schema::RagSchema;
use crate::sequence::SequenceProfile;
use serde::{Deserialize, Serialize};

/// The generative-LLM sizes evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LlmSize {
    /// Llama-3 1B.
    B1,
    /// Llama-3 8B.
    B8,
    /// Llama-3 70B.
    B70,
    /// Llama-3 405B.
    B405,
}

impl LlmSize {
    /// All sizes, smallest first.
    pub const ALL: [LlmSize; 4] = [LlmSize::B1, LlmSize::B8, LlmSize::B70, LlmSize::B405];

    /// The model configuration for this size.
    pub fn model(self) -> ModelConfig {
        match self {
            LlmSize::B1 => ModelConfig::llama3_1b(),
            LlmSize::B8 => ModelConfig::llama3_8b(),
            LlmSize::B70 => ModelConfig::llama3_70b(),
            LlmSize::B405 => ModelConfig::llama3_405b(),
        }
    }

    /// Nominal parameter count.
    pub fn params(self) -> f64 {
        self.model().params
    }
}

impl std::fmt::Display for LlmSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LlmSize::B1 => f.write_str("1B"),
            LlmSize::B8 => f.write_str("8B"),
            LlmSize::B70 => f.write_str("70B"),
            LlmSize::B405 => f.write_str("405B"),
        }
    }
}

/// Case I — hyperscale retrieval (RETRO-style): a 64-billion-vector database,
/// one retrieval per sequence with `queries_per_retrieval` query vectors, and
/// a generative LLM of the given size.
pub fn case1_hyperscale(llm: LlmSize, queries_per_retrieval: u32) -> RagSchema {
    RagSchema::builder(format!("case1-hyperscale-{llm}-q{queries_per_retrieval}"))
        .generative_llm(llm.model())
        .retrieval(
            RetrievalConfig::hyperscale_64b().with_queries_per_retrieval(queries_per_retrieval),
        )
        .sequence(SequenceProfile::paper_default())
        .build()
        .expect("case 1 preset is always valid")
}

/// Case II — long-context sequence processing: the user uploads
/// `context_tokens` of text, a 120M encoder builds a small per-request
/// database (128-token chunks, 768-d full-precision vectors, brute-force
/// search), and the generative LLM answers from the retrieved chunks.
pub fn case2_long_context(llm: LlmSize, context_tokens: u64) -> RagSchema {
    RagSchema::builder(format!("case2-longctx-{llm}-{context_tokens}tok"))
        .document_encoder(ModelConfig::encoder_120m())
        .generative_llm(llm.model())
        .retrieval(RetrievalConfig::long_context(context_tokens, 128, 768))
        .sequence(SequenceProfile::long_context(context_tokens))
        .build()
        .expect("case 2 preset is always valid")
}

/// Case III — iterative retrievals: hyperscale retrieval as in Case I, but
/// with `retrievals_per_sequence` retrievals triggered during the 256-token
/// decode.
pub fn case3_iterative(llm: LlmSize, retrievals_per_sequence: u32) -> RagSchema {
    RagSchema::builder(format!("case3-iterative-{llm}-r{retrievals_per_sequence}"))
        .generative_llm(llm.model())
        .retrieval(
            RetrievalConfig::hyperscale_64b().with_retrievals_per_sequence(retrievals_per_sequence),
        )
        .sequence(SequenceProfile::paper_default())
        .build()
        .expect("case 3 preset is always valid")
}

/// Case IV — query rewriter and reranker: Case I extended with an 8B
/// generative query rewriter (32-token question → 32-token rewrite) and a
/// 120M reranker scoring 16 candidate passages down to the top 5.
pub fn case4_rewriter_reranker(llm: LlmSize) -> RagSchema {
    RagSchema::builder(format!("case4-rewrite-rerank-{llm}"))
        .query_rewriter(ModelConfig::llama3_8b(), 32)
        .reranker(ModelConfig::encoder_120m(), 16)
        .generative_llm(llm.model())
        .retrieval(RetrievalConfig::hyperscale_64b().with_top_k(5))
        .sequence(SequenceProfile::paper_default())
        .build()
        .expect("case 4 preset is always valid")
}

/// The LLM-only comparison system of Figure 5: no retrieval, the prompt is
/// just the 32-token question, generation is 256 tokens.
pub fn llm_only(llm: LlmSize) -> RagSchema {
    RagSchema::llm_only(
        format!("llm-only-{llm}"),
        llm.model(),
        SequenceProfile::paper_default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::Stage;

    #[test]
    fn all_presets_validate() {
        for llm in LlmSize::ALL {
            assert!(case1_hyperscale(llm, 1).validate().is_ok());
            assert!(case3_iterative(llm, 4).validate().is_ok());
            assert!(case4_rewriter_reranker(llm).validate().is_ok());
            assert!(llm_only(llm).validate().is_ok());
        }
        for ctx in [100_000u64, 1_000_000, 10_000_000] {
            assert!(case2_long_context(LlmSize::B70, ctx).validate().is_ok());
        }
    }

    #[test]
    fn case1_matches_table3() {
        let s = case1_hyperscale(LlmSize::B8, 4);
        let r = s.retrieval.as_ref().unwrap();
        assert_eq!(r.num_vectors, 64_000_000_000);
        assert_eq!(r.queries_per_retrieval, 4);
        assert_eq!(r.retrievals_per_sequence, 1);
        assert!(s.document_encoder.is_none());
        assert!(s.query_rewriter.is_none());
        assert!(s.reranker.is_none());
    }

    #[test]
    fn case2_matches_table3() {
        let s = case2_long_context(LlmSize::B70, 1_000_000);
        assert_eq!(s.document_encoder.as_ref().unwrap().params, 120.0e6);
        let r = s.retrieval.as_ref().unwrap();
        assert!(r.num_vectors >= 1_000 && r.num_vectors <= 10_000);
        assert!(s.pipeline().contains(&Stage::DatabaseEncode));
    }

    #[test]
    fn case3_matches_table3() {
        for freq in [2u32, 4, 8] {
            let s = case3_iterative(LlmSize::B70, freq);
            assert!(s.is_iterative());
            assert_eq!(s.retrieval.as_ref().unwrap().retrievals_per_sequence, freq);
        }
    }

    #[test]
    fn case4_matches_table3() {
        let s = case4_rewriter_reranker(LlmSize::B70);
        assert_eq!(s.query_rewriter.as_ref().unwrap().params, 8.0e9);
        assert_eq!(s.reranker.as_ref().unwrap().params, 120.0e6);
        assert_eq!(s.rerank_candidates, 16);
        assert_eq!(s.retrieval.as_ref().unwrap().top_k, 5);
        let p = s.pipeline();
        assert_eq!(p[0], Stage::RewritePrefix);
        assert!(p.contains(&Stage::Rerank));
    }

    #[test]
    fn llm_sizes_are_ordered() {
        let params: Vec<f64> = LlmSize::ALL.iter().map(|s| s.params()).collect();
        for w in params.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert_eq!(LlmSize::B70.to_string(), "70B");
    }
}
