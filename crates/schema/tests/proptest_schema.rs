//! Property-based tests for RAGSchema invariants.

use proptest::prelude::*;
use rago_schema::{
    presets, LlmSize, ModelConfig, RagSchema, RetrievalConfig, SequenceProfile, Stage,
};

fn llm_size_strategy() -> impl Strategy<Value = LlmSize> {
    prop_oneof![
        Just(LlmSize::B1),
        Just(LlmSize::B8),
        Just(LlmSize::B70),
        Just(LlmSize::B405),
    ]
}

proptest! {
    /// Every buildable schema has a pipeline that ends with prefix, decode and
    /// respects the canonical stage order.
    #[test]
    fn pipeline_order_is_canonical(
        llm in llm_size_strategy(),
        queries in 1u32..16,
        retrievals in 1u32..16,
        use_rewriter in any::<bool>(),
        use_reranker in any::<bool>(),
    ) {
        let mut builder = RagSchema::builder("prop")
            .generative_llm(llm.model())
            .retrieval(
                RetrievalConfig::hyperscale_64b()
                    .with_queries_per_retrieval(queries)
                    .with_retrievals_per_sequence(retrievals),
            );
        if use_rewriter {
            builder = builder.query_rewriter(ModelConfig::llama3_8b(), 32);
        }
        if use_reranker {
            builder = builder.reranker(ModelConfig::encoder_120m(), 16);
        }
        let schema = builder.build().unwrap();
        let pipeline = schema.pipeline();
        // Last two stages are always prefix then decode.
        prop_assert_eq!(pipeline[pipeline.len() - 2], Stage::Prefix);
        prop_assert_eq!(pipeline[pipeline.len() - 1], Stage::Decode);
        // Pipeline is strictly increasing in canonical order.
        for w in pipeline.windows(2) {
            prop_assert!(w[1] > w[0]);
        }
        // Every stage present has a serving model unless it is retrieval.
        for stage in &pipeline {
            if *stage != Stage::Retrieval {
                prop_assert!(schema.model_for_stage(*stage).is_some());
            }
        }
    }

    /// Scanned bytes scale linearly with the scan fraction and query count.
    #[test]
    fn scanned_bytes_scale_linearly(
        frac in 1e-4f64..1.0,
        queries in 1u32..32,
    ) {
        let base = RetrievalConfig::hyperscale_64b();
        let cfg = base.clone().with_scan_fraction(frac).with_queries_per_retrieval(queries);
        let expected = base.database_bytes() * frac * f64::from(queries);
        prop_assert!((cfg.scanned_bytes_per_retrieval() - expected).abs() < expected * 1e-12);
    }

    /// Sequence profiles with arbitrary positive lengths always validate and
    /// report consistent prefix totals.
    #[test]
    fn sequence_profile_prefix_total(
        question in 1u32..512,
        chunk in 1u32..1024,
        neighbors in 0u32..32,
        decode in 1u32..4096,
    ) {
        let s = SequenceProfile::paper_default()
            .with_question_tokens(question)
            .with_decode_tokens(decode)
            .with_num_neighbors(neighbors);
        let s = SequenceProfile { chunk_tokens: chunk, ..s };
        prop_assert!(s.validate().is_ok());
        prop_assert_eq!(s.prefix_tokens(), question + chunk * neighbors);
        prop_assert_eq!(s.llm_only_prefix_tokens(), question);
    }

    /// Long-context retrieval configs always have at least one vector and a
    /// database proportional to the context length.
    #[test]
    fn long_context_database_grows_with_context(
        ctx in 1_000u64..100_000_000,
    ) {
        let small = RetrievalConfig::long_context(ctx, 128, 768);
        let large = RetrievalConfig::long_context(ctx * 2, 128, 768);
        prop_assert!(small.num_vectors >= 1);
        prop_assert!(large.num_vectors >= small.num_vectors);
        prop_assert!(small.validate().is_ok());
    }

    /// Derived decoder architectures validate across a wide parameter range
    /// and their implied parameter count grows monotonically.
    #[test]
    fn derived_decoders_validate(params_log in 8.0f64..12.0) {
        let params = 10f64.powf(params_log);
        let m = ModelConfig::decoder_with_params("prop", params).unwrap();
        prop_assert!(m.validate().is_ok());
        prop_assert!(m.architecture.implied_params() > 0.0);
    }
}

#[test]
fn presets_cover_all_llm_sizes() {
    for llm in LlmSize::ALL {
        let schema = presets::case1_hyperscale(llm, 2);
        assert!(schema.validate().is_ok());
        assert_eq!(schema.generative_llm.params, llm.params());
    }
}
