//! Statically-dispatched recorders: [`NullRecorder`] compiles to nothing,
//! [`TraceRecorder`] buffers a deterministic event stream.

use crate::event::{sort_events, TraceEvent};
use serde::{Deserialize, Serialize};

/// What a traced run should capture. Threaded through every engine: the
/// engine stores a config, and the traced run paths consult it for the
/// gauge cadence and the per-category gates.
///
/// The *zero-cost* guarantee is static, not runtime: engines are generic
/// over [`Recorder`], every hook is guarded by `R::ENABLED`, and the
/// [`NullRecorder`] instantiation dead-code-eliminates to the recorder-free
/// engine. `TelemetryConfig::disabled()` additionally gates the
/// [`TraceRecorder`] at runtime so a disabled config records nothing even
/// through the traced entry points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryConfig {
    /// Master switch. When false the [`TraceRecorder`] drops every event.
    pub enabled: bool,
    /// Capture per-request spans (queue wait, stage service, decode
    /// residency, cache probes, shed/requeue markers).
    pub spans: bool,
    /// Capture periodic gauges.
    pub gauges: bool,
    /// Capture decision events (router picks, sheds, scaling, faults).
    pub decisions: bool,
    /// Capture simulator self-profiling counters.
    pub profile: bool,
    /// Gauge sampling cadence, in simulated seconds. Ignored when zero or
    /// when `gauges` is off.
    pub gauge_cadence_s: f64,
}

impl TelemetryConfig {
    /// Everything off — runs are pinned bit-identical to the untraced
    /// stack.
    pub fn disabled() -> Self {
        TelemetryConfig {
            enabled: false,
            spans: false,
            gauges: false,
            decisions: false,
            profile: false,
            gauge_cadence_s: 0.0,
        }
    }

    /// Everything on, sampling gauges every `gauge_cadence_s` simulated
    /// seconds.
    pub fn full(gauge_cadence_s: f64) -> Self {
        TelemetryConfig {
            enabled: true,
            spans: true,
            gauges: true,
            decisions: true,
            profile: true,
            gauge_cadence_s,
        }
    }

    /// Whether a given lane should be captured under this config.
    pub fn captures(&self, lane: crate::Lane) -> bool {
        if !self.enabled {
            return false;
        }
        match lane {
            crate::Lane::Request => self.spans,
            crate::Lane::Gauge => self.gauges && self.gauge_cadence_s > 0.0,
            crate::Lane::Decision => self.decisions,
            crate::Lane::Transfer => self.spans,
            crate::Lane::Profile => self.profile,
        }
    }
}

impl Default for TelemetryConfig {
    /// The default is everything on at a 0.5 s gauge cadence.
    fn default() -> Self {
        TelemetryConfig::full(0.5)
    }
}

/// A sink for [`TraceEvent`]s. Engines are generic over this trait; every
/// recording site is guarded by `if R::ENABLED { .. }` so the
/// [`NullRecorder`] instantiation compiles to the recorder-free code and
/// the event stream can never influence simulation state.
pub trait Recorder {
    /// Whether this recorder captures anything at all. `false` turns every
    /// hook into dead code.
    const ENABLED: bool;

    /// Records one event. The recorder assigns the deterministic `seq`.
    fn record(&mut self, ev: TraceEvent);
}

/// The recorder that records nothing and compiles to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _ev: TraceEvent) {}
}

/// A buffering recorder. Events keep their recording order as `seq`, so a
/// seeded run replays to a byte-identical export.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    config: TelemetryConfig,
    events: Vec<TraceEvent>,
    next_seq: u64,
}

impl TraceRecorder {
    /// A recorder honouring `config`'s gates and cadence.
    pub fn new(config: TelemetryConfig) -> Self {
        TraceRecorder {
            config,
            events: Vec::new(),
            next_seq: 0,
        }
    }

    /// The config this recorder was built with.
    pub fn config(&self) -> &TelemetryConfig {
        &self.config
    }

    /// The buffered events, in recording order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the recorder and returns its events in canonical export
    /// order `(time_s, seq)`.
    pub fn into_events(self) -> Vec<TraceEvent> {
        let mut events = self.events;
        sort_events(&mut events);
        events
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl Recorder for TraceRecorder {
    const ENABLED: bool = true;

    fn record(&mut self, mut ev: TraceEvent) {
        if !self.config.captures(ev.lane) {
            return;
        }
        ev.seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(ev);
    }
}
