//! Self-profiling of the simulator's own internals ([`SimProfile`]):
//! event-queue lane throughput, calendar rebuilds, memoization hit rates,
//! and stochastic-search round dynamics. Where [`crate::TraceRecorder`]
//! answers "why did the fleet behave like this", `SimProfile` answers "why
//! was the simulator fast or slow" — perf regressions become observable
//! counters instead of inferred bench deltas.

use crate::json::escape_json;
use std::fmt::Write as _;

/// Counters describing one simulator run's internal work.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimProfile {
    /// Simulated seconds covered by the run (makespan).
    pub sim_time_s: f64,
    /// Total DES events processed.
    pub events: u64,
    /// Events popped from the fault lane of the event queue.
    pub fault_pops: u64,
    /// Events popped from the FIFO arrival lane.
    pub arrival_pops: u64,
    /// Events popped from the bucketed calendar lane.
    pub scheduled_pops: u64,
    /// Calendar bucket-array rebuilds (growth or width re-estimation).
    pub calendar_rebuilds: u64,
    /// Full-scan fallbacks after an empty calendar revolution.
    pub calendar_fallback_scans: u64,
    /// Final calendar bucket count.
    pub calendar_buckets: u64,
    /// Final calendar bucket width, in seconds.
    pub calendar_width_s: f64,
    /// `StageProfiler` memoization hits.
    pub profiler_memo_hits: u64,
    /// `StageProfiler` memoization misses (cold cost-model evaluations).
    pub profiler_memo_misses: u64,
    /// Stochastic-search rounds completed.
    pub search_rounds: u64,
    /// Novel candidate evaluations per search round, oldest first.
    pub search_round_evals: Vec<u64>,
    /// Beam admissions (churn) per search round, oldest first.
    pub search_beam_churn: Vec<u64>,
}

impl SimProfile {
    /// DES events processed per simulated second (0 for an empty run).
    pub fn events_per_sim_second(&self) -> f64 {
        if self.sim_time_s <= 0.0 {
            0.0
        } else {
            self.events as f64 / self.sim_time_s
        }
    }

    /// `StageProfiler` memoization hit rate in `[0, 1]` (0 when the
    /// profiler was never consulted).
    pub fn memo_hit_rate(&self) -> f64 {
        let total = self.profiler_memo_hits + self.profiler_memo_misses;
        if total == 0 {
            0.0
        } else {
            self.profiler_memo_hits as f64 / total as f64
        }
    }

    /// Accumulates another profile into this one (lane counters add;
    /// calendar geometry keeps the maximum; round vectors concatenate).
    pub fn merge_from(&mut self, other: &SimProfile) {
        self.sim_time_s = self.sim_time_s.max(other.sim_time_s);
        self.events += other.events;
        self.fault_pops += other.fault_pops;
        self.arrival_pops += other.arrival_pops;
        self.scheduled_pops += other.scheduled_pops;
        self.calendar_rebuilds += other.calendar_rebuilds;
        self.calendar_fallback_scans += other.calendar_fallback_scans;
        self.calendar_buckets = self.calendar_buckets.max(other.calendar_buckets);
        self.calendar_width_s = self.calendar_width_s.max(other.calendar_width_s);
        self.profiler_memo_hits += other.profiler_memo_hits;
        self.profiler_memo_misses += other.profiler_memo_misses;
        self.search_rounds += other.search_rounds;
        self.search_round_evals
            .extend_from_slice(&other.search_round_evals);
        self.search_beam_churn
            .extend_from_slice(&other.search_beam_churn);
    }

    /// Emits every counter as `Counter` events on the [`crate::Lane::Profile`]
    /// lane at `time_s`, prefixed `sim.` — so self-profiling rides in the
    /// same trace file as the request spans.
    pub fn record_into<R: crate::Recorder>(&self, rec: &mut R, time_s: f64, track: u32) {
        if !R::ENABLED {
            return;
        }
        use crate::event::{Lane, TraceEvent};
        let mut emit = |name: &str, value: f64| {
            rec.record(TraceEvent::counter(
                time_s,
                track,
                Lane::Profile,
                name,
                value,
            ));
        };
        emit("sim.events", self.events as f64);
        emit("sim.events_per_sim_s", self.events_per_sim_second());
        emit("sim.fault_pops", self.fault_pops as f64);
        emit("sim.arrival_pops", self.arrival_pops as f64);
        emit("sim.scheduled_pops", self.scheduled_pops as f64);
        emit("sim.calendar_rebuilds", self.calendar_rebuilds as f64);
        emit(
            "sim.calendar_fallback_scans",
            self.calendar_fallback_scans as f64,
        );
        emit("sim.calendar_buckets", self.calendar_buckets as f64);
        emit("sim.calendar_width_s", self.calendar_width_s);
        if self.profiler_memo_hits + self.profiler_memo_misses > 0 {
            emit("sim.profiler_memo_hits", self.profiler_memo_hits as f64);
            emit("sim.profiler_memo_misses", self.profiler_memo_misses as f64);
            emit("sim.profiler_memo_hit_rate", self.memo_hit_rate());
        }
        if self.search_rounds > 0 {
            emit("sim.search_rounds", self.search_rounds as f64);
        }
    }

    /// Hand-rendered JSON object (the workspace `serde` is a no-op shim).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"sim_time_s\":{:.9},\"events\":{},\"fault_pops\":{},\"arrival_pops\":{},\
             \"scheduled_pops\":{},\"calendar_rebuilds\":{},\"calendar_fallback_scans\":{},\
             \"calendar_buckets\":{},\"calendar_width_s\":{:.9},\"profiler_memo_hits\":{},\
             \"profiler_memo_misses\":{},\"memo_hit_rate\":{:.9},\"search_rounds\":{}",
            self.sim_time_s,
            self.events,
            self.fault_pops,
            self.arrival_pops,
            self.scheduled_pops,
            self.calendar_rebuilds,
            self.calendar_fallback_scans,
            self.calendar_buckets,
            self.calendar_width_s,
            self.profiler_memo_hits,
            self.profiler_memo_misses,
            self.memo_hit_rate(),
            self.search_rounds,
        );
        let list = |items: &[u64]| {
            let mut s = String::from("[");
            for (i, v) in items.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{v}");
            }
            s.push(']');
            s
        };
        let _ = write!(
            out,
            ",\"search_round_evals\":{},\"search_beam_churn\":{}",
            list(&self.search_round_evals),
            list(&self.search_beam_churn)
        );
        out.push('}');
        debug_assert!(
            crate::json::validate_json(&out).is_ok(),
            "{}",
            escape_json(&out)
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NullRecorder, TelemetryConfig, TraceRecorder};

    fn sample() -> SimProfile {
        SimProfile {
            sim_time_s: 10.0,
            events: 1000,
            fault_pops: 2,
            arrival_pops: 500,
            scheduled_pops: 498,
            calendar_rebuilds: 3,
            calendar_fallback_scans: 1,
            calendar_buckets: 64,
            calendar_width_s: 0.25,
            profiler_memo_hits: 90,
            profiler_memo_misses: 10,
            search_rounds: 2,
            search_round_evals: vec![256, 128],
            search_beam_churn: vec![8, 3],
        }
    }

    #[test]
    fn rates_and_merge() {
        let mut p = sample();
        assert!((p.events_per_sim_second() - 100.0).abs() < 1e-12);
        assert!((p.memo_hit_rate() - 0.9).abs() < 1e-12);
        p.merge_from(&sample());
        assert_eq!(p.events, 2000);
        assert_eq!(p.calendar_buckets, 64);
        assert_eq!(p.search_round_evals.len(), 4);
    }

    #[test]
    fn json_parses_and_null_recorder_is_silent() {
        let p = sample();
        crate::json::validate_json(&p.to_json()).expect("profile json parses");
        p.record_into(&mut NullRecorder, 10.0, 0);
        let mut rec = TraceRecorder::new(TelemetryConfig::full(0.5));
        p.record_into(&mut rec, 10.0, 0);
        assert!(rec.len() >= 12, "expected counters, got {}", rec.len());
    }
}
