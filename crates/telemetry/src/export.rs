//! Trace exporters: Chrome-trace/Perfetto JSON and JSONL.
//!
//! Both exporters first sort a copy of the events into the canonical
//! `(time_s, seq)` order, then render with fixed-precision `format!` so a
//! seeded run exports byte-identical text on every platform and worker
//! count. All JSON is rendered by hand (the workspace `serde` is a no-op
//! shim); `crate::json::validate_json` proves it parses.

use crate::event::{sort_events, Lane, Phase, TraceEvent};
use crate::json::escape_json;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Microseconds with a fixed 3-decimal render (Chrome-trace `ts` unit).
fn ts_us(time_s: f64) -> String {
    format!("{:.3}", time_s * 1e6)
}

/// Fixed 9-decimal render for seconds and metric values — matches the
/// golden-snapshot convention used across the repo.
fn f9(v: f64) -> String {
    format!("{v:.9}")
}

/// Human label for a track id.
fn track_label(track: u32) -> String {
    if track == crate::event::FLEET_TRACK {
        "fleet".to_string()
    } else {
        format!("replica {track}")
    }
}

/// Renders events as a Chrome-trace / Perfetto-loadable JSON document
/// (`{"displayTimeUnit":"ms","traceEvents":[...]}`): spans as `B`/`E`
/// pairs, instants as `i`, counters as `C`, plus `M` metadata naming each
/// track and lane. Load it at <https://ui.perfetto.dev> or
/// `chrome://tracing`.
pub fn export_chrome_trace(events: &[TraceEvent]) -> String {
    let mut sorted = events.to_vec();
    sort_events(&mut sorted);

    let mut out = String::with_capacity(128 + 160 * sorted.len());
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut emit = |line: String, out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
        out.push_str(&line);
    };

    // Metadata: name every (track, lane) pair present so Perfetto shows
    // "replica 0 / request" instead of raw pid/tid integers.
    let mut pairs: BTreeSet<(u32, Lane)> = BTreeSet::new();
    for ev in &sorted {
        pairs.insert((ev.track, ev.lane));
    }
    let tracks: BTreeSet<u32> = pairs.iter().map(|&(t, _)| t).collect();
    for &track in &tracks {
        emit(
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{track},\"tid\":0,\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape_json(&track_label(track))
            ),
            &mut out,
        );
    }
    for &(track, lane) in &pairs {
        emit(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{track},\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                lane.name(),
                tid = lane.id()
            ),
            &mut out,
        );
    }

    for ev in &sorted {
        let mut args = String::new();
        if let Some(req) = ev.req {
            let _ = write!(args, "\"req\":{req}");
        }
        if let Some(class) = ev.class {
            if !args.is_empty() {
                args.push(',');
            }
            let _ = write!(args, "\"class\":{class}");
        }
        if let Some(value) = ev.value {
            if !args.is_empty() {
                args.push(',');
            }
            let _ = write!(args, "\"value\":{}", f9(value));
        }
        if !ev.detail.is_empty() {
            if !args.is_empty() {
                args.push(',');
            }
            let _ = write!(args, "\"detail\":\"{}\"", escape_json(&ev.detail));
        }

        // Request-scoped spans become *async* events (`b`/`e` keyed by the
        // request id): unlike synchronous `B`/`E` pairs they need no stack
        // discipline per thread, so overlapping per-request spans render
        // correctly in Perfetto.
        let ph = match (ev.phase, ev.req) {
            (Phase::Begin, Some(_)) => "b",
            (Phase::End, Some(_)) => "e",
            (phase, _) => phase.letter(),
        };
        let mut line = format!(
            "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"{ph}\",\"ts\":{ts},\
             \"pid\":{pid},\"tid\":{tid}",
            name = escape_json(&ev.name),
            cat = ev.lane.name(),
            ts = ts_us(ev.time_s),
            pid = ev.track,
            tid = ev.lane.id(),
        );
        if let (Phase::Begin | Phase::End, Some(req)) = (ev.phase, ev.req) {
            let _ = write!(line, ",\"id\":{req}");
        }
        if ev.phase == Phase::Instant {
            line.push_str(",\"s\":\"t\"");
        }
        if !args.is_empty() {
            let _ = write!(line, ",\"args\":{{{args}}}");
        }
        line.push('}');
        emit(line, &mut out);
    }
    out.push_str("\n]}\n");
    out
}

/// Renders events as newline-delimited JSON, one event per line, in
/// canonical `(time_s, seq)` order. Optional fields (`req`, `class`,
/// `value`, `detail`) are omitted when absent.
pub fn export_jsonl(events: &[TraceEvent]) -> String {
    let mut sorted = events.to_vec();
    sort_events(&mut sorted);

    let mut out = String::with_capacity(120 * sorted.len());
    for ev in &sorted {
        let _ = write!(
            out,
            "{{\"t\":{t},\"seq\":{seq},\"track\":{track},\"lane\":\"{lane}\",\
             \"phase\":\"{phase}\",\"name\":\"{name}\"",
            t = f9(ev.time_s),
            seq = ev.seq,
            track = ev.track,
            lane = ev.lane.name(),
            phase = ev.phase.name(),
            name = escape_json(&ev.name),
        );
        if let Some(req) = ev.req {
            let _ = write!(out, ",\"req\":{req}");
        }
        if let Some(class) = ev.class {
            let _ = write!(out, ",\"class\":{class}");
        }
        if let Some(value) = ev.value {
            let _ = write!(out, ",\"value\":{}", f9(value));
        }
        if !ev.detail.is_empty() {
            let _ = write!(out, ",\"detail\":\"{}\"", escape_json(&ev.detail));
        }
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{validate_json, validate_jsonl};

    fn sample() -> Vec<TraceEvent> {
        let mut evs = vec![
            TraceEvent::begin(0.5, 0, Lane::Request, "queue")
                .with_req(1)
                .with_class(0),
            TraceEvent::end(1.0, 0, Lane::Request, "queue")
                .with_req(1)
                .with_class(0),
            TraceEvent::instant(0.75, 1, Lane::Decision, "route")
                .with_req(1)
                .with_detail("policy=LeastOutstanding -> r1 \"quoted\""),
            TraceEvent::counter(1.0, 1, Lane::Gauge, "queue_depth", 3.0),
        ];
        for (i, ev) in evs.iter_mut().enumerate() {
            ev.seq = i as u64;
        }
        evs
    }

    #[test]
    fn chrome_trace_parses_and_is_sorted() {
        let text = export_chrome_trace(&sample());
        validate_json(&text).expect("chrome trace must parse");
        // Request-scoped spans export as async `b`/`e` keyed by the id.
        let b = text.find("\"ph\":\"b\"").unwrap();
        let i = text.find("\"ph\":\"i\"").unwrap();
        let e = text.find("\"ph\":\"e\"").unwrap();
        assert!(b < i && i < e, "events must be time-ordered");
        assert!(
            text.contains("\"id\":1"),
            "async spans carry the request id"
        );
    }

    #[test]
    fn jsonl_parses_line_by_line() {
        let text = export_jsonl(&sample());
        validate_jsonl(&text).expect("jsonl must parse");
        assert_eq!(text.lines().count(), 4);
        assert!(text.lines().next().unwrap().contains("\"name\":\"queue\""));
    }

    #[test]
    fn export_is_deterministic_under_input_order() {
        let evs = sample();
        let mut reversed = evs.clone();
        reversed.reverse();
        assert_eq!(export_chrome_trace(&evs), export_chrome_trace(&reversed));
        assert_eq!(export_jsonl(&evs), export_jsonl(&reversed));
    }
}
