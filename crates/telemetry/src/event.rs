//! The flat trace-event model shared by every recorder and exporter.
//!
//! One simulator run produces a single stream of [`TraceEvent`]s. Events
//! are keyed `(time_s, seq)`: `time_s` is simulated time and `seq` is the
//! deterministic recording order assigned by the recorder, so a seeded run
//! exports a byte-identical stream no matter how many worker threads
//! advanced the replicas (recording only ever happens in serial
//! orchestration code or in post-hoc derivation over per-replica logs
//! merged in replica order).

/// The track (Perfetto "process") an event belongs to. Replica-scoped
/// events use the replica/slot index; fleet-scoped events use
/// [`FLEET_TRACK`].
pub const FLEET_TRACK: u32 = u32::MAX;

/// Event category — maps to the Perfetto "thread" within a track, and to
/// the `cat` field of exported Chrome-trace events. The per-lane timestamp
/// monotonicity property (`tests/proptest_telemetry.rs`) is stated over
/// `(track, lane)` pairs of the export-sorted stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lane {
    /// Per-request lifecycle spans: queue wait, stage service, decode
    /// residency, plus instant markers (first token, cache probes, shed,
    /// requeue).
    Request,
    /// Periodic counter samples: queue depth, decode fill, routable
    /// replicas, cache hit rates.
    Gauge,
    /// Policy decisions with reasons: router picks, admission sheds,
    /// autoscaler actions, fault injections/recoveries.
    Decision,
    /// KV-handoff transfer spans between disaggregated pools.
    Transfer,
    /// Simulator self-profiling counters (event-queue internals, memo
    /// rates, search rounds).
    Profile,
}

impl Lane {
    /// Stable lane id used as the Chrome-trace `tid`.
    pub fn id(self) -> u32 {
        match self {
            Lane::Request => 0,
            Lane::Gauge => 1,
            Lane::Decision => 2,
            Lane::Transfer => 3,
            Lane::Profile => 4,
        }
    }

    /// Stable lowercase name used as the Chrome-trace `cat` and the JSONL
    /// `lane` field.
    pub fn name(self) -> &'static str {
        match self {
            Lane::Request => "request",
            Lane::Gauge => "gauge",
            Lane::Decision => "decision",
            Lane::Transfer => "transfer",
            Lane::Profile => "profile",
        }
    }
}

/// Chrome-trace phase of an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Span open (`ph: "B"`). Every `Begin` has a matching [`Phase::End`]
    /// on the same `(track, lane, name, req)` key.
    Begin,
    /// Span close (`ph: "E"`).
    End,
    /// Point event (`ph: "i"`).
    Instant,
    /// Counter sample (`ph: "C"`); the sample value lives in
    /// [`TraceEvent::value`].
    Counter,
}

impl Phase {
    /// The Chrome-trace `ph` letter.
    pub fn letter(self) -> &'static str {
        match self {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Instant => "i",
            Phase::Counter => "C",
        }
    }

    /// Stable lowercase name used in the JSONL export.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Begin => "begin",
            Phase::End => "end",
            Phase::Instant => "instant",
            Phase::Counter => "counter",
        }
    }
}

/// One telemetry event. Construct with the [`TraceEvent::begin`],
/// [`TraceEvent::end`], [`TraceEvent::instant`], or [`TraceEvent::counter`]
/// builders and refine with the `with_*` setters; the recorder assigns
/// `seq` on [`crate::Recorder::record`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Simulated time of the event, in seconds.
    pub time_s: f64,
    /// Recording order, assigned by the recorder — the deterministic
    /// tie-break for equal timestamps.
    pub seq: u64,
    /// Track (replica/slot index, or [`FLEET_TRACK`] for fleet scope).
    pub track: u32,
    /// Event category.
    pub lane: Lane,
    /// Chrome-trace phase.
    pub phase: Phase,
    /// Event name (span name, gauge name, decision kind).
    pub name: String,
    /// Request id, for request-scoped events.
    pub req: Option<u64>,
    /// Workload class, for request-scoped events.
    pub class: Option<u32>,
    /// Sample value for counters, metric value for decisions (for example
    /// the queue depth that triggered a scale-out).
    pub value: Option<f64>,
    /// Free-text reason ("why"), for decision events.
    pub detail: String,
}

impl TraceEvent {
    fn new(time_s: f64, track: u32, lane: Lane, phase: Phase, name: impl Into<String>) -> Self {
        TraceEvent {
            time_s,
            seq: 0,
            track,
            lane,
            phase,
            name: name.into(),
            req: None,
            class: None,
            value: None,
            detail: String::new(),
        }
    }

    /// A span-open event.
    pub fn begin(time_s: f64, track: u32, lane: Lane, name: impl Into<String>) -> Self {
        Self::new(time_s, track, lane, Phase::Begin, name)
    }

    /// A span-close event.
    pub fn end(time_s: f64, track: u32, lane: Lane, name: impl Into<String>) -> Self {
        Self::new(time_s, track, lane, Phase::End, name)
    }

    /// A point event.
    pub fn instant(time_s: f64, track: u32, lane: Lane, name: impl Into<String>) -> Self {
        Self::new(time_s, track, lane, Phase::Instant, name)
    }

    /// A counter sample.
    pub fn counter(
        time_s: f64,
        track: u32,
        lane: Lane,
        name: impl Into<String>,
        value: f64,
    ) -> Self {
        let mut ev = Self::new(time_s, track, lane, Phase::Counter, name);
        ev.value = Some(value);
        ev
    }

    /// Attaches a request id.
    pub fn with_req(mut self, req: u64) -> Self {
        self.req = Some(req);
        self
    }

    /// Attaches a workload class.
    pub fn with_class(mut self, class: u32) -> Self {
        self.class = Some(class);
        self
    }

    /// Attaches a metric value.
    pub fn with_value(mut self, value: f64) -> Self {
        self.value = Some(value);
        self
    }

    /// Attaches a free-text reason.
    pub fn with_detail(mut self, detail: impl Into<String>) -> Self {
        self.detail = detail.into();
        self
    }

    /// The export sort key: time first, recording order as the
    /// deterministic tie-break. `time_s` is finite in every event the
    /// simulators emit, so the bit-level comparison equals numeric order.
    pub fn sort_key(&self) -> (u64, u64) {
        debug_assert!(self.time_s.is_finite(), "non-finite event time");
        // Monotone map from finite f64 to u64 (all sim times are >= 0).
        (self.time_s.max(0.0).to_bits(), self.seq)
    }
}

/// Sorts events into the canonical export order `(time_s, seq)`.
pub fn sort_events(events: &mut [TraceEvent]) {
    events.sort_by_key(|e| e.sort_key());
}
