//! Post-hoc summarization of an event stream into a [`TelemetryReport`]:
//! time-in-state breakdowns and per-class queueing attribution.

use crate::event::{sort_events, Lane, Phase, TraceEvent};
use std::collections::BTreeMap;

/// Total time spent in one named state across all requests and tracks.
#[derive(Debug, Clone, PartialEq)]
pub struct StateTime {
    /// The span name ("queue", "stage 0", "decode", "kv_transfer", ...).
    pub name: String,
    /// Number of completed spans with this name.
    pub spans: usize,
    /// Sum of span durations, in seconds.
    pub total_s: f64,
}

/// Queueing attribution for one workload class.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassQueueing {
    /// The workload class.
    pub class: u32,
    /// Requests of this class with a completed queue span.
    pub requests: usize,
    /// Sum of their queue-wait durations, in seconds.
    pub total_queue_s: f64,
}

impl ClassQueueing {
    /// Mean queue wait per request of this class, in seconds.
    pub fn mean_queue_s(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_queue_s / self.requests as f64
        }
    }
}

/// A summary of one recorded run: where time went, which classes queued,
/// and how many events of each kind were captured.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetryReport {
    /// Time-in-state totals over every completed span, sorted by name.
    pub time_in_state: Vec<StateTime>,
    /// Per-class queue-wait attribution, sorted by class.
    pub class_queueing: Vec<ClassQueueing>,
    /// Completed (begin/end matched) spans.
    pub spans: usize,
    /// Begin events left open at the end of the stream (requests still in
    /// flight when the run ended).
    pub open_spans: usize,
    /// Instant events.
    pub instants: usize,
    /// Counter samples (gauges + profile counters).
    pub counters: usize,
    /// Decision events.
    pub decisions: usize,
}

impl TelemetryReport {
    /// Builds the report from an event stream (any order; the stream is
    /// re-sorted into canonical order first).
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut sorted = events.to_vec();
        sort_events(&mut sorted);

        let mut report = TelemetryReport::default();
        let mut states: BTreeMap<String, StateTime> = BTreeMap::new();
        let mut classes: BTreeMap<u32, ClassQueueing> = BTreeMap::new();
        // Open spans keyed (track, lane, name, req) — LIFO within a key.
        let mut open: BTreeMap<(u32, u32, String, Option<u64>), Vec<&TraceEvent>> = BTreeMap::new();

        for ev in &sorted {
            if ev.lane == Lane::Decision {
                report.decisions += 1;
            }
            match ev.phase {
                Phase::Begin => {
                    open.entry((ev.track, ev.lane.id(), ev.name.clone(), ev.req))
                        .or_default()
                        .push(ev);
                }
                Phase::End => {
                    let key = (ev.track, ev.lane.id(), ev.name.clone(), ev.req);
                    if let Some(begin) = open.get_mut(&key).and_then(Vec::pop) {
                        report.spans += 1;
                        let dur = (ev.time_s - begin.time_s).max(0.0);
                        let state = states.entry(ev.name.clone()).or_insert_with(|| StateTime {
                            name: ev.name.clone(),
                            spans: 0,
                            total_s: 0.0,
                        });
                        state.spans += 1;
                        state.total_s += dur;
                        if ev.name == "queue" {
                            if let Some(class) = ev.class.or(begin.class) {
                                let cq = classes.entry(class).or_insert_with(|| ClassQueueing {
                                    class,
                                    requests: 0,
                                    total_queue_s: 0.0,
                                });
                                cq.requests += 1;
                                cq.total_queue_s += dur;
                            }
                        }
                    }
                }
                Phase::Instant => report.instants += 1,
                Phase::Counter => report.counters += 1,
            }
        }

        report.open_spans = open.values().map(Vec::len).sum();
        report.time_in_state = states.into_values().collect();
        report.class_queueing = classes.into_values().collect();
        report
    }

    /// Renders the report as aligned plain text, one line per state and
    /// class.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "spans={} open={} instants={} counters={} decisions={}",
            self.spans, self.open_spans, self.instants, self.counters, self.decisions
        );
        for st in &self.time_in_state {
            let _ = writeln!(
                out,
                "state {:<12} spans={:<7} total_s={:.6}",
                st.name, st.spans, st.total_s
            );
        }
        for cq in &self.class_queueing {
            let _ = writeln!(
                out,
                "class {:<3} queued_requests={:<7} total_queue_s={:.6} mean_queue_s={:.6}",
                cq.class,
                cq.requests,
                cq.total_queue_s,
                cq.mean_queue_s()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attributes_queue_time_per_class() {
        let mut evs = vec![
            TraceEvent::begin(0.0, 0, Lane::Request, "queue")
                .with_req(1)
                .with_class(7),
            TraceEvent::end(2.0, 0, Lane::Request, "queue")
                .with_req(1)
                .with_class(7),
            TraceEvent::begin(2.0, 0, Lane::Request, "stage 0").with_req(1),
            TraceEvent::end(3.0, 0, Lane::Request, "stage 0").with_req(1),
            TraceEvent::begin(9.0, 0, Lane::Request, "queue")
                .with_req(2)
                .with_class(7),
            TraceEvent::instant(1.0, 0, Lane::Decision, "route"),
            TraceEvent::counter(1.0, 0, Lane::Gauge, "queue_depth", 1.0),
        ];
        for (i, ev) in evs.iter_mut().enumerate() {
            ev.seq = i as u64;
        }
        let report = TelemetryReport::from_events(&evs);
        assert_eq!(report.spans, 2);
        assert_eq!(report.open_spans, 1);
        assert_eq!(report.instants, 1);
        assert_eq!(report.counters, 1);
        assert_eq!(report.decisions, 1);
        assert_eq!(report.class_queueing.len(), 1);
        let cq = &report.class_queueing[0];
        assert_eq!((cq.class, cq.requests), (7, 1));
        assert!((cq.total_queue_s - 2.0).abs() < 1e-12);
        assert_eq!(report.time_in_state.len(), 2);
        assert!(!report.render().is_empty());
    }
}
