//! A minimal hand-rolled JSON *syntax* validator.
//!
//! The workspace is offline and its `serde` is a no-op shim, so every
//! exporter renders JSON by hand — and this validator is how tests and the
//! CI bench prove the rendered output actually parses. It checks syntax
//! only (structure, string escapes, number shape); it does not build a
//! document tree.

/// Validates that `input` is one complete JSON value (object, array,
/// string, number, or literal) with nothing but whitespace after it.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error, with a
/// byte offset.
pub fn validate_json(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(())
}

/// Validates newline-delimited JSON: every non-empty line must be one
/// complete JSON value.
///
/// # Errors
///
/// Returns the first offending line number (1-based) and the underlying
/// syntax error.
pub fn validate_jsonl(input: &str) -> Result<(), String> {
    for (lineno, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate_json(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    match bytes.get(*pos) {
        Some(b'{') => object(bytes, pos),
        Some(b'[') => array(bytes, pos),
        Some(b'"') => string(bytes, pos),
        Some(b't') => literal(bytes, pos, "true"),
        Some(b'f') => literal(bytes, pos, "false"),
        Some(b'n') => literal(bytes, pos, "null"),
        Some(c) if *c == b'-' || c.is_ascii_digit() => number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos}", pos = *pos)),
        None => Err("unexpected end of input".into()),
    }
}

fn literal(bytes: &[u8], pos: &mut usize, word: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn object(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn array(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume opening quote
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match bytes.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => {
                                    return Err(format!("bad \\u escape at byte {pos}", pos = *pos))
                                }
                            }
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
            }
            0x00..=0x1F => return Err(format!("raw control byte in string at {pos}", pos = *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_digits = eat_digits(bytes, pos);
    if int_digits == 0 {
        return Err(format!("expected digits at byte {pos}", pos = *pos));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if eat_digits(bytes, pos) == 0 {
            return Err(format!(
                "expected fraction digits at byte {pos}",
                pos = *pos
            ));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if eat_digits(bytes, pos) == 0 {
            return Err(format!(
                "expected exponent digits at byte {pos}",
                pos = *pos
            ));
        }
    }
    // Reject leading zeros like 007 (but allow 0, 0.5).
    let text = &bytes[start..*pos];
    let unsigned = if text.first() == Some(&b'-') {
        &text[1..]
    } else {
        text
    };
    if unsigned.len() > 1 && unsigned[0] == b'0' && unsigned[1].is_ascii_digit() {
        return Err(format!("leading zero in number at byte {start}"));
    }
    Ok(())
}

fn eat_digits(bytes: &[u8], pos: &mut usize) -> usize {
    let start = *pos;
    while matches!(bytes.get(*pos), Some(d) if d.is_ascii_digit()) {
        *pos += 1;
    }
    *pos - start
}

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            "0",
            r#"{"a":[1,2,{"b":"c\nd"}],"e":true}"#,
            r#"  [ 1 , "two" , null ]  "#,
        ] {
            assert!(validate_json(doc).is_ok(), "should accept {doc:?}");
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "01",
            "1.",
            "nul",
            "\"unterminated",
            "{} {}",
            "{\"a\"=1}",
        ] {
            assert!(validate_json(doc).is_err(), "should reject {doc:?}");
        }
    }

    #[test]
    fn jsonl_reports_line() {
        let err = validate_jsonl("{}\n{\"bad\"\n{}").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn escape_round_trips_through_validator() {
        let s = format!("\"{}\"", escape_json("a\"b\\c\nd\te\u{1}"));
        assert!(validate_json(&s).is_ok(), "{s}");
    }
}
