//! # rago-telemetry
//!
//! A zero-cost-when-off tracing and profiling layer for the RAGO
//! simulators.
//!
//! The design has three pieces:
//!
//! - **[`Recorder`]** — a statically-dispatched sink trait. Engines are
//!   generic over it; every hook is guarded by `R::ENABLED`, so the
//!   [`NullRecorder`] instantiation compiles to exactly the recorder-free
//!   engine (disabled runs stay bit-identical, and hooks can never mutate
//!   simulation state because they only *read*).
//! - **[`TraceRecorder`]** — buffers [`TraceEvent`]s keyed `(time_s, seq)`
//!   in deterministic recording order, honouring a [`TelemetryConfig`]'s
//!   per-category gates and gauge cadence. Export with
//!   [`export_chrome_trace`] (Perfetto-loadable) or [`export_jsonl`], and
//!   summarize with [`TelemetryReport`].
//! - **[`SimProfile`]** — self-profiling counters for the simulator's own
//!   hot paths (event-queue lanes and calendar rebuilds, `StageProfiler`
//!   memoization, stochastic-search rounds).
//!
//! All JSON is rendered by hand and checked by the bundled
//! [`validate_json`] parser — the workspace `serde` is a no-op shim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod export;
mod json;
mod profile;
mod recorder;
mod report;

pub use event::{sort_events, Lane, Phase, TraceEvent, FLEET_TRACK};
pub use export::{export_chrome_trace, export_jsonl};
pub use json::{escape_json, validate_json, validate_jsonl};
pub use profile::SimProfile;
pub use recorder::{NullRecorder, Recorder, TelemetryConfig, TraceRecorder};
pub use report::{ClassQueueing, StateTime, TelemetryReport};
