//! Property-based tests for the chaos layer: fault injection, admission
//! control, and predictive scaling.
//!
//! Invariants:
//!
//! 1. **Conservation under crashes** — for any crash time, restart delay,
//!    crash policy, and fleet size, every injected request is accounted
//!    for exactly once: `completed + shed + failed == injected`, and the
//!    completed timelines carry unique ids from the input set.
//! 2. **Shed is monotone in priority** — two classes offering identical
//!    arrival patterns shed in priority order: the higher-priority class
//!    never sheds more than the lower-priority one.
//! 3. **Degenerate fault timing** — a crash scheduled after the fleet has
//!    drained leaves the served timelines bit-identical to the fault-free
//!    run; a crash at t=0 with no restart on a one-replica fleet fails
//!    everything but still conserves the request set.
//! 4. **Flat predictive plans are static fleets** — a
//!    [`ScalingPlan::flat`] predictive driver reproduces the static driver
//!    bit-exactly for any replica count.

use proptest::prelude::*;
use rago::schema::RouterPolicy;
use rago::serving_sim::engine::{DecodeSpec, EngineRequest, LatencyTable, PipelineSpec, StageSpec};
use rago::serving_sim::faults::{
    AdmissionConfig, ChaosEngine, CrashPolicy, FaultEvent, FaultSchedule, PredictivePolicy,
    ScaleDriver, ScalingPlan,
};

fn pipeline(stage_latency: f64, batch: u32) -> PipelineSpec {
    PipelineSpec::new(
        vec![StageSpec::new(
            "prefix",
            0,
            batch,
            LatencyTable::from_fn(batch, |b| stage_latency * (1.0 + 0.1 * f64::from(b))),
        )],
        DecodeSpec::new(
            8,
            LatencyTable::from_fn(8, |b| 2e-3 * (1.0 + 0.05 * f64::from(b))),
        ),
    )
}

/// A deterministic request list with the given inter-arrival gap; classes
/// alternate 0, 1 when `classes == 2` (arriving at the *same* instant in
/// pairs so both classes face identical queue depths).
fn requests(n: usize, gap: f64, classes: u32) -> Vec<EngineRequest> {
    (0..n)
        .map(|i| EngineRequest {
            id: i as u64,
            arrival_s: gap * (i as u64 / u64::from(classes)) as f64,
            prefix_tokens: 0,
            decode_tokens: 1 + (i as u32 * 7) % 17,
            class: i as u32 % classes,
            identity: None,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any crash instant, restart delay, crash policy, and fleet size,
    /// the chaos run partitions the request set: nothing is lost,
    /// duplicated, or invented.
    #[test]
    fn crashes_conserve_the_request_set(
        n in 20usize..70,
        replicas in 1u32..4,
        crash_decis in 0u32..40,
        restart_case in 0u32..3,
        fail_policy in 0u32..2,
    ) {
        let reqs = requests(n, 0.02, 1);
        let restart_delay_s = match restart_case {
            0 => f64::INFINITY,
            1 => 0.25,
            _ => 1.0,
        };
        let policy = if fail_policy == 0 {
            CrashPolicy::Requeue
        } else {
            CrashPolicy::Fail
        };
        let faults = FaultSchedule::new(vec![FaultEvent::Crash {
            replica: 0,
            at_s: f64::from(crash_decis) * 0.1,
            restart_delay_s,
        }]);
        let report = ChaosEngine::new(
            pipeline(0.01, 4),
            RouterPolicy::LeastOutstanding,
            ScaleDriver::Static { replicas },
        )
        .with_faults(faults)
        .with_crash_policy(policy)
        .run(reqs);
        let fault = &report.fault;
        prop_assert_eq!(fault.injected, n);
        prop_assert_eq!(fault.completed + fault.shed + fault.failed, n);
        prop_assert_eq!(report.fleet.merged.timelines.len(), fault.completed);
        let mut ids: Vec<u64> = report.fleet.merged.timelines.iter().map(|t| t.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), fault.completed, "duplicate completions");
        prop_assert!(ids.iter().all(|&id| id < n as u64), "invented request id");
        // Requeue never fails in-flight work; only unroutable pending can
        // fail, and that needs the whole fleet dead.
        if policy == CrashPolicy::Requeue && (replicas > 1 || restart_delay_s.is_finite()) {
            prop_assert_eq!(fault.failed, 0);
        }
    }

    /// Two classes with identical arrival patterns shed in priority order:
    /// the higher-priority class sheds no more than the lower.
    #[test]
    fn shed_is_monotone_in_priority(
        n_pairs in 10usize..40,
        gap_millis in 1u32..10,
        base_depth in 1u32..6,
        bonus_depth in 1u32..20,
    ) {
        let reqs = requests(2 * n_pairs, f64::from(gap_millis) * 1e-3, 2);
        let admission = AdmissionConfig::new(f64::from(base_depth), f64::from(bonus_depth))
            .with_class_priority(1, 1);
        let report = ChaosEngine::new(
            pipeline(0.05, 1),
            RouterPolicy::LeastOutstanding,
            ScaleDriver::Static { replicas: 1 },
        )
        .with_admission(admission)
        .run(reqs);
        let shed_of = |class: u32| {
            report
                .fault
                .shed_by_class
                .iter()
                .find(|s| s.class == class)
                .map_or(0, |s| s.shed)
        };
        prop_assert!(
            shed_of(1) <= shed_of(0),
            "high-priority class shed {} > low-priority {}",
            shed_of(1),
            shed_of(0)
        );
        prop_assert_eq!(
            report.fault.completed + report.fault.shed,
            2 * n_pairs,
            "shedding lost requests"
        );
    }

    /// A crash scheduled after the fleet has drained (and a restart after
    /// the trace ends) does not change what was served.
    #[test]
    fn crash_after_drain_changes_nothing_served(
        n in 15usize..50,
        replicas in 1u32..4,
    ) {
        let build = || ChaosEngine::new(
            pipeline(0.01, 4),
            RouterPolicy::RoundRobin,
            ScaleDriver::Static { replicas },
        );
        let baseline = build().run(requests(n, 0.02, 1));
        let makespan = baseline.fleet.merged.metrics.makespan_s;
        let faults = FaultSchedule::new(vec![FaultEvent::Crash {
            replica: 0,
            at_s: makespan + 1.0,
            restart_delay_s: 5.0,
        }]);
        let late = build().with_faults(faults).run(requests(n, 0.02, 1));
        prop_assert_eq!(late.fault.completed, n);
        prop_assert_eq!(late.fault.retried, 0);
        prop_assert_eq!(
            &late.fleet.merged.timelines,
            &baseline.fleet.merged.timelines,
            "a post-drain crash rewrote served timelines"
        );
    }

    /// A crash at t=0 with no restart on a one-replica fleet fails the
    /// whole trace — and still conserves it.
    #[test]
    fn crash_at_zero_without_restart_fails_everything(n in 10usize..40) {
        let faults = FaultSchedule::new(vec![FaultEvent::Crash {
            replica: 0,
            at_s: 0.0,
            restart_delay_s: f64::INFINITY,
        }]);
        let report = ChaosEngine::new(
            pipeline(0.01, 4),
            RouterPolicy::LeastOutstanding,
            ScaleDriver::Static { replicas: 1 },
        )
        .with_faults(faults)
        .run(requests(n, 0.02, 1));
        prop_assert_eq!(report.fault.completed, 0);
        prop_assert_eq!(report.fault.failed, n);
        prop_assert!(report.fleet.merged.timelines.is_empty());
    }

    /// A flat predictive plan is a static fleet, bit for bit, for any
    /// replica count and trace size.
    #[test]
    fn flat_predictive_plan_is_a_static_fleet(
        n in 15usize..60,
        replicas in 1u32..4,
    ) {
        let static_run = ChaosEngine::new(
            pipeline(0.01, 4),
            RouterPolicy::LeastOutstanding,
            ScaleDriver::Static { replicas },
        )
        .run(requests(n, 0.015, 1));
        let predictive = ChaosEngine::new(
            pipeline(0.01, 4),
            RouterPolicy::LeastOutstanding,
            ScaleDriver::Predictive(PredictivePolicy::new(ScalingPlan::flat(replicas), 0.5)),
        )
        .run(requests(n, 0.015, 1));
        prop_assert_eq!(&predictive.fleet, &static_run.fleet);
        prop_assert_eq!(predictive.replica_seconds, static_run.replica_seconds);
        prop_assert!(predictive.events.is_empty());
    }
}
