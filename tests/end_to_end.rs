//! Cross-crate integration tests: schema → cost models → optimizer.

use rago::core::{breakdown, BaselineSystem, Rago, SearchOptions, StageProfiler};
use rago::hardware::{ClusterSpec, XpuGeneration, XpuSpec};
use rago::schema::presets::{self, LlmSize};
use rago::schema::Stage;

fn fast() -> SearchOptions {
    SearchOptions {
        xpu_steps: vec![8, 32],
        server_steps: vec![32],
        predecode_batch_steps: vec![1, 16],
        decode_batch_steps: vec![128],
        iterative_batch_steps: vec![8],
        placements: None,
    }
}

#[test]
fn rago_beats_or_matches_the_baseline_in_case2() {
    // Headline claim: RAGO improves max QPS/chip over the LLM-extension
    // baseline for the long-context workload (the paper reports 1.7x).
    let cluster = ClusterSpec::paper_default();
    let schema = presets::case2_long_context(LlmSize::B70, 1_000_000);

    let baseline = BaselineSystem::new(schema.clone(), cluster.clone(), 128);
    let baseline_best = baseline
        .optimize(&[1, 2, 4, 8, 16, 32, 64, 128], &[128, 256, 512, 1024])
        .unwrap()
        .max_qps_per_chip()
        .unwrap()
        .performance;

    let rago = Rago::new(schema, cluster);
    let opts = SearchOptions {
        xpu_steps: vec![8, 16, 32, 64, 96],
        server_steps: vec![32],
        predecode_batch_steps: vec![1, 2, 8, 32, 128],
        decode_batch_steps: vec![256, 1024],
        iterative_batch_steps: vec![8],
        placements: None,
    };
    let rago_best = rago
        .optimize(&opts)
        .unwrap()
        .max_qps_per_chip()
        .unwrap()
        .performance;

    let speedup = rago_best.qps_per_chip / baseline_best.qps_per_chip;
    assert!(
        speedup >= 1.0,
        "RAGO ({:.4} QPS/chip) should not lose to the baseline ({:.4})",
        rago_best.qps_per_chip,
        baseline_best.qps_per_chip
    );
}

#[test]
fn rago_beats_or_matches_the_baseline_in_case4() {
    let cluster = ClusterSpec::paper_default();
    let schema = presets::case4_rewriter_reranker(LlmSize::B70);

    let baseline = BaselineSystem::new(schema.clone(), cluster.clone(), 64);
    let baseline_best = baseline
        .optimize(&[1, 4, 16, 64], &[128, 512])
        .unwrap()
        .max_qps_per_chip()
        .unwrap()
        .performance;

    let rago = Rago::new(schema, cluster);
    let opts = SearchOptions {
        xpu_steps: vec![1, 4, 16, 32],
        server_steps: vec![32],
        predecode_batch_steps: vec![1, 4, 16, 64],
        decode_batch_steps: vec![128, 512],
        iterative_batch_steps: vec![8],
        placements: None,
    };
    let rago_best = rago
        .optimize(&opts)
        .unwrap()
        .max_qps_per_chip()
        .unwrap()
        .performance;

    assert!(
        rago_best.qps_per_chip >= baseline_best.qps_per_chip,
        "RAGO {:.4} < baseline {:.4}",
        rago_best.qps_per_chip,
        baseline_best.qps_per_chip
    );
}

#[test]
fn bottleneck_shifts_from_retrieval_to_inference_with_model_size() {
    // §5.1 / Figure 7a: retrieval dominates small-model RAG and fades for the
    // 405B model.
    let cluster = ClusterSpec::paper_default();
    let mut shares = Vec::new();
    for llm in [LlmSize::B1, LlmSize::B8, LlmSize::B70, LlmSize::B405] {
        let profiler = StageProfiler::new(presets::case1_hyperscale(llm, 1), cluster.clone());
        let b = breakdown::stage_breakdown(&profiler, &[8, 16, 32, 64], &[1, 16, 64]).unwrap();
        shares.push(breakdown::share_of(&b, Stage::Retrieval));
    }
    for w in shares.windows(2) {
        assert!(
            w[1] <= w[0] + 1e-9,
            "retrieval share should shrink with model size: {shares:?}"
        );
    }
    assert!(
        shares[0] > 0.5,
        "1B RAG should be retrieval bound: {shares:?}"
    );
    assert!(
        shares[3] < 0.3,
        "405B RAG should be inference bound: {shares:?}"
    );
}

#[test]
fn newer_xpus_increase_the_retrieval_share() {
    // Figure 7a: moving from XPU-A to XPU-C shifts more of the pipeline's
    // time x resource budget onto retrieval.
    let schema = presets::case1_hyperscale(LlmSize::B8, 1);
    let mut shares = Vec::new();
    for gen in [XpuGeneration::A, XpuGeneration::C] {
        let cluster = ClusterSpec::paper_default().with_xpu(XpuSpec::generation(gen));
        let profiler = StageProfiler::new(schema.clone(), cluster);
        let b = breakdown::stage_breakdown(&profiler, &[8, 16, 32, 64], &[1, 16, 64]).unwrap();
        shares.push(breakdown::share_of(&b, Stage::Retrieval));
    }
    assert!(
        shares[1] > shares[0],
        "XPU-C retrieval share {} should exceed XPU-A {}",
        shares[1],
        shares[0]
    );
}

#[test]
fn optimizer_works_for_every_default_case_study() {
    let cluster = ClusterSpec::paper_default();
    for case in rago::workloads::CaseStudy::ALL {
        let schema = case.default_schema();
        let rago = Rago::new(schema, cluster.clone());
        let frontier = rago.optimize(&fast()).unwrap();
        assert!(!frontier.is_empty(), "{case}: empty frontier");
        let best = frontier.max_qps_per_chip().unwrap();
        assert!(best.performance.qps > 0.0, "{case}: zero QPS");
        assert!(best.performance.ttft_s.is_finite(), "{case}: bad TTFT");
    }
}

#[test]
fn workload_trace_statistics_match_the_schema_profile() {
    // The workload generator and the schema must agree on sequence lengths,
    // since the cost models consume the latter.
    use rago::workloads::{ArrivalProcess, TraceSpec};
    let schema = presets::case1_hyperscale(LlmSize::B8, 1);
    let trace = TraceSpec {
        num_requests: 200,
        profile: schema.sequence,
        arrival: ArrivalProcess::Bursts {
            burst_size: 16,
            period_s: 0.5,
        },
        length_jitter: 0.1,
        seed: 5,
    }
    .generate();
    let mean_prefix = trace.mean_prefix_tokens();
    assert!((mean_prefix - f64::from(schema.main_prefix_tokens())).abs() < 40.0);
}

#[test]
fn retrieval_cost_model_and_substrate_agree_on_scan_volume() {
    // The analytic model prices N * bytes * scan_fraction per query; the
    // IVF-PQ substrate reports the same quantity from its own index.
    use rago::retrieval_sim::RetrievalSimulator;
    use rago::schema::RetrievalConfig;
    use rago::vectordb::{IvfPqIndex, IvfPqParams, SyntheticDataset};

    let data = SyntheticDataset::clustered(4_096, 32, 16, 9).vectors;
    let params = IvfPqParams {
        num_lists: 64,
        num_subspaces: 8,
        bits_per_code: 4,
        training_sample: 1_000,
    };
    let index = IvfPqIndex::train(32, &data, params, 1).unwrap();
    let nprobe = 8;
    let substrate_bytes = index.scanned_bytes_per_query(nprobe);

    let cfg = RetrievalConfig {
        num_vectors: 4_096,
        dim: 32,
        bytes_per_vector: 8,
        scan_fraction: index.scan_fraction(nprobe),
        queries_per_retrieval: 1,
        retrievals_per_sequence: 1,
        top_k: 10,
        mode: rago::schema::SearchMode::IvfPq { tree_levels: 2 },
    };
    let sim = RetrievalSimulator::default();
    let cost = sim.retrieval_cost(&cfg, 1, 1).unwrap();
    // The model additionally scans intermediate-level centroids, so it should
    // be within 2x of the leaf-only substrate number but never below it.
    assert!(cost.scanned_bytes_per_query >= substrate_bytes * 0.99);
    assert!(cost.scanned_bytes_per_query < substrate_bytes * 3.0 + 1e5);
}
