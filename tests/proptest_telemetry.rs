//! Property-based tests for the telemetry layer: the recorded traces obey
//! structural invariants for *any* seeded scenario, and the disabled path
//! is exactly the untraced engine.
//!
//! Invariants:
//!
//! 1. **Span balance** — on every `(track, lane, name, req)` key, span
//!    opens and closes pair up exactly: equal counts, never more closes
//!    than opens at any point of the sorted stream, and nothing left open
//!    at the end. Holds across crashes and requeues.
//! 2. **Monotone timestamps** — [`sort_events`] yields non-decreasing
//!    times globally (hence per lane and per track), every event time is
//!    finite and non-negative, and equal-time events keep their recording
//!    order (`seq` strictly increases within a timestamp group).
//! 3. **Request-id conservation** — the ids that appear on the request
//!    lane are exactly the ids of the completed timelines: no traced
//!    request the report does not know, no completed request missing from
//!    the trace.
//! 4. **`NullRecorder` bit-identity** — for any router policy, metrics
//!    mode, fleet size, and engine family (flat, cluster, autoscaled,
//!    chaos, disaggregated), `run_traced` with a [`NullRecorder`] returns
//!    a report equal to the untraced run, and a disabled
//!    [`TelemetryConfig`] records zero events.

use std::collections::HashMap;

use proptest::prelude::*;
use rago::schema::{KvTransferModel, RouterPolicy};
use rago::serving_sim::autoscaler::{AutoscaleEngine, AutoscalerPolicy};
use rago::serving_sim::engine::{
    DecodeSpec, EngineRequest, LatencyTable, PipelineSpec, ServingEngine, StageSpec,
};
use rago::serving_sim::faults::{ChaosEngine, FaultEvent, FaultSchedule, ScaleDriver};
use rago::serving_sim::pools::DisaggEngine;
use rago::serving_sim::{ClusterEngine, MetricsMode, StreamingConfig};
use rago::telemetry::{
    sort_events, Lane, NullRecorder, Phase, TelemetryConfig, TraceEvent, TraceRecorder,
};

fn pipeline(stage_latency: f64, batch: u32) -> PipelineSpec {
    PipelineSpec::new(
        vec![StageSpec::new(
            "prefix",
            0,
            batch,
            LatencyTable::from_fn(batch, |b| stage_latency * (1.0 + 0.1 * f64::from(b))),
        )],
        DecodeSpec::new(
            8,
            LatencyTable::from_fn(8, |b| 2e-3 * (1.0 + 0.05 * f64::from(b))),
        ),
    )
}

fn requests(n: usize, gap: f64) -> Vec<EngineRequest> {
    (0..n)
        .map(|i| EngineRequest {
            id: i as u64,
            arrival_s: gap * i as f64,
            prefix_tokens: 0,
            decode_tokens: 1 + (i as u32 * 7) % 17,
            class: i as u32 % 2,
            identity: None,
        })
        .collect()
}

fn router(choice: u32) -> RouterPolicy {
    match choice % 4 {
        0 => RouterPolicy::RoundRobin,
        1 => RouterPolicy::LeastOutstanding,
        2 => RouterPolicy::JoinShortestQueue,
        _ => RouterPolicy::DecodeFillAware,
    }
}

/// A traced chaos run: the richest event mix (spans, gauges, decisions,
/// disruptions, lifecycle instants, profile counters) and the only one
/// where spans can be cut short by a crash and re-opened by a requeue.
fn chaos_events(
    n: usize,
    replicas: u32,
    crash_decis: u32,
    policy: RouterPolicy,
) -> Vec<TraceEvent> {
    let engine = ChaosEngine::new(pipeline(0.01, 4), policy, ScaleDriver::Static { replicas })
        .with_faults(FaultSchedule::new(vec![FaultEvent::Crash {
            replica: 0,
            at_s: f64::from(crash_decis) * 0.05,
            restart_delay_s: 0.25,
        }]))
        .with_telemetry(TelemetryConfig::full(0.25));
    let (_, rec) = engine.run_telemetry(requests(n, 0.02));
    rec.into_events()
}

/// Per-key open-span depth over the sorted stream.
fn span_key(ev: &TraceEvent) -> (u32, Lane, String, Option<u64>) {
    (ev.track, ev.lane, ev.name.clone(), ev.req)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Invariant 1: span opens and closes pair up exactly on every
    /// `(track, lane, name, req)` key, even when a crash re-queues
    /// in-flight work to another replica's track.
    #[test]
    fn spans_are_balanced(
        n in 20usize..60,
        replicas in 2u32..4,
        crash_decis in 0u32..30,
        router_choice in 0u32..4,
    ) {
        let mut events = chaos_events(n, replicas, crash_decis, router(router_choice));
        sort_events(&mut events);
        let mut depth: HashMap<(u32, Lane, String, Option<u64>), i64> = HashMap::new();
        for ev in &events {
            match ev.phase {
                Phase::Begin => *depth.entry(span_key(ev)).or_insert(0) += 1,
                Phase::End => {
                    let d = depth.entry(span_key(ev)).or_insert(0);
                    *d -= 1;
                    prop_assert!(
                        *d >= 0,
                        "span close without a matching open: {:?}",
                        ev
                    );
                }
                Phase::Instant | Phase::Counter => {}
            }
        }
        for (key, d) in &depth {
            prop_assert_eq!(*d, 0, "span left open at end of trace: {:?}", key);
        }
    }

    /// Invariant 2: the canonical sort yields finite, non-negative,
    /// non-decreasing timestamps, with recording order preserved inside
    /// every equal-time group.
    #[test]
    fn sorted_timestamps_are_monotone(
        n in 20usize..60,
        replicas in 1u32..4,
        crash_decis in 0u32..30,
        router_choice in 0u32..4,
    ) {
        let mut events = chaos_events(n, replicas, crash_decis, router(router_choice));
        sort_events(&mut events);
        for pair in events.windows(2) {
            prop_assert!(pair[0].time_s <= pair[1].time_s, "time went backwards");
            if pair[0].time_s == pair[1].time_s {
                prop_assert!(
                    pair[0].seq < pair[1].seq,
                    "recording order lost inside a timestamp group"
                );
            }
        }
        for ev in &events {
            prop_assert!(ev.time_s.is_finite() && ev.time_s >= 0.0);
        }
    }

    /// Invariant 3: the request lane names exactly the completed request
    /// ids — conservation between the trace and the report.
    #[test]
    fn request_ids_are_conserved(
        n in 20usize..60,
        replicas in 1u32..4,
        crash_decis in 0u32..30,
        router_choice in 0u32..4,
    ) {
        let engine = ChaosEngine::new(
            pipeline(0.01, 4),
            router(router_choice),
            ScaleDriver::Static { replicas },
        )
        .with_faults(FaultSchedule::new(vec![FaultEvent::Crash {
            replica: 0,
            at_s: f64::from(crash_decis) * 0.05,
            restart_delay_s: 0.25,
        }]))
        .with_telemetry(TelemetryConfig::full(0.25));
        let (report, rec) = engine.run_telemetry(requests(n, 0.02));

        let mut traced: Vec<u64> = rec
            .events()
            .iter()
            .filter(|ev| ev.lane == Lane::Request && ev.phase == Phase::Begin)
            .filter_map(|ev| ev.req)
            .collect();
        traced.sort_unstable();
        traced.dedup();
        let mut completed: Vec<u64> =
            report.fleet.merged.timelines.iter().map(|t| t.id).collect();
        completed.sort_unstable();
        prop_assert_eq!(traced, completed);
    }

    /// Invariant 4: for any router, metrics mode, and engine family, the
    /// `NullRecorder` path returns the untraced report and a disabled
    /// config records nothing.
    #[test]
    fn null_recorder_is_bit_identical(
        n in 20usize..60,
        replicas in 1usize..4,
        router_choice in 0u32..4,
        streaming in any::<bool>(),
    ) {
        let reqs = requests(n, 0.02);
        let policy = router(router_choice);
        let mode = if streaming {
            MetricsMode::Streaming(StreamingConfig::default())
        } else {
            MetricsMode::Exact
        };

        let flat = ServingEngine::new(pipeline(0.01, 4), reqs.clone());
        prop_assert_eq!(
            flat.run_with_mode(&mode),
            flat.run_traced(&mode, &mut NullRecorder)
        );

        let cluster = ClusterEngine::homogeneous(pipeline(0.01, 4), replicas, policy);
        prop_assert_eq!(
            cluster.run_with_mode(reqs.clone(), &mode),
            cluster.run_traced(reqs.clone(), &mode, &mut NullRecorder)
        );

        let scaler = AutoscaleEngine::new(
            pipeline(0.01, 4),
            policy,
            AutoscalerPolicy::new(1, replicas as u32)
                .with_evaluation_interval(0.1)
                .with_scale_out_queue_depth(3.0),
        );
        prop_assert_eq!(
            scaler.run_with_mode(reqs.clone(), &mode),
            scaler.run_traced(reqs.clone(), &mode, &mut NullRecorder)
        );

        let chaos = ChaosEngine::new(
            pipeline(0.01, 4),
            policy,
            ScaleDriver::Static { replicas: replicas as u32 },
        )
        .with_faults(FaultSchedule::new(vec![FaultEvent::Crash {
            replica: 0,
            at_s: 0.4,
            restart_delay_s: 0.25,
        }]));
        let untraced = chaos.run(reqs.clone());
        prop_assert_eq!(
            untraced.clone(),
            chaos.run_traced(reqs.clone(), &mut NullRecorder)
        );
        // Disabled config: same report, empty recorder.
        let (report, rec) = chaos.run_telemetry(reqs.clone());
        prop_assert_eq!(untraced, report);
        prop_assert!(rec.is_empty());

        let full = pipeline(0.01, 4);
        let disagg = DisaggEngine::new(
            full.clone().with_handoff(),
            replicas,
            policy,
            PipelineSpec::decode_only(full.decode.clone(), None),
            1,
            policy,
            KvTransferModel::new(131_072.0, 100e9, 5e-6),
        );
        prop_assert_eq!(
            disagg.run(reqs.clone()),
            disagg.run_traced(reqs, &mut NullRecorder)
        );
    }

    /// A live recorder is observationally inert: the traced report equals
    /// the untraced one even when every event is captured.
    #[test]
    fn live_recorder_does_not_perturb_the_run(
        n in 20usize..50,
        replicas in 2u32..4,
        crash_decis in 0u32..30,
        router_choice in 0u32..4,
    ) {
        let engine = ChaosEngine::new(
            pipeline(0.01, 4),
            router(router_choice),
            ScaleDriver::Static { replicas },
        )
        .with_faults(FaultSchedule::new(vec![FaultEvent::Crash {
            replica: 0,
            at_s: f64::from(crash_decis) * 0.05,
            restart_delay_s: 0.25,
        }]))
        .with_telemetry(TelemetryConfig::full(0.25));
        let mut rec = TraceRecorder::new(TelemetryConfig::full(0.25));
        let traced = engine.run_traced(requests(n, 0.02), &mut rec);
        let untraced = engine.run(requests(n, 0.02));
        prop_assert_eq!(traced, untraced);
        prop_assert!(!rec.is_empty());
    }
}
