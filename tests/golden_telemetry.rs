//! Golden trace snapshots: pins the telemetry layer's exported traces so
//! later changes to the recorders, the post-hoc derivation, or the
//! exporters cannot silently reshape what lands in Perfetto.
//!
//! Two seeded scenarios are traced end to end and their JSONL and
//! Chrome-trace renderings diffed byte-for-byte against committed
//! snapshots in `tests/golden/`:
//!
//! * `telemetry_chaos.*` — the `fault_crash.json` chaos scenario (two
//!   replicas, replica 0 crashing at t=1.0s with a 0.5s cold restart)
//!   over a shorter 60-request cut of the seeded Poisson trace, so the
//!   crash lands mid-arrivals and the snapshot stays reviewable. Captures
//!   request spans, load gauges, router-pick and requeue decisions, the
//!   fault disruption ledger, replica lifecycle instants, and profile
//!   counters.
//! * `telemetry_disagg.*` — the `disagg_run.json` 2-prefill + 1-decode
//!   split with the priced KV handoff, same 60-request trace. Adds the
//!   decode-pool handoff picks and per-request KV-transfer spans on the
//!   Transfer lane.
//! * `telemetry_chaos_report.txt` — the human-readable
//!   [`TelemetryReport`] summary of the chaos trace.
//!
//! The remaining tests pin the layer's two core guarantees without
//! snapshots: a [`NullRecorder`] run is *equal* to the untraced run on
//! every engine (zero-cost-when-off), and a live trace is byte-identical
//! across repeated runs and across the parallel-advance toggle
//! (determinism independent of worker count).
//!
//! Regenerate intentionally-moved snapshots with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_telemetry
//! ```

use rago::schema::{KvTransferModel, RouterPolicy, SequenceProfile};
use rago::serving_sim::engine::{
    DecodeSpec, EngineRequest, LatencyTable, PipelineSpec, ServingEngine, StageSpec,
};
use rago::serving_sim::faults::{ChaosEngine, FaultEvent, FaultSchedule, ScaleDriver};
use rago::serving_sim::pools::DisaggEngine;
use rago::serving_sim::MetricsMode;
use rago::telemetry::{
    export_chrome_trace, export_jsonl, validate_json, validate_jsonl, NullRecorder,
    TelemetryConfig, TelemetryReport,
};
use rago::workloads::{ArrivalProcess, TraceSpec};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Diffs `rendered` against the committed snapshot, or rewrites the
/// snapshot when `UPDATE_GOLDEN` is set.
fn check_golden(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, rendered)
            .unwrap_or_else(|e| panic!("cannot write golden {}: {e}", path.display()));
        println!("updated golden snapshot {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); generate it with \
             `UPDATE_GOLDEN=1 cargo test --test golden_telemetry`",
            path.display()
        )
    });
    assert_eq!(
        expected, rendered,
        "golden snapshot `{name}` drifted. If the change is intentional, \
         regenerate with `UPDATE_GOLDEN=1 cargo test --test golden_telemetry` \
         and commit the diff."
    );
}

/// The two-stage pipeline shared with `golden_regression.rs`'s
/// `engine_metrics` family: retrieval + prefix stages, 32-token decode.
fn pipeline_spec() -> PipelineSpec {
    PipelineSpec::new(
        vec![
            StageSpec::new(
                "retrieval",
                0,
                16,
                LatencyTable::from_fn(16, |b| 0.02 + 1e-4 * f64::from(b)),
            ),
            StageSpec::new(
                "prefix",
                1,
                8,
                LatencyTable::from_fn(8, |b| 0.01 * f64::from(b)),
            ),
        ],
        DecodeSpec::new(
            32,
            LatencyTable::from_fn(32, |b| 2e-3 + 1e-5 * f64::from(b)),
        ),
    )
}

/// The seeded Poisson trace behind the snapshots: the
/// `engine_metrics_trace` generator cut to 60 requests so arrivals span
/// the chaos scenario's t=1.0s crash and the exported goldens stay small
/// enough to review.
fn telemetry_trace(num_requests: usize) -> rago::workloads::Trace {
    TraceSpec {
        num_requests,
        profile: SequenceProfile::paper_default().with_decode_tokens(32),
        arrival: ArrivalProcess::Poisson { rate_rps: 50.0 },
        length_jitter: 0.2,
        seed: 7,
    }
    .generate()
}

fn requests(num: usize) -> Vec<EngineRequest> {
    telemetry_trace(num)
        .requests
        .iter()
        .map(EngineRequest::from)
        .collect()
}

fn chaos_scenario() -> ChaosEngine {
    ChaosEngine::new(
        pipeline_spec(),
        RouterPolicy::LeastOutstanding,
        ScaleDriver::Static { replicas: 2 },
    )
    .with_faults(FaultSchedule::new(vec![FaultEvent::Crash {
        replica: 0,
        at_s: 1.0,
        restart_delay_s: 0.5,
    }]))
}

fn disagg_scenario() -> DisaggEngine {
    let full = pipeline_spec();
    let prefill_spec = full.clone().with_handoff();
    let decode_spec = PipelineSpec::decode_only(full.decode.clone(), None);
    DisaggEngine::new(
        prefill_spec,
        2,
        RouterPolicy::LeastOutstanding,
        decode_spec,
        1,
        RouterPolicy::LeastOutstanding,
        KvTransferModel::new(131_072.0, 100e9, 5e-6),
    )
}

#[test]
fn golden_chaos_trace() {
    let engine = chaos_scenario().with_telemetry(TelemetryConfig::full(0.5));
    let (report, rec) = engine.run_telemetry(requests(60));
    assert_eq!(report.fleet.merged.metrics.requests, 60);
    assert!(!rec.is_empty(), "a full-capture chaos run must emit events");

    let jsonl = export_jsonl(rec.events());
    validate_jsonl(&jsonl).expect("chaos JSONL export must parse");
    check_golden("telemetry_chaos.jsonl", &jsonl);

    let chrome = export_chrome_trace(rec.events());
    validate_json(&chrome).expect("chaos Chrome trace must parse");
    check_golden("telemetry_chaos.chrome.json", &chrome);

    check_golden(
        "telemetry_chaos_report.txt",
        &TelemetryReport::from_events(rec.events()).render(),
    );
}

#[test]
fn golden_disagg_trace() {
    let engine = disagg_scenario().with_telemetry(TelemetryConfig::full(0.5));
    let (report, rec) = engine.run_telemetry(requests(60));
    assert_eq!(report.merged.metrics.requests, 60);
    assert!(
        report.transfers.transfers > 0,
        "the handoff split must price at least one KV transfer"
    );

    let jsonl = export_jsonl(rec.events());
    validate_jsonl(&jsonl).expect("disagg JSONL export must parse");
    // Every priced handoff shows up as a span on the Transfer lane.
    assert_eq!(
        jsonl
            .lines()
            .filter(|l| l.contains("\"lane\":\"transfer\"") && l.contains("\"phase\":\"begin\""))
            .count() as u64,
        report.transfers.transfers,
    );
    check_golden("telemetry_disagg.jsonl", &jsonl);

    let chrome = export_chrome_trace(rec.events());
    validate_json(&chrome).expect("disagg Chrome trace must parse");
    check_golden("telemetry_disagg.chrome.json", &chrome);
}

/// Zero-cost-when-off: a `NullRecorder` run and a disabled-config
/// `run_telemetry` are *equal* to the plain run on every wrapped engine
/// (the reports derive `PartialEq`, so this compares every metric,
/// timeline, ledger, and counter).
#[test]
fn null_recorder_runs_are_bit_identical() {
    let reqs = requests(200);

    let chaos = chaos_scenario();
    let untraced = chaos.run(reqs.clone());
    assert_eq!(untraced, chaos.run_traced(reqs.clone(), &mut NullRecorder));
    let (report, rec) = chaos.run_telemetry(reqs.clone());
    assert_eq!(untraced, report);
    assert!(rec.is_empty(), "a disabled config must record nothing");

    let disagg = disagg_scenario();
    let untraced = disagg.run(reqs.clone());
    assert_eq!(untraced, disagg.run_traced(reqs.clone(), &mut NullRecorder));
    let (report, rec) = disagg.run_telemetry(reqs.clone());
    assert_eq!(untraced, report);
    assert!(rec.is_empty());

    let flat = ServingEngine::from_trace(pipeline_spec(), &telemetry_trace(200));
    let untraced = flat.run();
    assert_eq!(
        untraced,
        flat.run_traced(&MetricsMode::Exact, &mut NullRecorder)
    );
    let (report, rec) = flat.run_telemetry(&MetricsMode::Exact);
    assert_eq!(untraced, report);
    assert!(rec.is_empty());
}

/// Live traces are deterministic: rerunning the same seeded scenario
/// yields byte-identical exports, and the disagg parallel-advance toggle
/// (the worker-count knob) changes neither the report nor a single trace
/// byte.
#[test]
fn traces_are_byte_identical_across_runs_and_workers() {
    let chaos = chaos_scenario().with_telemetry(TelemetryConfig::full(0.5));
    let (_, first) = chaos.run_telemetry(requests(60));
    let (_, second) = chaos.run_telemetry(requests(60));
    assert_eq!(export_jsonl(first.events()), export_jsonl(second.events()));

    let serial = disagg_scenario().with_telemetry(TelemetryConfig::full(0.5));
    let parallel = disagg_scenario()
        .with_parallel_advance(true)
        .with_telemetry(TelemetryConfig::full(0.5));
    let (serial_report, serial_rec) = serial.run_telemetry(requests(60));
    let (parallel_report, parallel_rec) = parallel.run_telemetry(requests(60));
    assert_eq!(serial_report, parallel_report);
    assert_eq!(
        export_jsonl(serial_rec.events()),
        export_jsonl(parallel_rec.events())
    );
    assert_eq!(
        export_chrome_trace(serial_rec.events()),
        export_chrome_trace(parallel_rec.events())
    );
}
