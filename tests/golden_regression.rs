//! Golden regression harness: pins the numbers behind the repo's headline
//! results so later refactors cannot silently drift them.
//!
//! Each test renders a deterministic computation to a JSON string with
//! fixed 9-decimal formatting and diffs it against a committed snapshot in
//! `tests/golden/`. Every input is seeded and every code path is
//! deterministic (the parallel optimizer is bit-identical to its serial
//! form; the discrete-event engines are pure functions of their inputs), so
//! the snapshots are expected to match to the last printed digit.
//!
//! Snapshots cover the three earlier PRs' headline surfaces plus the
//! paper-claims characterization:
//!
//! * `optimizer_frontier.json` — the PR 1 static search: every point of the
//!   case-1 fast-options Pareto frontier (schedule description, TTFT, TPOT,
//!   QPS, QPS/chip).
//! * `engine_metrics.json` — the PR 2 request-level engine: the full
//!   `ServingMetrics` of one seeded Poisson run through a fixed two-stage
//!   pipeline.
//! * `fleet_knees.json` — the PR 3 fleet layer: attainment versus offered
//!   rate for 1- and 2-replica fleets of the case-1 best schedule, and the
//!   sustained-throughput knee of each sweep.
//! * `paper_claims.json` — the characterization scalars behind
//!   `tests/paper_claims.rs` (retrieval share versus scan fraction,
//!   encoder share versus corpus size), pinned as numbers rather than
//!   inequalities.
//! * `timevarying.json` — the PR 4 time-varying path (pinned optimizer /
//!   engine / fleet / paper-claims left this one open): a seeded two-tenant
//!   diurnal trace through `evaluate_fleet_timevarying`, static and
//!   autoscaled, with per-tenant outcomes and the provisioning cost.
//! * `cache_run.json` — the PR 5 cache subsystem: a seeded Zipfian
//!   content-tagged trace through `evaluate_schedule_cached`, pinning the
//!   hit/miss/eviction counters, tokens saved, and the cached TTFT.
//! * `fault_crash.json` / `fault_straggler.json` — the PR 7 chaos layer:
//!   the engine-metrics scenario rerun under a replica crash (cold
//!   restart) and under a straggler window, pinning the fault ledger,
//!   replica lifetimes, windowed attainment, and recovery metrics.
//! * `admission_shed.json` — PR 7 admission control: a two-class
//!   overload trace shed in priority order, pinning per-class shed counts
//!   and the surviving latency distribution. Two further tests pin the
//!   degenerate chaos configuration *against the existing snapshots*
//!   (`engine_metrics.json` byte-for-byte, and the autoscaled
//!   `timevarying.json` scenario through the public facade), so the chaos
//!   wrapper cannot drift the engines it wraps.
//! * `disagg_run.json` — the PR 8 disaggregated pools: the engine-metrics
//!   pipeline cut into a 2-prefill + 1-decode split with a priced KV
//!   handoff, pinning the merged metrics, both pools' per-replica
//!   breakdowns, and every transfer counter. A companion degenerate test
//!   pins the single-Monolithic-pool fleet shape *against the committed
//!   `engine_metrics.json`* byte-for-byte: a fleet that declares one
//!   Monolithic pool routes through the unchanged flat cluster path with
//!   the pool's router, so the pool refactor cannot drift the flat stack.
//!
//! # Updating
//!
//! When a change *intentionally* moves the numbers (a cost-model fix, a new
//! default), regenerate with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_regression
//! ```
//!
//! and commit the diff — the point is that the drift shows up in review.

use rago::cache::{CacheConfig, EvictionPolicy, PrefixKvCacheConfig, RetrievalCacheConfig};
use rago::core::{Rago, SearchOptions};
use rago::hardware::ClusterSpec;
use rago::schema::presets::{self, LlmSize};
use rago::schema::{
    FleetConfig, KvTransferModel, PoolRole, PoolSpec, RouterPolicy, SequenceProfile, SloTarget,
    Stage,
};
use rago::serving_sim::autoscaler::AutoscalerPolicy;
use rago::serving_sim::engine::{
    sustained_throughput_knee, DecodeSpec, LatencyTable, PipelineSpec, ServingEngine, StageSpec,
};
use rago::serving_sim::faults::{
    AdmissionConfig, ChaosEngine, ChaosReport, FaultEvent, FaultSchedule, ScaleDriver,
};
use rago::serving_sim::pools::{DisaggEngine, PoolReport};
use rago::serving_sim::{ClusterEngine, MetricsMode};
use rago::workloads::{
    ArrivalProcess, ContentSpec, MixTraceSpec, PopularityModel, RequestClass, TraceSpec,
    WorkloadMix,
};
use std::fmt::Write as _;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Diffs `rendered` against the committed snapshot, or rewrites the
/// snapshot when `UPDATE_GOLDEN` is set.
fn check_golden(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, rendered)
            .unwrap_or_else(|e| panic!("cannot write golden {}: {e}", path.display()));
        println!("updated golden snapshot {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); generate it with \
             `UPDATE_GOLDEN=1 cargo test --test golden_regression`",
            path.display()
        )
    });
    assert_eq!(
        expected, rendered,
        "golden snapshot `{name}` drifted. If the change is intentional, \
         regenerate with `UPDATE_GOLDEN=1 cargo test --test golden_regression` \
         and commit the diff."
    );
}

fn f(value: f64) -> String {
    format!("{value:.9}")
}

#[test]
fn golden_optimizer_frontier() {
    let rago = Rago::new(
        presets::case1_hyperscale(LlmSize::B8, 1),
        ClusterSpec::paper_default(),
    );
    let frontier = rago
        .optimize(&SearchOptions::fast())
        .expect("static search succeeds");
    let mut out = String::from("{\n  \"bench\": \"golden/optimizer_frontier\",\n  \"points\": [\n");
    let rows: Vec<String> = frontier
        .iter()
        .map(|p| {
            format!(
                "    {{\"schedule\": \"{}\", \"ttft_s\": {}, \"tpot_s\": {}, \
                 \"qps\": {}, \"qps_per_chip\": {}, \"total_xpus\": {}}}",
                p.schedule.describe(),
                f(p.performance.ttft_s),
                f(p.performance.tpot_s),
                f(p.performance.qps),
                f(p.performance.qps_per_chip),
                p.performance.total_xpus,
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    check_golden("optimizer_frontier.json", &out);
}

/// The seeded PR 2 engine scenario behind `engine_metrics.json`: a fixed
/// two-stage pipeline (retrieval on its own resource, prefix on another)
/// under a seeded Poisson trace.
fn engine_metrics_spec() -> PipelineSpec {
    PipelineSpec::new(
        vec![
            StageSpec::new(
                "retrieval",
                0,
                16,
                LatencyTable::from_fn(16, |b| 0.02 + 1e-4 * f64::from(b)),
            ),
            StageSpec::new(
                "prefix",
                1,
                8,
                LatencyTable::from_fn(8, |b| 0.01 * f64::from(b)),
            ),
        ],
        DecodeSpec::new(
            32,
            LatencyTable::from_fn(32, |b| 2e-3 + 1e-5 * f64::from(b)),
        ),
    )
}

fn engine_metrics_trace() -> rago::workloads::Trace {
    TraceSpec {
        num_requests: 200,
        profile: SequenceProfile::paper_default().with_decode_tokens(32),
        arrival: ArrivalProcess::Poisson { rate_rps: 50.0 },
        length_jitter: 0.2,
        seed: 7,
    }
    .generate()
}

fn engine_metrics_scenario() -> ServingEngine {
    ServingEngine::from_trace(engine_metrics_spec(), &engine_metrics_trace())
}

fn render_engine_metrics(report: &rago::serving_sim::engine::ServingReport) -> String {
    let m = &report.metrics;
    let slo = SloTarget::paper_default();
    let mut out = String::from("{\n  \"bench\": \"golden/engine_metrics\",\n");
    let _ = writeln!(out, "  \"requests\": {},", m.requests);
    let _ = writeln!(out, "  \"makespan_s\": {},", f(m.makespan_s));
    let _ = writeln!(
        out,
        "  \"serving_duration_s\": {},",
        f(m.serving_duration_s)
    );
    let _ = writeln!(out, "  \"drain_tail_s\": {},", f(m.drain_tail_s));
    let _ = writeln!(out, "  \"throughput_rps\": {},", f(m.throughput_rps));
    let _ = writeln!(
        out,
        "  \"ttft\": {{\"mean_s\": {}, \"p50_s\": {}, \"p95_s\": {}, \"p99_s\": {}, \"max_s\": {}}},",
        f(m.ttft.mean_s), f(m.ttft.p50_s), f(m.ttft.p95_s), f(m.ttft.p99_s), f(m.ttft.max_s)
    );
    let _ = writeln!(
        out,
        "  \"tpot\": {{\"mean_s\": {}, \"p50_s\": {}, \"p95_s\": {}, \"p99_s\": {}, \"max_s\": {}}},",
        f(m.tpot.mean_s), f(m.tpot.p50_s), f(m.tpot.p95_s), f(m.tpot.p99_s), f(m.tpot.max_s)
    );
    let _ = writeln!(
        out,
        "  \"latency\": {{\"mean_s\": {}, \"p50_s\": {}, \"p95_s\": {}, \"p99_s\": {}, \"max_s\": {}}},",
        f(m.latency.mean_s), f(m.latency.p50_s), f(m.latency.p95_s), f(m.latency.p99_s),
        f(m.latency.max_s)
    );
    let _ = writeln!(out, "  \"queueing_mean_s\": {},", f(m.queueing_mean_s));
    let _ = writeln!(out, "  \"service_mean_s\": {},", f(m.service_mean_s));
    let _ = writeln!(out, "  \"mean_decode_fill\": {},", f(m.mean_decode_fill));
    let _ = writeln!(out, "  \"attainment\": {},", f(report.attainment(&slo)));
    let _ = writeln!(out, "  \"goodput_rps\": {}", f(report.goodput_rps(&slo)));
    out.push_str("}\n");
    out
}

#[test]
fn golden_engine_metrics() {
    let report = engine_metrics_scenario().run();
    check_golden("engine_metrics.json", &render_engine_metrics(&report));
}

/// The exact metrics sink is the identity path: running the same scenario
/// through `run_with_mode(MetricsMode::Exact)` must reproduce the committed
/// golden byte for byte — timelines, aggregates, attainment, goodput.
#[test]
fn golden_engine_metrics_via_exact_sink() {
    let engine = engine_metrics_scenario();
    let via_sink = engine.run_with_mode(&MetricsMode::Exact);
    assert_eq!(engine.run(), via_sink, "exact sink diverged from run()");
    check_golden("engine_metrics.json", &render_engine_metrics(&via_sink));
}

#[test]
fn golden_fleet_knees() {
    // The PR 3 fleet layer: attainment vs offered rate for 1- and
    // 2-replica fleets of the case-1 best-QPS/chip schedule, plus the
    // sustained-throughput knee of each sweep.
    let rago = Rago::new(
        presets::case1_hyperscale(LlmSize::B8, 1),
        ClusterSpec::paper_default(),
    );
    let frontier = rago
        .optimize(&SearchOptions::fast())
        .expect("static search succeeds");
    let best = frontier.max_qps_per_chip().expect("non-empty frontier");
    let static_qps = best.performance.qps;
    let slo = SloTarget::paper_default();
    let profile = SequenceProfile::paper_default().with_decode_tokens(32);
    let duration_s = 3.0;
    let fractions = [0.5, 1.0, 1.5, 2.0];

    let mut out = String::from("{\n  \"bench\": \"golden/fleet_knees\",\n");
    let _ = writeln!(out, "  \"schedule\": \"{}\",", best.schedule.describe());
    let _ = writeln!(out, "  \"static_qps\": {},", f(static_qps));
    out.push_str("  \"series\": [\n");
    let mut series_rows = Vec::new();
    for replicas in [1u32, 2] {
        let fleet = FleetConfig::new(replicas, RouterPolicy::LeastOutstanding);
        let mut points = Vec::new();
        for frac in fractions {
            let rate = frac * static_qps;
            let trace = TraceSpec {
                num_requests: (rate * duration_s).ceil().max(1.0) as usize,
                profile,
                arrival: ArrivalProcess::Poisson { rate_rps: rate },
                length_jitter: 0.2,
                seed: 17,
            }
            .generate();
            let eval = rago
                .evaluate_fleet(&best.schedule, &fleet, &trace, &slo)
                .expect("fleet evaluation succeeds");
            points.push((rate, eval.attainment));
        }
        let knee = sustained_throughput_knee(&points, &slo);
        let point_rows: Vec<String> = points
            .iter()
            .map(|(rate, att)| {
                format!(
                    "        {{\"rate_rps\": {}, \"attainment\": {}}}",
                    f(*rate),
                    f(*att)
                )
            })
            .collect();
        series_rows.push(format!(
            "    {{\"replicas\": {replicas}, \"knee_rps\": {}, \"points\": [\n{}\n    ]}}",
            knee.map(f).unwrap_or_else(|| "null".into()),
            point_rows.join(",\n"),
        ));
    }
    out.push_str(&series_rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    check_golden("fleet_knees.json", &out);
}

#[test]
fn golden_timevarying() {
    // The PR 4 time-varying path: a two-tenant diurnal trace through
    // `evaluate_fleet_timevarying`, statically provisioned and autoscaled.
    let rago = Rago::new(
        presets::case1_hyperscale(LlmSize::B8, 1),
        ClusterSpec::paper_default(),
    );
    let frontier = rago
        .optimize(&SearchOptions::fast())
        .expect("static search succeeds");
    let best = frontier.max_qps_per_chip().expect("non-empty frontier");
    let mix = WorkloadMix::new(vec![
        RequestClass::new(
            "chat",
            3.0,
            SequenceProfile::paper_default().with_decode_tokens(32),
            0.1,
            SloTarget::new(2.0, 0.05),
        ),
        RequestClass::new(
            "report",
            1.0,
            SequenceProfile::paper_default().with_decode_tokens(128),
            0.1,
            SloTarget::new(10.0, 0.2),
        ),
    ]);
    let qps = best.performance.qps;
    let trace = MixTraceSpec {
        num_requests: 400,
        mix: mix.clone(),
        arrival: ArrivalProcess::Diurnal {
            base_rps: 0.3 * qps,
            peak_rps: 2.0 * qps,
            period_s: 16.0,
        },
        seed: 29,
    }
    .generate();
    let fleet = FleetConfig::new(3, RouterPolicy::LeastOutstanding);
    let policy = AutoscalerPolicy::new(1, 3)
        .with_evaluation_interval(0.25)
        .with_scale_out_queue_depth(2.0)
        .with_scale_in_outstanding(10.0)
        .with_cooldown(1.0)
        .with_warmup(0.5);

    let mut out = String::from("{\n  \"bench\": \"golden/timevarying\",\n");
    let _ = writeln!(out, "  \"schedule\": \"{}\",", best.schedule.describe());
    let mut variant_rows = Vec::new();
    for (name, autoscaler) in [("static", None), ("autoscaled", Some(&policy))] {
        let eval = rago
            .evaluate_fleet_timevarying(&best.schedule, &fleet, &mix, &trace, autoscaler)
            .expect("time-varying evaluation succeeds");
        let class_rows: Vec<String> = eval
            .per_class
            .iter()
            .map(|c| {
                format!(
                    "        {{\"class\": {}, \"name\": \"{}\", \"requests\": {}, \
                     \"attainment\": {}, \"goodput_rps\": {}, \"meets_slo\": {}}}",
                    c.class,
                    c.name,
                    c.requests,
                    f(c.attainment),
                    f(c.goodput_rps),
                    c.meets_slo,
                )
            })
            .collect();
        let scaling = match &eval.scaling {
            None => "null".to_string(),
            Some(s) => format!(
                "{{\"peak_provisioned\": {}, \"min_provisioned\": {}, \
                 \"mean_provisioned\": {}, \"events\": {}}}",
                s.peak_provisioned,
                s.min_provisioned,
                f(s.mean_provisioned),
                s.events.len(),
            ),
        };
        variant_rows.push(format!(
            "    {{\"variant\": \"{name}\", \"attainment\": {}, \"goodput_rps\": {}, \
             \"meets_slo\": {}, \"replica_seconds\": {}, \"chip_seconds\": {}, \
             \"scaling\": {scaling}, \"per_class\": [\n{}\n    ]}}",
            f(eval.attainment),
            f(eval.goodput_rps),
            eval.meets_slo,
            f(eval.replica_seconds),
            f(eval.chip_seconds),
            class_rows.join(",\n"),
        ));
    }
    out.push_str("  \"variants\": [\n");
    out.push_str(&variant_rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    check_golden("timevarying.json", &out);
}

#[test]
fn golden_cache_run() {
    // The cache subsystem end to end: a seeded Zipfian content-tagged trace
    // through `evaluate_schedule_cached`, with every cache counter pinned.
    let rago = Rago::new(
        presets::case1_hyperscale(LlmSize::B8, 1),
        ClusterSpec::paper_default(),
    );
    let frontier = rago
        .optimize(&SearchOptions::fast())
        .expect("static search succeeds");
    let best = frontier.max_qps_per_chip().expect("non-empty frontier");
    let content = ContentSpec {
        prefixes: PopularityModel::zipf(12, 1.0),
        shared_prefix_fraction: 0.8,
        docs: PopularityModel::zipf(48, 1.0),
        seed: 37,
    };
    let trace = content.tag(
        &TraceSpec {
            num_requests: 300,
            profile: SequenceProfile::paper_default().with_decode_tokens(32),
            arrival: ArrivalProcess::Poisson {
                rate_rps: 1.5 * best.performance.qps,
            },
            length_jitter: 0.2,
            seed: 7,
        }
        .generate(),
    );
    let cache = CacheConfig {
        prefix: Some(PrefixKvCacheConfig::new(
            6 * u64::from(SequenceProfile::paper_default().prefix_tokens()),
            EvictionPolicy::Lru,
        )),
        retrieval: Some(RetrievalCacheConfig::new(48, EvictionPolicy::Lru)),
    };
    let slo = SloTarget::new(1.0, 0.1);
    let eval = rago
        .evaluate_cached(&best.schedule, &trace, &slo, &cache)
        .expect("cached evaluation succeeds");
    let counters = |c: &rago::cache::CacheCounters| {
        format!(
            "{{\"lookups\": {}, \"hits\": {}, \"insertions\": {}, \"evictions\": {}, \
             \"tokens_saved\": {}, \"hit_rate\": {}}}",
            c.lookups,
            c.hits,
            c.insertions,
            c.evictions,
            c.tokens_saved,
            f(c.hit_rate()),
        )
    };
    let usage = &eval.report.cache;
    let mut out = String::from("{\n  \"bench\": \"golden/cache_run\",\n");
    let _ = writeln!(out, "  \"schedule\": \"{}\",", best.schedule.describe());
    let _ = writeln!(out, "  \"attainment\": {},", f(eval.attainment));
    let _ = writeln!(out, "  \"goodput_rps\": {},", f(eval.goodput_rps));
    let _ = writeln!(
        out,
        "  \"ttft_mean_s\": {},",
        f(eval.report.metrics.ttft.mean_s)
    );
    let _ = writeln!(
        out,
        "  \"ttft_p95_s\": {},",
        f(eval.report.metrics.ttft.p95_s)
    );
    let _ = writeln!(out, "  \"prefix\": {},", counters(&usage.prefix));
    let _ = writeln!(out, "  \"retrieval\": {},", counters(&usage.retrieval));
    let class_rows: Vec<String> = usage
        .per_class
        .iter()
        .map(|c| {
            format!(
                "    {{\"class\": {}, \"prefix\": {}, \"retrieval\": {}}}",
                c.class,
                counters(&c.prefix),
                counters(&c.retrieval)
            )
        })
        .collect();
    out.push_str("  \"per_class\": [\n");
    out.push_str(&class_rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    check_golden("cache_run.json", &out);
}

#[test]
fn golden_paper_claims() {
    // The characterization scalars behind `tests/paper_claims.rs`, pinned
    // as numbers: retrieval share vs scan fraction (Figure 7b) and encoder
    // share vs corpus size (Figure 8b).
    use rago::core::{breakdown, StageProfiler};
    let cluster = ClusterSpec::paper_default();
    let mut out = String::from("{\n  \"bench\": \"golden/paper_claims\",\n");

    out.push_str("  \"retrieval_share_by_scan_fraction\": {\n");
    let mut rows = Vec::new();
    for scan in [0.0001, 0.001, 0.01] {
        let mut schema = presets::case1_hyperscale(LlmSize::B8, 1);
        schema.retrieval = schema.retrieval.map(|r| r.with_scan_fraction(scan));
        let profiler = StageProfiler::new(schema, cluster.clone());
        let b = breakdown::stage_breakdown(&profiler, &[8, 16, 32, 64], &[1, 16, 64]).unwrap();
        rows.push(format!(
            "    \"{scan}\": {}",
            f(breakdown::share_of(&b, Stage::Retrieval))
        ));
    }
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  },\n");

    out.push_str("  \"encode_share_by_corpus_tokens\": {\n");
    let mut rows = Vec::new();
    for ctx in [100_000u64, 1_000_000, 10_000_000] {
        let profiler = StageProfiler::new(
            presets::case2_long_context(LlmSize::B70, ctx),
            cluster.clone(),
        );
        let b = breakdown::stage_breakdown(&profiler, &[8, 16, 32, 64], &[1, 16, 64]).unwrap();
        rows.push(format!(
            "    \"{ctx}\": {}",
            f(breakdown::share_of(&b, Stage::DatabaseEncode))
        ));
    }
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  }\n}\n");
    check_golden("paper_claims.json", &out);
}

/// Renders the fault-facing surface of a chaos run: the fault ledger,
/// merged fleet metrics, per-class shed counts, replica lifetimes, and the
/// windowed recovery picture.
fn render_chaos(name: &str, report: &ChaosReport, slo: &SloTarget, window_s: f64) -> String {
    let m = &report.fleet.merged.metrics;
    let fault = &report.fault;
    let mut out = format!("{{\n  \"bench\": \"golden/{name}\",\n");
    let _ = writeln!(
        out,
        "  \"fault\": {{\"injected\": {}, \"completed\": {}, \"shed\": {}, \"failed\": {}, \
         \"retried\": {}, \"applied\": {}, \"skipped\": {}}},",
        fault.injected,
        fault.completed,
        fault.shed,
        fault.failed,
        fault.retried,
        fault.faults_applied,
        fault.faults_skipped,
    );
    let disruption_rows: Vec<String> = fault
        .disruptions
        .iter()
        .map(|d| {
            format!(
                "    {{\"time_s\": {}, \"replica\": {}, \"kind\": \"{:?}\"}}",
                f(d.time_s),
                d.replica,
                d.kind
            )
        })
        .collect();
    out.push_str("  \"disruptions\": [\n");
    out.push_str(&disruption_rows.join(",\n"));
    out.push_str("\n  ],\n");
    let _ = writeln!(out, "  \"makespan_s\": {},", f(m.makespan_s));
    let _ = writeln!(
        out,
        "  \"ttft\": {{\"mean_s\": {}, \"p99_s\": {}, \"max_s\": {}}},",
        f(m.ttft.mean_s),
        f(m.ttft.p99_s),
        f(m.ttft.max_s)
    );
    let _ = writeln!(
        out,
        "  \"latency\": {{\"mean_s\": {}, \"p99_s\": {}, \"max_s\": {}}},",
        f(m.latency.mean_s),
        f(m.latency.p99_s),
        f(m.latency.max_s)
    );
    let _ = writeln!(
        out,
        "  \"offered_attainment\": {},",
        f(report.offered_attainment(slo))
    );
    let class_rows: Vec<String> = report
        .fleet
        .merged
        .per_class
        .iter()
        .map(|c| {
            format!(
                "    {{\"class\": {}, \"completed\": {}, \"shed\": {}, \"latency_p99_s\": {}}}",
                c.class,
                c.metrics.completed,
                c.metrics.shed,
                f(c.metrics.latency.p99_s)
            )
        })
        .collect();
    out.push_str("  \"per_class\": [\n");
    out.push_str(&class_rows.join(",\n"));
    out.push_str("\n  ],\n");
    let lifetime_rows: Vec<String> = report
        .lifetimes
        .iter()
        .map(|l| {
            format!(
                "    {{\"replica\": {}, \"provisioned_s\": {}, \"routable_s\": {}, \
                 \"decommissioned_s\": {}, \"retired_s\": {}, \"assigned\": {}}}",
                l.replica,
                f(l.provisioned_s),
                f(l.routable_s),
                l.decommissioned_s.map_or_else(|| "null".to_string(), f),
                f(l.retired_s),
                l.assigned
            )
        })
        .collect();
    out.push_str("  \"lifetimes\": [\n");
    out.push_str(&lifetime_rows.join(",\n"));
    out.push_str("\n  ],\n");
    let _ = writeln!(out, "  \"replica_seconds\": {},", f(report.replica_seconds));
    let recovery_rows: Vec<String> = report
        .recovery(slo, window_s)
        .iter()
        .map(|r| {
            format!(
                "    {{\"fault_s\": {}, \"replica\": {}, \"reattainment_s\": {}, \"dip_area\": {}}}",
                f(r.fault_s),
                r.replica,
                r.reattainment_s.map_or_else(|| "null".to_string(), f),
                f(r.dip_area)
            )
        })
        .collect();
    out.push_str("  \"recovery\": [\n");
    out.push_str(&recovery_rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

#[test]
fn golden_fault_crash() {
    // The PR 7 fault path: the engine-metrics pipeline as a two-replica
    // fleet losing replica 0 mid-run, in-flight work re-queued, replacement
    // provisioned cold after half a second.
    let faults = FaultSchedule::new(vec![FaultEvent::Crash {
        replica: 0,
        at_s: 1.0,
        restart_delay_s: 0.5,
    }]);
    let report = ChaosEngine::new(
        engine_metrics_spec(),
        RouterPolicy::LeastOutstanding,
        ScaleDriver::Static { replicas: 2 },
    )
    .with_faults(faults)
    .run_trace(&engine_metrics_trace());
    let slo = SloTarget::paper_default();
    check_golden(
        "fault_crash.json",
        &render_chaos("fault_crash", &report, &slo, 0.5),
    );
}

#[test]
fn golden_fault_straggler() {
    // A straggler window: replica 0 runs 6x slow from t=0.5 to t=2.5, then
    // recovers. Round-robin routing keeps sending it work, so the window
    // shows up in the tail latencies.
    let faults = FaultSchedule::new(vec![
        FaultEvent::StragglerStart {
            replica: 0,
            at_s: 0.5,
            slowdown: 6.0,
        },
        FaultEvent::StragglerEnd {
            replica: 0,
            at_s: 2.5,
        },
    ]);
    let report = ChaosEngine::new(
        engine_metrics_spec(),
        RouterPolicy::RoundRobin,
        ScaleDriver::Static { replicas: 2 },
    )
    .with_faults(faults)
    .run_trace(&engine_metrics_trace());
    let slo = SloTarget::paper_default();
    check_golden(
        "fault_straggler.json",
        &render_chaos("fault_straggler", &report, &slo, 0.5),
    );
}

#[test]
fn golden_admission_shed() {
    // Priority-aware load shedding: a two-class overload against one
    // replica, the chat class holding a priority-2 admission threshold.
    let mix = WorkloadMix::new(vec![
        RequestClass::new(
            "batch",
            1.0,
            SequenceProfile::paper_default().with_decode_tokens(64),
            0.1,
            SloTarget::new(10.0, 0.2),
        ),
        RequestClass::new(
            "chat",
            2.0,
            SequenceProfile::paper_default().with_decode_tokens(32),
            0.1,
            SloTarget::new(2.0, 0.05),
        )
        .with_priority(2),
    ]);
    let trace = MixTraceSpec {
        num_requests: 300,
        mix,
        arrival: ArrivalProcess::Poisson { rate_rps: 120.0 },
        seed: 17,
    }
    .generate();
    let admission = AdmissionConfig::new(8.0, 16.0).with_class_priority(1, 2);
    let report = ChaosEngine::new(
        engine_metrics_spec(),
        RouterPolicy::LeastOutstanding,
        ScaleDriver::Static { replicas: 1 },
    )
    .with_admission(admission)
    .run_trace(&trace);
    let slo = SloTarget::new(2.0, 0.05);
    check_golden(
        "admission_shed.json",
        &render_chaos("admission_shed", &report, &slo, 0.5),
    );
}

/// The degenerate pin: a one-replica chaos fleet with an empty fault
/// schedule, no admission control, and a static driver must reproduce the
/// committed `engine_metrics.json` golden **byte for byte** — the chaos
/// engine with everything turned off is the PR 2 engine.
#[test]
fn golden_chaos_degenerate_reproduces_engine_metrics() {
    let report = ChaosEngine::new(
        engine_metrics_spec(),
        RouterPolicy::RoundRobin,
        ScaleDriver::Static { replicas: 1 },
    )
    .run_trace(&engine_metrics_trace());
    assert_eq!(report.fault.shed, 0);
    assert_eq!(report.fault.failed, 0);
    check_golden(
        "engine_metrics.json",
        &render_engine_metrics(&report.fleet.merged),
    );
}

/// The elastic degenerate pin: the faultless reactive chaos evaluation
/// under the `timevarying.json` scenario is bit-identical to the
/// autoscaled time-varying evaluation the golden was rendered from.
#[test]
fn golden_chaos_degenerate_matches_autoscaler_scenario() {
    use rago::core::faulted::FaultScenario;
    use rago::serving_sim::faults::ScaleDriver as Driver;
    let rago = Rago::new(
        presets::case1_hyperscale(LlmSize::B8, 1),
        ClusterSpec::paper_default(),
    );
    let frontier = rago
        .optimize(&SearchOptions::fast())
        .expect("static search succeeds");
    let best = frontier.max_qps_per_chip().expect("non-empty frontier");
    let mix = WorkloadMix::new(vec![
        RequestClass::new(
            "chat",
            3.0,
            SequenceProfile::paper_default().with_decode_tokens(32),
            0.1,
            SloTarget::new(2.0, 0.05),
        ),
        RequestClass::new(
            "report",
            1.0,
            SequenceProfile::paper_default().with_decode_tokens(128),
            0.1,
            SloTarget::new(10.0, 0.2),
        ),
    ]);
    let qps = best.performance.qps;
    let trace = MixTraceSpec {
        num_requests: 400,
        mix: mix.clone(),
        arrival: ArrivalProcess::Diurnal {
            base_rps: 0.3 * qps,
            peak_rps: 2.0 * qps,
            period_s: 16.0,
        },
        seed: 29,
    }
    .generate();
    let policy = AutoscalerPolicy::new(1, 3)
        .with_evaluation_interval(0.25)
        .with_scale_out_queue_depth(2.0)
        .with_scale_in_outstanding(10.0)
        .with_cooldown(1.0)
        .with_warmup(0.5);
    let fleet = FleetConfig::new(3, RouterPolicy::LeastOutstanding);
    let baseline = rago
        .evaluate_fleet_timevarying(&best.schedule, &fleet, &mix, &trace, Some(&policy))
        .expect("time-varying evaluation succeeds");
    let chaos = rago
        .evaluate_fleet_faulted(
            &best.schedule,
            RouterPolicy::LeastOutstanding,
            &mix,
            &trace,
            &FaultScenario::new(Driver::Reactive(policy)),
        )
        .expect("faulted evaluation succeeds");
    assert_eq!(chaos.chaos.fleet, baseline.report);
    assert_eq!(chaos.replica_seconds, baseline.replica_seconds);
    assert_eq!(chaos.attainment, baseline.attainment);
    assert_eq!(chaos.goodput_rps, baseline.goodput_rps);
    let scaling = baseline.scaling.expect("autoscaled run has history");
    assert_eq!(chaos.scaling.events, scaling.events);
    assert_eq!(chaos.scaling.lifetimes, scaling.lifetimes);
}

/// Renders one pool's side of a disaggregated run: router, load imbalance,
/// and the per-replica dispatch/completion counts.
fn render_pool(pool: &PoolReport) -> String {
    let replica_rows: Vec<String> = pool
        .per_replica
        .iter()
        .map(|r| {
            format!(
                "      {{\"replica\": {}, \"assigned\": {}, \"completed\": {}, \
                 \"makespan_s\": {}}}",
                r.replica,
                r.assigned,
                r.report.metrics.completed,
                f(r.report.metrics.makespan_s),
            )
        })
        .collect();
    format!(
        "{{\"role\": \"{:?}\", \"router\": \"{:?}\", \
         \"imbalance\": {{\"min_assigned\": {}, \"max_assigned\": {}, \"cv\": {}, \
         \"max_over_mean\": {}}}, \"per_replica\": [\n{}\n    ]}}",
        pool.role,
        pool.router,
        pool.imbalance.min_assigned,
        pool.imbalance.max_assigned,
        f(pool.imbalance.coefficient_of_variation),
        f(pool.imbalance.max_over_mean),
        replica_rows.join(",\n"),
    )
}

#[test]
fn golden_disagg_run() {
    // The PR 8 disaggregated pools: the engine-metrics pipeline cut at the
    // decode boundary into a 2-prefill + 1-decode split, the KV handoff
    // priced at 128 KiB/token over a 100 GB/s link with 5 us of fixed
    // overhead, under the same seeded Poisson trace as the flat golden.
    let full = engine_metrics_spec();
    let prefill_spec = full.clone().with_handoff();
    let decode_spec = PipelineSpec::decode_only(full.decode.clone(), None);
    let transfer = KvTransferModel::new(131_072.0, 100e9, 5e-6);
    let report = DisaggEngine::new(
        prefill_spec,
        2,
        RouterPolicy::LeastOutstanding,
        decode_spec,
        1,
        RouterPolicy::LeastOutstanding,
        transfer,
    )
    .run_trace(&engine_metrics_trace());

    let m = &report.merged.metrics;
    let slo = SloTarget::paper_default();
    let t = &report.transfers;
    let mut out = String::from("{\n  \"bench\": \"golden/disagg_run\",\n");
    let _ = writeln!(out, "  \"requests\": {},", m.requests);
    let _ = writeln!(out, "  \"makespan_s\": {},", f(m.makespan_s));
    let _ = writeln!(out, "  \"throughput_rps\": {},", f(m.throughput_rps));
    let _ = writeln!(
        out,
        "  \"ttft\": {{\"mean_s\": {}, \"p50_s\": {}, \"p95_s\": {}, \"p99_s\": {}, \"max_s\": {}}},",
        f(m.ttft.mean_s), f(m.ttft.p50_s), f(m.ttft.p95_s), f(m.ttft.p99_s), f(m.ttft.max_s)
    );
    let _ = writeln!(
        out,
        "  \"tpot\": {{\"mean_s\": {}, \"p50_s\": {}, \"p95_s\": {}, \"p99_s\": {}, \"max_s\": {}}},",
        f(m.tpot.mean_s), f(m.tpot.p50_s), f(m.tpot.p95_s), f(m.tpot.p99_s), f(m.tpot.max_s)
    );
    let _ = writeln!(
        out,
        "  \"latency\": {{\"mean_s\": {}, \"p50_s\": {}, \"p95_s\": {}, \"p99_s\": {}, \"max_s\": {}}},",
        f(m.latency.mean_s), f(m.latency.p50_s), f(m.latency.p95_s), f(m.latency.p99_s),
        f(m.latency.max_s)
    );
    let _ = writeln!(out, "  \"queueing_mean_s\": {},", f(m.queueing_mean_s));
    let _ = writeln!(out, "  \"service_mean_s\": {},", f(m.service_mean_s));
    let _ = writeln!(out, "  \"mean_decode_fill\": {},", f(m.mean_decode_fill));
    let _ = writeln!(
        out,
        "  \"attainment\": {},",
        f(report.merged.attainment(&slo))
    );
    let _ = writeln!(
        out,
        "  \"goodput_rps\": {},",
        f(report.merged.goodput_rps(&slo))
    );
    let _ = writeln!(
        out,
        "  \"transfers\": {{\"transfers\": {}, \"bytes_total\": {}, \"latency_total_s\": {}, \
         \"latency_max_s\": {}, \"requeued_prefill\": {}, \"requeued_decode\": {}}},",
        t.transfers,
        f(t.bytes_total),
        f(t.latency_total_s),
        f(t.latency_max_s),
        t.requeued_prefill,
        t.requeued_decode,
    );
    let _ = writeln!(out, "  \"prefill\": {},", render_pool(&report.prefill));
    let _ = writeln!(out, "  \"decode\": {}", render_pool(&report.decode));
    out.push_str("}\n");
    check_golden("disagg_run.json", &out);
}

/// The pool degenerate pin: a fleet declaring one Monolithic pool is not
/// disaggregated — it routes through the unchanged flat cluster path with
/// the *pool's* replica count and router — so a single-replica Monolithic
/// pool must reproduce the committed `engine_metrics.json` **byte for
/// byte**. This is the same dispatch the core evaluators perform, pinned
/// here at the engine level against the snapshot.
#[test]
fn golden_single_monolithic_pool_reproduces_engine_metrics() {
    let fleet = FleetConfig {
        replicas: 1,
        // Deliberately different from the pool router: the pool's policy,
        // not the flat field, must drive the dispatch.
        router: RouterPolicy::LeastOutstanding,
        pools: vec![PoolSpec::new(
            PoolRole::Monolithic,
            1,
            RouterPolicy::RoundRobin,
        )],
        transfer: KvTransferModel::zero(),
    };
    fleet.validate().expect("single-pool fleet is valid");
    assert!(!fleet.is_disaggregated());
    let [pool] = fleet.pools.as_slice() else {
        panic!("fleet declares exactly one pool");
    };
    let report =
        ClusterEngine::homogeneous(engine_metrics_spec(), pool.replicas as usize, pool.router)
            .run_trace(&engine_metrics_trace());
    check_golden(
        "engine_metrics.json",
        &render_engine_metrics(&report.merged),
    );
}
