//! Integration tests asserting the qualitative claims of the paper's
//! characterization sections hold in this reproduction.

use rago::accel_sim::{AcceleratorGroup, InferenceSimulator};
use rago::core::{breakdown, StageProfiler};
use rago::hardware::{ClusterSpec, XpuSpec};
use rago::schema::presets::{self, LlmSize};
use rago::schema::{ModelConfig, Stage};
use rago::serving_sim::iterative::{IterativeDecodeParams, IterativeDecodeSim};

#[test]
fn claim_5_1_retrieval_share_grows_with_scan_fraction() {
    // Figure 7b: scanning 1% of the database makes retrieval far more
    // dominant than scanning 0.01%.
    let cluster = ClusterSpec::paper_default();
    let mut shares = Vec::new();
    for scan in [0.0001, 0.001, 0.01] {
        let mut schema = presets::case1_hyperscale(LlmSize::B8, 1);
        schema.retrieval = schema.retrieval.map(|r| r.with_scan_fraction(scan));
        let profiler = StageProfiler::new(schema, cluster.clone());
        let b = breakdown::stage_breakdown(&profiler, &[8, 16, 32, 64], &[1, 16, 64]).unwrap();
        shares.push(breakdown::share_of(&b, Stage::Retrieval));
    }
    assert!(shares[0] < shares[1] && shares[1] < shares[2], "{shares:?}");
    assert!(shares[2] > 0.8, "1% scan should dominate: {shares:?}");
}

#[test]
fn claim_5_1_retrieval_share_shrinks_with_longer_sequences() {
    // Figure 7c: longer prefix/decode lengths reduce the retrieval share.
    let cluster = ClusterSpec::paper_default();
    let share_for = |prefix: u32, decode: u32| {
        let mut schema = presets::case1_hyperscale(LlmSize::B8, 1);
        schema.sequence = schema
            .sequence
            .with_prefix_tokens(prefix)
            .with_decode_tokens(decode);
        let profiler = StageProfiler::new(schema, cluster.clone());
        let b = breakdown::stage_breakdown(&profiler, &[8, 16, 32, 64], &[1, 16, 64]).unwrap();
        breakdown::share_of(&b, Stage::Retrieval)
    };
    let short = share_for(128, 128);
    let long = share_for(2048, 512);
    assert!(
        short > long,
        "retrieval share should fall with sequence length: short {short} vs long {long}"
    );
    // The paper reports 86% at 128/128 on its calibration; our substrate puts
    // the same point above 50% — the shape (retrieval-dominant and shrinking
    // with sequence length) is what we assert.
    assert!(
        short > 0.5,
        "short sequences should be retrieval bound: {short}"
    );
}

#[test]
fn claim_5_2_encoder_becomes_bottleneck_as_context_grows() {
    // Figure 8b: the encode share grows with context length even though the
    // encoder is ~600x smaller than the 70B generator.
    let cluster = ClusterSpec::paper_default();
    let mut encode_shares = Vec::new();
    for ctx in [100_000u64, 1_000_000, 10_000_000] {
        let profiler = StageProfiler::new(
            presets::case2_long_context(LlmSize::B70, ctx),
            cluster.clone(),
        );
        let b = breakdown::stage_breakdown(&profiler, &[8, 16, 32, 64], &[1, 16, 64]).unwrap();
        encode_shares.push(breakdown::share_of(&b, Stage::DatabaseEncode));
    }
    assert!(encode_shares[0] < encode_shares[2], "{encode_shares:?}");
    assert!(encode_shares[2] > 0.8, "{encode_shares:?}");
}

#[test]
fn claim_5_2_rag_is_orders_of_magnitude_cheaper_than_long_context_llm() {
    // §5.2 text: >100x TTFT advantage for RAG over an efficient long-context
    // LLM at 1M tokens (the paper reports 2852x on its hardware).
    let sim = InferenceSimulator::new();
    let group = AcceleratorGroup::new(XpuSpec::default(), 64);
    let model = ModelConfig::llama3_70b();
    let rag = sim.best_prefix_cost(&model, 512, 1, &group).unwrap();
    let long_ctx = sim
        .long_context_prefix_cost(&model, 1_000_000, 1, &group, 4, 128)
        .unwrap();
    assert!(long_ctx.latency_s / rag.latency_s > 100.0);
}

#[test]
fn claim_5_3_idleness_peaks_when_batches_match() {
    // Figure 10b: normalized decode latency is worst when the iterative batch
    // size approaches the decode batch size, and ~1.0 when the iterative
    // batch is 1.
    let run = |iterative_batch: u32| {
        IterativeDecodeSim::new(IterativeDecodeParams {
            decode_batch: 64,
            iterative_batch,
            decode_len: 256,
            retrievals_per_sequence: 4,
            step_latency_s: 1e-3,
            retrieval_prefix_latency_s: 0.0,
            seed: 3,
        })
        .run()
        .normalized_decode_latency
    };
    let small = run(1);
    let medium = run(16);
    let matched = run(64);
    assert!(small < 1.1, "batch-1 idleness {small}");
    assert!(matched > medium, "{matched} !> {medium}");
    assert!(matched > 1.5, "matched-batch idleness {matched}");
}

#[test]
fn claim_5_4_rewriter_hurts_ttft_but_not_throughput() {
    // §5.4: adding the 8B rewriter and 120M reranker leaves QPS/chip largely
    // unchanged but increases TTFT substantially (the paper reports 2.4x).
    let cluster = ClusterSpec::paper_default();
    let plain = StageProfiler::new(presets::case1_hyperscale(LlmSize::B70, 1), cluster.clone());
    let extended = StageProfiler::new(
        presets::case4_rewriter_reranker(LlmSize::B70),
        cluster.clone(),
    );

    // TTFT comparison at batch 1 on generous per-stage resources.
    let ttft = |profiler: &StageProfiler| -> f64 {
        profiler
            .schema()
            .pipeline()
            .into_iter()
            .filter(|s| s.affects_ttft())
            .map(|s| {
                let resources = if s == Stage::Retrieval { 32 } else { 16 };
                profiler.profile(s, resources, 1).unwrap().latency_s
            })
            .sum()
    };
    let ttft_plain = ttft(&plain);
    let ttft_ext = ttft(&extended);
    assert!(
        ttft_ext > ttft_plain * 1.5,
        "rewriter should add TTFT: {ttft_ext} vs {ttft_plain}"
    );

    // Throughput share of the added components stays small.
    let b = breakdown::stage_breakdown(&extended, &[8, 16, 32, 64], &[1, 16, 64]).unwrap();
    let added = breakdown::share_of(&b, Stage::RewritePrefix)
        + breakdown::share_of(&b, Stage::RewriteDecode)
        + breakdown::share_of(&b, Stage::Rerank);
    assert!(added < 0.35, "auxiliary components' share {added}");
}
