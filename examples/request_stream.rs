//! Drive a live request stream through an optimized schedule.
//!
//! This example runs the full RAGO loop end to end:
//!
//! 1. search the scheduling space for the Case I (hyperscale retrieval)
//!    workload and take the best QPS/chip schedule off the Pareto frontier;
//! 2. generate a Poisson request trace around the paper's sequence profile;
//! 3. drive the trace through the request-level discrete-event engine
//!    (`evaluate_dynamic`) and print the TTFT/TPOT distributions, the
//!    queueing breakdown, and SLO attainment;
//! 4. sweep the offered load to locate the sustained-throughput knee.
//!
//! ```sh
//! cargo run --release --example request_stream
//! ```

use rago::core::{Rago, SearchOptions};
use rago::hardware::ClusterSpec;
use rago::schema::{presets, SequenceProfile, SloTarget};
use rago::serving_sim::engine::sustained_throughput_knee;
use rago::workloads::{ArrivalProcess, TraceSpec};

fn main() {
    let schema = presets::case1_hyperscale(presets::LlmSize::B8, 1);
    let rago = Rago::new(schema, ClusterSpec::paper_default());

    // Step 1: the static search (Algorithm 1).
    let frontier = rago
        .optimize(&SearchOptions::fast())
        .expect("the fast grid has feasible schedules");
    let best = frontier
        .max_qps_per_chip()
        .expect("non-empty frontier")
        .clone();
    println!("schedule under test: {}", best.schedule.describe());
    println!(
        "static model: TTFT {:.1} ms, TPOT {:.2} ms, QPS {:.1}",
        best.performance.ttft_s * 1e3,
        best.performance.tpot_s * 1e3,
        best.performance.qps
    );

    // Step 2: a Poisson request stream at 75 % of the static QPS.
    let slo = SloTarget::paper_default();
    let profile = SequenceProfile::paper_default().with_decode_tokens(64);
    let rate = 0.75 * best.performance.qps;
    let trace = TraceSpec {
        num_requests: 400,
        profile,
        arrival: ArrivalProcess::Poisson { rate_rps: rate },
        length_jitter: 0.2,
        seed: 7,
    }
    .generate();

    // Step 3: the dynamic evaluation.
    let eval = rago
        .evaluate_dynamic(&best.schedule, &trace, &slo)
        .expect("the schedule is feasible");
    let m = &eval.report.metrics;
    println!("\nunder {rate:.1} rps Poisson ({} requests):", m.requests);
    println!(
        "  TTFT  p50 {:.1} ms   p95 {:.1} ms   p99 {:.1} ms",
        m.ttft.p50_s * 1e3,
        m.ttft.p95_s * 1e3,
        m.ttft.p99_s * 1e3
    );
    println!(
        "  TPOT  p50 {:.2} ms   p95 {:.2} ms   p99 {:.2} ms",
        m.tpot.p50_s * 1e3,
        m.tpot.p95_s * 1e3,
        m.tpot.p99_s * 1e3
    );
    println!(
        "  queueing {:.1} ms vs service {:.1} ms (mean per request)",
        m.queueing_mean_s * 1e3,
        m.service_mean_s * 1e3
    );
    println!(
        "  SLO attainment {:.1} % (target {:.0} %), goodput {:.1} rps",
        eval.attainment * 100.0,
        slo.attainment * 100.0,
        eval.goodput_rps
    );

    // Step 4: sweep offered load for the sustained-throughput knee.
    println!("\nthroughput knee sweep:");
    let mut sweep = Vec::new();
    for fraction in [0.5, 1.0, 1.5, 2.0, 3.0] {
        let r = fraction * best.performance.qps;
        let t = TraceSpec {
            num_requests: 400,
            profile,
            arrival: ArrivalProcess::Poisson { rate_rps: r },
            length_jitter: 0.2,
            seed: 7,
        }
        .generate();
        let e = rago
            .evaluate_dynamic(&best.schedule, &t, &slo)
            .expect("the schedule is feasible");
        println!(
            "  {r:7.1} rps offered -> attainment {:5.1} %, goodput {:6.1} rps, TTFT p99 {:7.1} ms",
            e.attainment * 100.0,
            e.goodput_rps,
            e.report.metrics.ttft.p99_s * 1e3
        );
        sweep.push((r, e.attainment));
    }
    match sustained_throughput_knee(&sweep, &slo) {
        Some(knee) => println!("sustained-throughput knee: {knee:.1} rps"),
        None => println!("no swept rate meets the SLO"),
    }
}
