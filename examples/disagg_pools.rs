//! Disaggregated prefill/decode pools: plan, simulate, compare.
//!
//! A monolithic replica carries the pre-decode accelerator groups *and* the
//! decode XPUs, so a prefill-bound workload pays for idle decode chips.
//! Splitwise and DistServe break that coupling: a *Prefill* pool sized for
//! TTFT feeds a *Decode* pool sized for TPOT, each request's KV state
//! crossing an interconnect between the phases. This example walks the
//! whole loop on a prefill-heavy workload (short decodes, tight SLO):
//!
//! 1. **plan** — price the KV handoff from the generative model and a 3D
//!    torus (`transfer_model_from_interconnect`), then jointly size the
//!    cheapest `(prefill, decode)` split for a target rate
//!    (`plan_capacity_pools`), next to the flat planner's answer;
//! 2. **simulate** — drive the same trace through collocated fleets and
//!    through the planned split (`evaluate_fleet_disagg`), watching the
//!    transfer counters;
//! 3. **compare** — rank (split × interconnect) candidates by goodput per
//!    chip (`rank_frontier_by_goodput_disagg`) and see disaggregation win
//!    at the tight SLO.
//!
//! ```sh
//! cargo run --release --example disagg_pools
//! ```

use rago::core::{
    transfer_model_from_interconnect, BatchingPolicy, CapacityOptions, ParetoFrontier, ParetoPoint,
    PlacementPlan, Rago, ResourceAllocation, Schedule,
};
use rago::hardware::{ClusterSpec, InterconnectSpec};
use rago::schema::{presets, FleetConfig, RouterPolicy, SequenceProfile, SloTarget, Stage};
use rago::workloads::{ArrivalProcess, TraceSpec};

fn main() {
    let schema = presets::case1_hyperscale(presets::LlmSize::B8, 1);
    // Price the handoff before the schema moves into the optimizer: KV
    // bytes per token from the generative model, latency from the link.
    let torus = InterconnectSpec::torus_3d();
    let transfer = transfer_model_from_interconnect(&schema, &torus);
    let rago = Rago::new(schema, ClusterSpec::paper_default());

    // A prefill-bound shape: one prefix accelerator group and the decode
    // XPUs sized equally, so a monolithic replica costs 16 chips while a
    // pool replica costs 8.
    let schedule = Schedule {
        placement: PlacementPlan {
            predecode_groups: vec![vec![Stage::Prefix]],
        },
        allocation: ResourceAllocation {
            group_xpus: vec![8],
            decode_xpus: 8,
            retrieval_servers: 32,
        },
        batching: BatchingPolicy::new(8, 64),
    };
    println!("schedule under test: {}", schedule.describe());
    println!(
        "KV handoff over {}: {:.1} KiB/token, {:.0} us base latency",
        torus.name,
        transfer.kv_bytes_per_token / 1024.0,
        transfer.base_latency_s * 1e6
    );

    // Short decodes and a tight (TTFT, TPOT) target keep the workload
    // prefill-bound: past one replica's prefill knee, a second full
    // replica buys mostly idle decode chips.
    let slo = SloTarget::new(0.4, 0.05);
    let profile = SequenceProfile::paper_default().with_decode_tokens(4);
    let rate: f64 = 160.0;

    // Step 1: the joint pool-size search against the flat planner.
    let options = CapacityOptions {
        max_replicas: 4,
        num_requests: (rate * 1.5).ceil() as usize,
        profile,
        ..CapacityOptions::default()
    };
    let flat = rago
        .plan_capacity(&schedule, &slo, rate, &options)
        .expect("the flat plan is feasible");
    let pools = rago
        .plan_capacity_pools(&schedule, &slo, rate, &transfer, &options)
        .expect("the pool plan is feasible");
    println!(
        "\nplans for {rate:.0} rps within TTFT {:.1} s / TPOT {:.2} s:",
        slo.ttft_s, slo.tpot_s
    );
    println!(
        "  flat:  {} x monolithic            -> {:3} XPUs (attainment {:.1} %)",
        flat.replicas,
        flat.total_xpus,
        flat.attainment * 100.0
    );
    println!(
        "  pools: {} prefill + {} decode       -> {:3} XPUs (attainment {:.1} %)",
        pools.prefill_replicas,
        pools.decode_replicas,
        pools.total_xpus,
        pools.attainment * 100.0
    );

    // Step 2: simulate the same trace through both shapes.
    let trace = TraceSpec {
        num_requests: (rate * 1.5).ceil() as usize,
        profile,
        arrival: ArrivalProcess::Poisson { rate_rps: rate },
        length_jitter: 0.2,
        seed: 17,
    }
    .generate();
    println!("\ngoodput per chip at {rate:.0} rps offered:");
    for n in 1..=2u32 {
        let eval = rago
            .evaluate_fleet(
                &schedule,
                &FleetConfig::new(n, RouterPolicy::LeastOutstanding),
                &trace,
                &slo,
            )
            .expect("collocated evaluation succeeds");
        let chips = schedule.allocation.total_xpus() * n;
        println!(
            "  {n} x collocated : {:3} chips, attainment {:5.1} %, {:.2} goodput/chip",
            chips,
            eval.attainment * 100.0,
            eval.goodput_rps / f64::from(chips)
        );
    }
    let split = FleetConfig::split(
        pools.prefill_replicas,
        pools.decode_replicas,
        RouterPolicy::LeastOutstanding,
    )
    .with_transfer(transfer);
    let eval = rago
        .evaluate_fleet_disagg(&schedule, &split, &trace, &slo)
        .expect("disaggregated evaluation succeeds");
    let t = &eval.report.transfers;
    println!(
        "  {}p + {}d split : {:3} chips, attainment {:5.1} %, {:.2} goodput/chip",
        pools.prefill_replicas,
        pools.decode_replicas,
        eval.total_xpus,
        eval.attainment * 100.0,
        eval.goodput_per_chip
    );
    println!(
        "    {} KV transfers, {:.1} MiB total, mean hop {:.0} us, max {:.0} us",
        t.transfers,
        t.bytes_total / (1024.0 * 1024.0),
        t.latency_total_s / t.transfers.max(1) as f64 * 1e6,
        t.latency_max_s * 1e6
    );

    // Step 3: the joint (split, interconnect) ranking over the schedule.
    let frontier = ParetoFrontier {
        points: vec![ParetoPoint {
            schedule: schedule.clone(),
            performance: rago.evaluate(&schedule).expect("static model evaluates"),
        }],
        evaluated_schedules: 1,
    };
    let splits = [(1, 1), (2, 1), (2, 2), (3, 1)];
    let interconnects = [
        InterconnectSpec::torus_3d(),
        InterconnectSpec::datacenter_network(),
    ];
    let ranked =
        rago.rank_frontier_by_goodput_disagg(&frontier, &trace, &slo, &splits, &interconnects);
    println!("\njoint (split, interconnect) ranking by goodput per chip:");
    for (_, choice, eval) in ranked.iter().take(4) {
        println!(
            "  {}p + {}d over {:18}: {:3} chips, {:.2} goodput/chip",
            choice.prefill_replicas,
            choice.decode_replicas,
            choice.interconnect,
            eval.total_xpus,
            eval.goodput_per_chip
        );
    }
}
