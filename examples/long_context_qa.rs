//! Case II walk-through: answering questions over a long uploaded document.
//!
//! Shows the two sides of the paper's long-context study (§5.2):
//!
//! 1. an end-to-end *functional* pass using the vector-search substrate — a
//!    synthetic "document" is chunked, encoded as vectors, indexed, and
//!    queried with exact kNN, exactly the retrieval structure the paradigm
//!    assumes; and
//! 2. the *performance* side — RAGO's schedule for the 1M-token workload
//!    versus the LLM-extension baseline, and the speedup over feeding the
//!    whole context to the LLM.
//!
//! Run with: `cargo run --release --example long_context_qa`

use rago::accel_sim::{AcceleratorGroup, InferenceSimulator};
use rago::core::{BaselineSystem, Rago, SearchOptions};
use rago::hardware::ClusterSpec;
use rago::schema::presets::{self, LlmSize};
use rago::schema::ModelConfig;
use rago::vectordb::{FlatIndex, SyntheticDataset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- functional retrieval over a chunked "document" -------------------
    let chunks = 7_812; // ~1M tokens / 128-token chunks
    let dim = 64; // reduced dimensionality keeps the example fast
    let corpus = SyntheticDataset::clustered(chunks, dim, 32, 42);
    let index = FlatIndex::build(dim, corpus.vectors.clone())?;
    let question_vec = corpus.vectors[123].clone(); // a "question" near chunk 123
    let neighbors = index.search(&question_vec, 5);
    println!("retrieved chunks for the question: {:?}", {
        let ids: Vec<usize> = neighbors.iter().map(|n| n.id).collect();
        ids
    });

    // --- serving-performance side -----------------------------------------
    let cluster = ClusterSpec::paper_default();
    let schema = presets::case2_long_context(LlmSize::B70, 1_000_000);

    let rago = Rago::new(schema.clone(), cluster.clone());
    let frontier = rago.optimize(&SearchOptions::fast())?;
    let rago_best = frontier.max_qps_per_chip().expect("non-empty frontier");

    let baseline = BaselineSystem::new(schema, cluster.clone(), 128);
    let baseline_best = baseline
        .optimize(&[1, 2, 8, 32, 128], &[256, 1024])?
        .max_qps_per_chip()
        .expect("non-empty frontier")
        .clone();

    println!("\n== 1M-token long-context RAG serving (70B generator) ==");
    println!(
        "RAGO:     QPS/chip = {:.3}, TTFT = {:.2} s, schedule = {}",
        rago_best.performance.qps_per_chip,
        rago_best.performance.ttft_s,
        rago_best.schedule.describe()
    );
    println!(
        "baseline: QPS/chip = {:.3}, TTFT = {:.2} s, schedule = {}",
        baseline_best.performance.qps_per_chip,
        baseline_best.performance.ttft_s,
        baseline_best.schedule.describe()
    );
    println!(
        "RAGO speedup: {:.2}x QPS/chip",
        rago_best.performance.qps_per_chip / baseline_best.performance.qps_per_chip
    );

    // --- RAG versus a long-context LLM fed the full 1M tokens --------------
    let sim = InferenceSimulator::new();
    let group = AcceleratorGroup::new(cluster.xpu.clone(), 64);
    let model = ModelConfig::llama3_70b();
    let rag_prefix = sim.best_prefix_cost(&model, 512, 1, &group)?;
    let long_ctx = sim.long_context_prefix_cost(&model, 1_000_000, 1, &group, 4, 128)?;
    println!(
        "\nfeeding the full 1M-token context instead of retrieving: {:.0}x slower TTFT",
        long_ctx.latency_s / rag_prefix.latency_s
    );
    Ok(())
}
