//! Crash a replica at the diurnal peak and watch the fleet recover —
//! reactive versus predictive scaling, side by side.
//!
//! The walkthrough:
//!
//! 1. search the Case I scheduling space and take the best QPS/chip
//!    schedule off the Pareto frontier;
//! 2. sample one diurnal cycle of traffic and schedule a replica **crash
//!    at the peak** (with a cold restart a few seconds later);
//! 3. serve the faulted trace twice — once with a **reactive**
//!    autoscaler that discovers the loss through queue build-up, once
//!    with a **predictive** plan derived from the known rate profile
//!    (`plan_capacity_profile` → `scaling_plan_from_profile`);
//! 4. print a plot-ready windowed attainment timeline for both runs plus
//!    the recovery metrics (time back to SLO attainment, goodput-dip
//!    area).
//!
//! ```sh
//! cargo run --release --example chaos_recovery
//! ```

use rago::core::faulted::{scaling_plan_from_profile, FaultScenario};
use rago::core::{CapacityOptions, Rago, SearchOptions};
use rago::hardware::ClusterSpec;
use rago::schema::{presets, RouterPolicy, SequenceProfile, SloTarget};
use rago::serving_sim::autoscaler::AutoscalerPolicy;
use rago::serving_sim::faults::{FaultEvent, FaultSchedule, PredictivePolicy, ScaleDriver};
use rago::workloads::{ArrivalProcess, MixTraceSpec, RateSegment, WorkloadMix};

fn main() {
    let schema = presets::case1_hyperscale(presets::LlmSize::B8, 1);
    let rago = Rago::new(schema, ClusterSpec::paper_default());

    // Step 1: the schedule under test.
    let frontier = rago
        .optimize(&SearchOptions::fast())
        .expect("the fast grid has feasible schedules");
    let best = frontier
        .max_qps_per_chip()
        .expect("non-empty frontier")
        .clone();
    let static_qps = best.performance.qps;
    println!("schedule under test: {}", best.schedule.describe());

    // Step 2: one diurnal cycle, and a crash right at its peak.
    let slo = SloTarget::new(2.0, 0.1);
    let profile = SequenceProfile::paper_default().with_decode_tokens(32);
    let mix = WorkloadMix::single("all", profile, 0.1, slo);
    let (base_rps, peak_rps, period_s) = (0.3 * static_qps, 2.2 * static_qps, 24.0);
    let trace = MixTraceSpec {
        num_requests: (0.5 * (base_rps + peak_rps) * period_s).ceil() as usize,
        mix: mix.clone(),
        arrival: ArrivalProcess::Diurnal {
            base_rps,
            peak_rps,
            period_s,
        },
        seed: 41,
    }
    .generate();
    let crash_at_s = period_s / 2.0; // the sinusoid's peak
    let restart_delay_s = period_s / 8.0;
    let faults = FaultSchedule::new(vec![FaultEvent::Crash {
        replica: 0,
        at_s: crash_at_s,
        restart_delay_s,
    }]);
    println!(
        "diurnal trace: {} requests, trough {base_rps:.0} rps -> peak {peak_rps:.0} rps; \
         replica 0 crashes at t = {crash_at_s:.0} s (restart after {restart_delay_s:.0} s)",
        trace.requests.len()
    );

    // Step 3a: size the fleet from the known rate profile and feed the
    // schedule forward as a predictive plan (led by the warm-up time).
    let warmup_s = 0.5;
    let capacity = CapacityOptions {
        max_replicas: 6,
        num_requests: (peak_rps * 4.0).ceil() as usize,
        profile,
        ..CapacityOptions::default()
    };
    let quarter = period_s / 4.0;
    let mid_rps = 0.5 * (base_rps + peak_rps);
    let segments = [
        RateSegment::new(quarter, base_rps),
        RateSegment::new(quarter, mid_rps),
        RateSegment::new(quarter, peak_rps),
        RateSegment::new(quarter, mid_rps),
    ];
    let planned = rago
        .plan_capacity_profile(&best.schedule, &slo, &segments, &capacity)
        .expect("every segment is plannable");
    let plan = scaling_plan_from_profile(&planned, warmup_s);
    let max_replicas = planned.peak_replicas.max(1);
    println!(
        "capacity profile: peak {} replicas; predictive plan starts at {} with {} step(s)",
        planned.peak_replicas,
        plan.initial,
        plan.steps.len()
    );

    // Step 3b: the two drivers, identical trace and fault schedule.
    let window_s = period_s / 48.0;
    let reactive_policy = AutoscalerPolicy::new(1, max_replicas)
        .with_evaluation_interval(0.25)
        .with_scale_out_queue_depth(2.0)
        .with_scale_in_outstanding(10.0)
        .with_cooldown(1.0)
        .with_warmup(warmup_s);
    let scenario = |driver: ScaleDriver| {
        FaultScenario::new(driver)
            .with_faults(faults.clone())
            .with_recovery_slo(slo)
            .with_recovery_window(window_s)
    };
    let reactive = rago
        .evaluate_fleet_faulted(
            &best.schedule,
            RouterPolicy::LeastOutstanding,
            &mix,
            &trace,
            &scenario(ScaleDriver::Reactive(reactive_policy)),
        )
        .expect("reactive run succeeds");
    let predictive = rago
        .evaluate_fleet_faulted(
            &best.schedule,
            RouterPolicy::LeastOutstanding,
            &mix,
            &trace,
            &scenario(ScaleDriver::Predictive(PredictivePolicy::new(
                plan, warmup_s,
            ))),
        )
        .expect("predictive run succeeds");

    // Step 4: the plot-ready recovery timeline — windowed attainment for
    // both runs on one time axis (paste into any plotting tool).
    println!("\n# t_start_s  reactive_attainment  predictive_attainment");
    for (r, p) in reactive.timeline.iter().zip(&predictive.timeline) {
        let marker = if (r.start_s..r.end_s).contains(&crash_at_s) {
            "  <- crash"
        } else {
            ""
        };
        println!(
            "{:>9.2}  {:>19.3}  {:>21.3}{marker}",
            r.start_s, r.attainment, p.attainment
        );
    }

    for (name, eval) in [("reactive", &reactive), ("predictive", &predictive)] {
        println!(
            "\n{name}: offered attainment {:.3}, chip-hours {:.3}, \
             {} retried, {} shed, {} failed",
            eval.attainment,
            eval.chip_hours(),
            eval.chaos.fault.retried,
            eval.chaos.fault.shed,
            eval.chaos.fault.failed
        );
        for r in &eval.recovery {
            match r.reattainment_s {
                Some(t) => println!(
                    "  recovery from the t={:.0}s crash: back above the SLO floor in {t:.2} s \
                     (goodput dip area {:.3})",
                    r.fault_s, r.dip_area
                ),
                None => println!(
                    "  recovery from the t={:.0}s crash: never re-attained within the run \
                     (dip area {:.3})",
                    r.fault_s, r.dip_area
                ),
            }
        }
    }
    println!(
        "\npredictive vs reactive: attainment {:.3} vs {:.3}, chip-hours {:.3} vs {:.3}",
        predictive.attainment,
        reactive.attainment,
        predictive.chip_hours(),
        reactive.chip_hours()
    );
}
