//! Size a fleet of replicas for a target traffic level under an SLO.
//!
//! The static search picks the best schedule for *one* pipeline; this
//! example answers the deployment question on top of it:
//!
//! 1. search the Case I (hyperscale retrieval) scheduling space and take
//!    the best QPS/chip schedule off the Pareto frontier;
//! 2. show how fleet SLO attainment scales with the replica count at a
//!    fixed offered rate, under least-outstanding routing;
//! 3. `plan_capacity`: binary-search the minimum replica count that meets
//!    the SLO at a target rate;
//! 4. `rank_frontier_by_cost_at_qps`: re-rank the whole frontier by the
//!    total chips each schedule's fleet needs at that rate — the
//!    fleet-level analogue of goodput ranking.
//!
//! ```sh
//! cargo run --release --example fleet_capacity
//! ```

use rago::core::{CapacityOptions, Rago, SearchOptions};
use rago::hardware::ClusterSpec;
use rago::schema::{presets, FleetConfig, RouterPolicy, SequenceProfile, SloTarget};
use rago::workloads::{ArrivalProcess, TraceSpec};

fn main() {
    let schema = presets::case1_hyperscale(presets::LlmSize::B8, 1);
    let rago = Rago::new(schema, ClusterSpec::paper_default());

    // Step 1: the static search (Algorithm 1).
    let frontier = rago
        .optimize(&SearchOptions::fast())
        .expect("the fast grid has feasible schedules");
    let best = frontier
        .max_qps_per_chip()
        .expect("non-empty frontier")
        .clone();
    println!("schedule under test: {}", best.schedule.describe());
    println!(
        "static model: QPS {:.1}, {} XPUs per replica",
        best.performance.qps,
        best.schedule.allocation.total_xpus()
    );

    // Step 2: attainment vs replica count at double the static QPS — a
    // rate one replica cannot sustain. The trace spans a fixed duration so
    // overload shows up as accumulated queueing, not a drained burst.
    let slo = SloTarget::paper_default();
    let profile = SequenceProfile::paper_default().with_decode_tokens(64);
    let rate = 2.0 * best.performance.qps;
    let duration_s = 6.0;
    let trace = TraceSpec {
        num_requests: (rate * duration_s).ceil() as usize,
        profile,
        arrival: ArrivalProcess::Poisson { rate_rps: rate },
        length_jitter: 0.2,
        seed: 17,
    }
    .generate();
    println!(
        "\nfleet scaling at {rate:.1} rps offered ({} requests):",
        trace.requests.len()
    );
    for replicas in 1..=4u32 {
        let fleet = FleetConfig::new(replicas, RouterPolicy::LeastOutstanding);
        let eval = rago
            .evaluate_fleet(&best.schedule, &fleet, &trace, &slo)
            .expect("the schedule is feasible");
        let m = &eval.report.merged.metrics;
        println!(
            "  {replicas} replica(s): attainment {:5.1} %, goodput {:6.1} rps, \
             TTFT p99 {:7.1} ms, imbalance max/mean {:.2}",
            eval.attainment * 100.0,
            eval.goodput_rps,
            m.ttft.p99_s * 1e3,
            eval.report.imbalance.max_over_mean
        );
    }

    // Step 3: the capacity planner finds the smallest count meeting the SLO.
    let options = CapacityOptions {
        max_replicas: 8,
        num_requests: (rate * duration_s).ceil() as usize,
        profile,
        ..CapacityOptions::default()
    };
    let plan = rago
        .plan_capacity(&best.schedule, &slo, rate, &options)
        .expect("the target rate is plannable");
    println!(
        "\nplan_capacity({rate:.1} rps): {} replicas -> {} XPUs + {} retrieval servers \
         (attainment {:.1} %, goodput {:.1} rps, drain tail {:.2} s)",
        plan.replicas,
        plan.total_xpus,
        plan.total_retrieval_servers,
        plan.attainment * 100.0,
        plan.goodput_rps,
        plan.drain_tail_s
    );

    // Step 4: re-rank the frontier by fleet cost at the target rate. The
    // per-chip winner is not always the cheapest fleet: replica granularity
    // can favour a smaller schedule replicated more times.
    println!("\nfrontier re-ranked by total chips to serve {rate:.1} rps:");
    let ranked = rago.rank_frontier_by_cost_at_qps(&frontier, &slo, rate, &options);
    for (point, plan) in ranked.iter().take(5) {
        println!(
            "  {:4} XPUs = {} x {:3} | attainment {:5.1} % | {}",
            plan.total_xpus,
            plan.replicas,
            point.schedule.allocation.total_xpus(),
            plan.attainment * 100.0,
            point.schedule.describe()
        );
    }
    if let Some((cheapest, plan)) = ranked.first() {
        println!(
            "\ncheapest fleet: {} x [{}] at {} total XPUs",
            plan.replicas,
            cheapest.schedule.describe(),
            plan.total_xpus
        );
    }
}
