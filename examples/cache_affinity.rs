//! Exploit popularity-skewed traffic with prefix-KV and retrieval-result
//! caching, and keep each template's KV state on one replica with
//! cache-affinity routing.
//!
//! The walkthrough:
//!
//! 1. search the Case I scheduling space and take the best QPS/chip
//!    schedule off the Pareto frontier;
//! 2. sample a Zipfian content model over a Poisson trace
//!    ([`ContentSpec`]): a dozen hot prompt templates (80 % of each
//!    prefix shared) and a few dozen hot retrieval keys;
//! 3. evaluate the schedule cache-off versus cache-on at the same offered
//!    rate (`evaluate_cached`): hits charge prefill only for the uncached
//!    suffix and skip retrieve + rerank outright;
//! 4. size the fleet for a rate one replica cannot hold cache-less
//!    (`plan_capacity` versus `plan_capacity_cached`) — the
//!    chips-per-goodput answer changes when caching is on;
//! 5. route the peak through a fleet under least-outstanding versus
//!    cache-affinity routing and compare live prefix hit rates.
//!
//! ```sh
//! cargo run --release --example cache_affinity
//! ```
//!
//! [`ContentSpec`]: rago::workloads::ContentSpec

use rago::cache::{CacheConfig, EvictionPolicy, PrefixKvCacheConfig, RetrievalCacheConfig};
use rago::core::{CapacityOptions, Rago, SearchOptions};
use rago::hardware::ClusterSpec;
use rago::schema::{presets, FleetConfig, RouterPolicy, SequenceProfile, SloTarget};
use rago::workloads::{ArrivalProcess, ContentSpec, PopularityModel, TraceSpec};

fn main() {
    let schema = presets::case1_hyperscale(presets::LlmSize::B8, 1);
    let rago = Rago::new(schema, ClusterSpec::paper_default());

    // Step 1: the schedule under test.
    let frontier = rago
        .optimize(&SearchOptions::fast())
        .expect("the fast grid has feasible schedules");
    let best = frontier
        .max_qps_per_chip()
        .expect("non-empty frontier")
        .clone();
    let static_qps = best.performance.qps;
    println!("schedule under test: {}", best.schedule.describe());
    println!("static model: QPS {static_qps:.1}\n");

    // Step 2: popularity-skewed content over a Poisson stream.
    let content = ContentSpec {
        prefixes: PopularityModel::zipf(12, 1.0),
        shared_prefix_fraction: 0.8,
        docs: PopularityModel::zipf(48, 1.0),
        seed: 37,
    };
    let profile = SequenceProfile::paper_default().with_decode_tokens(48);
    let rate = 1.6 * static_qps;
    let trace = content.tag(
        &TraceSpec {
            num_requests: (rate * 8.0) as usize,
            profile,
            arrival: ArrivalProcess::Poisson { rate_rps: rate },
            length_jitter: 0.1,
            seed: 7,
        }
        .generate(),
    );
    let cache = CacheConfig {
        prefix: Some(PrefixKvCacheConfig::new(
            6 * u64::from(profile.prefix_tokens()),
            EvictionPolicy::Lru,
        )),
        retrieval: Some(RetrievalCacheConfig::new(48, EvictionPolicy::Lru)),
    };
    println!(
        "trace: {} requests at {rate:.0} rps, 12 Zipf(1.0) templates, 48 Zipf(1.0) doc keys",
        trace.requests.len()
    );

    // Step 3: the same trace, cache-off vs cache-on.
    let slo = SloTarget::new(1.0, 0.1);
    let off = rago
        .evaluate_dynamic(&best.schedule, &trace, &slo)
        .expect("cache-off evaluation succeeds");
    let on = rago
        .evaluate_cached(&best.schedule, &trace, &slo, &cache)
        .expect("cache-on evaluation succeeds");
    let usage = &on.report.cache;
    println!(
        "\n-- one replica at {:.1}x the static QPS --",
        rate / static_qps
    );
    println!(
        "cache-off: attainment {:5.1} %, goodput {:7.1} rps, mean TTFT {:6.3} s",
        100.0 * off.attainment,
        off.goodput_rps,
        off.report.metrics.ttft.mean_s
    );
    println!(
        "cache-on : attainment {:5.1} %, goodput {:7.1} rps, mean TTFT {:6.3} s",
        100.0 * on.attainment,
        on.goodput_rps,
        on.report.metrics.ttft.mean_s
    );
    println!(
        "           prefix hits {:.1} % ({} tokens saved), retrieval hits {:.1} %",
        100.0 * usage.prefix.hit_rate(),
        usage.prefix.tokens_saved,
        100.0 * usage.retrieval.hit_rate()
    );

    // Step 4: fleet sizing with and without caching.
    let peak = 2.0 * static_qps;
    let options = CapacityOptions {
        max_replicas: 6,
        num_requests: (peak * 6.0) as usize,
        profile,
        ..CapacityOptions::default()
    };
    let plan_off = rago
        .plan_capacity(&best.schedule, &slo, peak, &options)
        .expect("the peak is plannable");
    let plan_on = rago
        .plan_capacity_cached(&best.schedule, &slo, peak, &options, &cache, &content)
        .expect("the cached peak is plannable");
    println!("\n-- capacity plan at {peak:.0} rps --");
    println!(
        "cache-off: {} replicas = {} XPUs (attainment {:.1} %)",
        plan_off.replicas,
        plan_off.total_xpus,
        100.0 * plan_off.attainment
    );
    println!(
        "cache-on : {} replicas = {} XPUs (attainment {:.1} %, prefix hits {:.1} %)",
        plan_on.plan.replicas,
        plan_on.plan.total_xpus,
        100.0 * plan_on.plan.attainment,
        100.0 * plan_on.prefix_hit_rate
    );

    // Step 5: routing the peak — load-aware vs cache-aware, on a trace
    // generated at the same peak rate the capacity plan was sized for.
    let fleet_size = plan_off.replicas.max(2);
    let peak_trace = content.tag(
        &TraceSpec {
            num_requests: (peak * 8.0) as usize,
            profile,
            arrival: ArrivalProcess::Poisson { rate_rps: peak },
            length_jitter: 0.1,
            seed: 8,
        }
        .generate(),
    );
    println!("\n-- routing {fleet_size} replicas at the peak ({peak:.0} rps) --");
    for router in [
        RouterPolicy::LeastOutstanding,
        RouterPolicy::PrefixHash,
        RouterPolicy::CacheAffinity,
    ] {
        let eval = rago
            .evaluate_fleet_cached(
                &best.schedule,
                &FleetConfig::new(fleet_size, router),
                &peak_trace,
                &slo,
                &cache,
            )
            .expect("fleet evaluation succeeds");
        println!(
            "{:>20}: prefix hits {:5.1} %, attainment {:5.1} %, goodput {:7.1} rps",
            router.to_string(),
            100.0 * eval.report.merged.cache.prefix.hit_rate(),
            100.0 * eval.attainment,
            eval.goodput_rps
        );
    }
    println!("\ncache-affinity keeps each template's KV on one replica, so a fleet");
    println!("pays one cold miss per template instead of one per template per replica.");
}
