//! Case I walk-through: hyperscale retrieval bottleneck analysis.
//!
//! Reproduces the §5.1 characterization on a small scale: for several
//! generative-LLM sizes and query counts, print where the time × resource
//! budget goes (retrieval vs prefix vs decode) and how RAG compares with an
//! LLM-only system serving the same questions.
//!
//! Run with: `cargo run --release --example hyperscale_retrieval`

use rago::core::{breakdown, BaselineSystem, StageProfiler};
use rago::hardware::ClusterSpec;
use rago::schema::presets::{self, LlmSize};
use rago::schema::Stage;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = ClusterSpec::paper_default();

    println!("== time x resource breakdown (Case I) ==");
    println!(
        "{:<10} {:>8} {:>12} {:>10} {:>10}",
        "LLM", "queries", "retrieval%", "prefix%", "decode%"
    );
    for llm in [LlmSize::B1, LlmSize::B8, LlmSize::B70, LlmSize::B405] {
        for queries in [1u32, 4] {
            let schema = presets::case1_hyperscale(llm, queries);
            let profiler = StageProfiler::new(schema, cluster.clone());
            let shares = breakdown::stage_breakdown(&profiler, &[8, 16, 32, 64], &[1, 16, 64])?;
            println!(
                "{:<10} {:>8} {:>11.1}% {:>9.1}% {:>9.1}%",
                llm.to_string(),
                queries,
                breakdown::share_of(&shares, Stage::Retrieval) * 100.0,
                breakdown::share_of(&shares, Stage::Prefix) * 100.0,
                breakdown::share_of(&shares, Stage::Decode) * 100.0,
            );
        }
    }

    println!("\n== RAG vs LLM-only (max QPS/chip on 32 XPUs) ==");
    for (name, schema) in [
        ("RAG 8B", presets::case1_hyperscale(LlmSize::B8, 1)),
        ("LLM-only 70B", presets::llm_only(LlmSize::B70)),
    ] {
        let baseline = BaselineSystem::new(schema, cluster.clone(), 32);
        let frontier = baseline.optimize(&[1, 8, 32], &[64, 256])?;
        let best = frontier.max_qps_per_chip().expect("non-empty frontier");
        println!(
            "{:<14} QPS/chip = {:.3}, TTFT = {:.1} ms",
            name,
            best.performance.qps_per_chip,
            best.performance.ttft_s * 1e3
        );
    }
    Ok(())
}
