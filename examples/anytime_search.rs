//! Anytime stochastic schedule search on a grid too large to enumerate
//! comfortably.
//!
//! Builds the paper's Case-IV workload (query rewriter + reranker around an
//! 8B generative LLM — four pre-decode stages, so placements multiply) on a
//! ~200k-candidate grid, then compares:
//!
//! 1. the exhaustive search (exact frontier, pays for every candidate), and
//! 2. `SearchMode::Stochastic` — seeded sampling → beam → coordinate
//!    descent → worker exchange — showing how the anytime timeline closes
//!    in on the exhaustive hypervolume after evaluating a fraction of the
//!    grid.
//!
//! Run with: `cargo run --release --example anytime_search`

use rago::core::{Rago, SearchOptions, StochasticConfig};
use rago::hardware::ClusterSpec;
use rago::schema::presets::{self, LlmSize};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = presets::case4_rewriter_reranker(LlmSize::B8);
    let cluster = ClusterSpec::paper_default();
    let options = SearchOptions {
        xpu_steps: vec![1, 2, 4, 8, 16, 32, 64],
        server_steps: vec![32, 64],
        predecode_batch_steps: vec![1, 8, 32, 128],
        decode_batch_steps: vec![64, 512],
        iterative_batch_steps: vec![8],
        placements: None,
    };

    let rago = Rago::new(schema, cluster);
    let space = rago.schedule_space(&options);
    println!("candidate space: {} schedules", space.size());

    // Ground truth: the exhaustive frontier (streaming, parallel, memoized —
    // still visits every candidate).
    let start = std::time::Instant::now();
    let exhaustive = rago.optimize(&options)?;
    let exhaustive_s = start.elapsed().as_secs_f64();
    let ttft_ref = 2.0
        * exhaustive
            .points
            .iter()
            .map(|p| p.performance.ttft_s)
            .fold(0.0f64, f64::max);
    let exhaustive_hv = exhaustive.hypervolume(ttft_ref, 0.0);
    println!(
        "exhaustive: {} evaluated, {} on the frontier, {:.3}s",
        exhaustive.evaluated_schedules,
        exhaustive.len(),
        exhaustive_s
    );

    // Anytime: a seeded stochastic run on a small fraction of the budget.
    // Same seed + budget => bit-identical result, for any worker count.
    let config = StochasticConfig::default()
        .with_seed(0x5EED)
        .with_budget(8_192);
    let report = rago.optimize_stochastic(&options, &config)?;
    println!(
        "\nstochastic: {} evaluations ({:.2}% of the space), {} rounds, {:.3}s",
        report.evaluations,
        100.0 * report.evaluations as f64 / space.size() as f64,
        report.rounds,
        report.elapsed_s
    );
    println!("\n  anytime timeline (hypervolume vs the exhaustive frontier):");
    println!(
        "{:>14} {:>12} {:>12}",
        "evaluations", "HV fraction", "frontier"
    );
    for sample in report
        .timeline
        .iter()
        .step_by(report.timeline.len().div_ceil(8).max(1))
        .chain(report.timeline.last())
    {
        println!(
            "{:>14} {:>12.4} {:>12}",
            sample.evaluations,
            sample.frontier.hypervolume(ttft_ref, 0.0) / exhaustive_hv,
            sample.frontier.len()
        );
    }

    let best = report
        .frontier
        .max_qps_per_chip()
        .expect("non-empty frontier");
    println!(
        "\nbest QPS/chip found: {:.3} ({})",
        best.performance.qps_per_chip,
        best.schedule.describe()
    );
    Ok(())
}
