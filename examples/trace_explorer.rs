//! Trace a crash at the traffic peak and open the result in Perfetto.
//!
//! The walkthrough:
//!
//! 1. build a two-stage RAG pipeline and one diurnal traffic cycle, with
//!    replica 0 crashing **right at the peak** (cold restart after an
//!    eighth of a cycle);
//! 2. serve the trace through the chaos engine behind a reactive
//!    autoscaler, with full telemetry on: per-request spans, 250 ms load
//!    gauges, router/admission/scaling/fault decisions with reasons, and
//!    the simulator's own profile counters;
//! 3. write `rago_trace.json` (Chrome-trace format — load it at
//!    <https://ui.perfetto.dev> or `chrome://tracing`) and
//!    `rago_trace.jsonl` (one event per line, for grep/jq), both
//!    byte-deterministic for the fixed seed;
//! 4. print the trace summary: state-time totals, per-class queueing,
//!    and the decision ledger around the crash.
//!
//! ```sh
//! cargo run --release --example trace_explorer
//! ```

use rago::schema::{RouterPolicy, SequenceProfile};
use rago::serving_sim::autoscaler::AutoscalerPolicy;
use rago::serving_sim::engine::{DecodeSpec, EngineRequest, LatencyTable, PipelineSpec, StageSpec};
use rago::serving_sim::faults::{ChaosEngine, FaultEvent, FaultSchedule, ScaleDriver};
use rago::telemetry::{export_chrome_trace, export_jsonl, Lane, TelemetryConfig, TelemetryReport};
use rago::workloads::{ArrivalProcess, TraceSpec};

fn main() -> std::io::Result<()> {
    // Step 1: pipeline, diurnal cycle, crash at the sinusoid's peak.
    let spec = PipelineSpec::new(
        vec![
            StageSpec::new(
                "retrieval",
                0,
                16,
                LatencyTable::from_fn(16, |b| 0.02 + 1e-4 * f64::from(b)),
            ),
            StageSpec::new(
                "prefix",
                1,
                8,
                LatencyTable::from_fn(8, |b| 0.01 * f64::from(b)),
            ),
        ],
        DecodeSpec::new(
            32,
            LatencyTable::from_fn(32, |b| 2e-3 + 1e-5 * f64::from(b)),
        ),
    );
    let (base_rps, peak_rps, period_s) = (15.0, 60.0, 24.0);
    let trace = TraceSpec {
        num_requests: (0.5 * (base_rps + peak_rps) * period_s) as usize,
        profile: SequenceProfile::paper_default().with_decode_tokens(32),
        arrival: ArrivalProcess::Diurnal {
            base_rps,
            peak_rps,
            period_s,
        },
        length_jitter: 0.2,
        seed: 41,
    }
    .generate();
    let crash_at_s = period_s / 2.0;
    let faults = FaultSchedule::new(vec![FaultEvent::Crash {
        replica: 0,
        at_s: crash_at_s,
        restart_delay_s: period_s / 8.0,
    }]);
    println!(
        "diurnal trace: {} requests over {period_s:.0} s; replica 0 crashes at t = {crash_at_s:.0} s",
        trace.requests.len()
    );

    // Step 2: the traced run. `TelemetryConfig::full` turns every lane
    // on; the report is bit-identical to the untraced run — the recorder
    // only observes.
    let policy = AutoscalerPolicy::new(1, 4)
        .with_evaluation_interval(0.25)
        .with_scale_out_queue_depth(2.0)
        .with_scale_in_outstanding(10.0)
        .with_cooldown(1.0)
        .with_warmup(0.5);
    let engine = ChaosEngine::new(
        spec,
        RouterPolicy::LeastOutstanding,
        ScaleDriver::Reactive(policy),
    )
    .with_faults(faults)
    .with_telemetry(TelemetryConfig::full(0.25));
    let requests: Vec<EngineRequest> = trace.requests.iter().map(EngineRequest::from).collect();
    let (report, rec) = engine.run_telemetry(requests);
    println!(
        "served {} requests across {} scaling events ({} trace events captured)",
        report.fleet.merged.metrics.requests,
        report.events.len(),
        rec.len(),
    );

    // Step 3: the exports.
    std::fs::write("rago_trace.json", export_chrome_trace(rec.events()))?;
    std::fs::write("rago_trace.jsonl", export_jsonl(rec.events()))?;
    println!("wrote rago_trace.json (open at https://ui.perfetto.dev) and rago_trace.jsonl");

    // Step 4: the summary, plus the decision ledger around the crash —
    // what the router, autoscaler, and fault injector decided and why.
    println!("\n{}", TelemetryReport::from_events(rec.events()).render());
    let mut events = rec.into_events();
    rago::telemetry::sort_events(&mut events);
    println!("non-routing decisions within 4 s of the crash:");
    for ev in &events {
        if ev.lane == Lane::Decision
            && ev.name != "route.pick"
            && (ev.time_s - crash_at_s).abs() <= 4.0
        {
            let detail = if ev.detail.is_empty() {
                String::new()
            } else {
                format!("  ({})", ev.detail)
            };
            println!(
                "  t={:8.3}s  track {:>2}  {}{}",
                ev.time_s, ev.track, ev.name, detail
            );
        }
    }
    Ok(())
}
