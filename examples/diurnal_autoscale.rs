//! Serve a diurnal, two-tenant trace with a reactive autoscaler and
//! compare it against static peak provisioning.
//!
//! The walkthrough:
//!
//! 1. search the Case I scheduling space and take the best QPS/chip
//!    schedule off the Pareto frontier;
//! 2. build a two-tenant [`WorkloadMix`] (interactive chat with a tight
//!    SLO, long-form reports with a loose one) and sample one diurnal
//!    cycle of tagged traffic from it;
//! 3. `plan_capacity_profile`: derive the minimum replica *schedule* from
//!    a piecewise approximation of the diurnal rate — the provisioning
//!    lower bound;
//! 4. run the trace through a **static peak-sized fleet** and through the
//!    **autoscaled fleet** (`evaluate_fleet_timevarying` with an
//!    [`AutoscalerPolicy`]), and compare per-tenant SLO attainment and
//!    chip-hours.
//!
//! ```sh
//! cargo run --release --example diurnal_autoscale
//! ```
//!
//! [`WorkloadMix`]: rago::workloads::WorkloadMix
//! [`AutoscalerPolicy`]: rago::serving_sim::autoscaler::AutoscalerPolicy

use rago::core::{CapacityOptions, Rago, SearchOptions};
use rago::hardware::ClusterSpec;
use rago::schema::{presets, FleetConfig, RouterPolicy, SequenceProfile, SloTarget};
use rago::serving_sim::autoscaler::AutoscalerPolicy;
use rago::workloads::{ArrivalProcess, MixTraceSpec, RateSegment, RequestClass, WorkloadMix};

fn main() {
    let schema = presets::case1_hyperscale(presets::LlmSize::B8, 1);
    let rago = Rago::new(schema, ClusterSpec::paper_default());

    // Step 1: the schedule under test.
    let frontier = rago
        .optimize(&SearchOptions::fast())
        .expect("the fast grid has feasible schedules");
    let best = frontier
        .max_qps_per_chip()
        .expect("non-empty frontier")
        .clone();
    let static_qps = best.performance.qps;
    println!("schedule under test: {}", best.schedule.describe());
    println!(
        "static model: QPS {static_qps:.1}, {} XPUs per replica",
        best.schedule.allocation.total_xpus()
    );

    // Step 2: two tenants sharing the fleet, one diurnal cycle of traffic.
    let mix = WorkloadMix::new(vec![
        RequestClass::new(
            "chat",
            3.0,
            SequenceProfile::paper_default().with_decode_tokens(32),
            0.1,
            SloTarget::new(2.0, 0.05),
        ),
        RequestClass::new(
            "report",
            1.0,
            SequenceProfile::paper_default().with_decode_tokens(128),
            0.1,
            SloTarget::new(10.0, 0.2),
        ),
    ]);
    let (base_rps, peak_rps, period_s) = (0.3 * static_qps, 2.2 * static_qps, 24.0);
    let trace = MixTraceSpec {
        num_requests: (0.5 * (base_rps + peak_rps) * period_s).ceil() as usize,
        mix: mix.clone(),
        arrival: ArrivalProcess::Diurnal {
            base_rps,
            peak_rps,
            period_s,
        },
        seed: 29,
    }
    .generate();
    println!(
        "\ndiurnal trace: {} requests, trough {base_rps:.0} rps -> peak {peak_rps:.0} rps \
         over {period_s:.0} s",
        trace.requests.len()
    );

    // Step 3: the provisioning lower bound from the rate profile — a
    // piecewise-constant approximation of the sinusoid, each segment sized
    // independently (and cross-checked against static planning by
    // construction).
    let slo = mix.classes[0].slo;
    let capacity = CapacityOptions {
        max_replicas: 6,
        num_requests: (peak_rps * 4.0).ceil() as usize,
        profile: SequenceProfile::paper_default().with_decode_tokens(48),
        ..CapacityOptions::default()
    };
    let quarter = period_s / 4.0;
    let mid_rps = 0.5 * (base_rps + peak_rps);
    let profile = [
        RateSegment::new(quarter, base_rps),
        RateSegment::new(quarter, mid_rps),
        RateSegment::new(quarter, peak_rps),
        RateSegment::new(quarter, mid_rps),
    ];
    let planned = rago
        .plan_capacity_profile(&best.schedule, &slo, &profile, &capacity)
        .expect("every segment is plannable");
    println!("\ncapacity profile (piecewise plan):");
    for interval in &planned.intervals {
        println!(
            "  t = {:>5.1} s  rate {:>6.1} rps  -> {} replica(s), attainment {:.3}",
            interval.start_s, interval.rate_rps, interval.replicas, interval.attainment
        );
    }
    println!(
        "  peak {} replicas; following the profile saves {:.0}% replica-seconds \
         over static peak provisioning",
        planned.peak_replicas,
        planned.savings_fraction * 100.0
    );

    // Step 4: static peak fleet vs the reactive autoscaler on the same
    // trace.
    let static_replicas = planned.peak_replicas;
    let fleet = FleetConfig::new(static_replicas, RouterPolicy::LeastOutstanding);
    let fixed = rago
        .evaluate_fleet_timevarying(&best.schedule, &fleet, &mix, &trace, None)
        .expect("static evaluation succeeds");
    let policy = AutoscalerPolicy::new(1, static_replicas)
        .with_evaluation_interval(0.25)
        .with_scale_out_queue_depth(2.0)
        .with_scale_in_outstanding(10.0)
        .with_cooldown(1.0)
        .with_warmup(0.5);
    let elastic = rago
        .evaluate_fleet_timevarying(&best.schedule, &fleet, &mix, &trace, Some(&policy))
        .expect("autoscaled evaluation succeeds");
    let scaling = elastic.scaling.as_ref().expect("autoscaled run");

    println!("\nstatic fleet ({static_replicas} replicas):");
    for c in &fixed.per_class {
        println!(
            "  {:>7}: attainment {:.3}, goodput {:>6.1} rps (meets SLO: {})",
            c.name, c.attainment, c.goodput_rps, c.meets_slo
        );
    }
    println!("  chip-hours: {:.3}", fixed.chip_hours());

    println!(
        "\nautoscaled fleet (1..={static_replicas} replicas, {} scaling events):",
        scaling.events.len()
    );
    for c in &elastic.per_class {
        println!(
            "  {:>7}: attainment {:.3}, goodput {:>6.1} rps (meets SLO: {})",
            c.name, c.attainment, c.goodput_rps, c.meets_slo
        );
    }
    println!(
        "  chip-hours: {:.3} (mean {:.2} replicas provisioned, peak {})",
        elastic.chip_hours(),
        scaling.mean_provisioned,
        scaling.peak_provisioned
    );
    println!(
        "\nautoscaler vs static: attainment {:.3} vs {:.3}, chip-hours saved {:.0}%",
        elastic.attainment,
        fixed.attainment,
        (1.0 - elastic.chip_seconds / fixed.chip_seconds) * 100.0
    );
    println!(
        "tenant goodput ranking: {}",
        elastic
            .tenants_by_goodput()
            .iter()
            .map(|c| c.name.clone())
            .collect::<Vec<_>>()
            .join(" > ")
    );
}
