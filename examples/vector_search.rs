//! Vector-search substrate demo: build, quantize, index, search, calibrate.
//!
//! Exercises the `rago-vectordb` crate end to end — exact kNN, product
//! quantization, and the IVF-PQ index — and shows how its measured PQ-scan
//! throughput calibrates the retrieval cost model, mirroring how the paper
//! calibrates its ScaNN model on real hardware.
//!
//! Run with: `cargo run --release --example vector_search`

use rago::hardware::CpuServerSpec;
use rago::retrieval_sim::{calibrate_scan_throughput, RetrievalSimulator};
use rago::schema::RetrievalConfig;
use rago::vectordb::{recall_at_k, FlatIndex, IvfPqIndex, IvfPqParams, SyntheticDataset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build a small clustered corpus and hold out queries from it.
    let dim = 96;
    let corpus = SyntheticDataset::clustered(20_000, dim, 64, 7);
    let queries: Vec<Vec<f32>> = corpus.vectors.iter().step_by(1_000).cloned().collect();

    let flat = FlatIndex::build(dim, corpus.vectors.clone())?;
    let exact: Vec<_> = queries.iter().map(|q| flat.search(q, 10)).collect();

    let params = IvfPqParams {
        num_lists: 128,
        num_subspaces: 12,
        bits_per_code: 8,
        training_sample: 4_000,
    };
    let ivf = IvfPqIndex::train(dim, &corpus.vectors, params, 3)?;

    println!("== IVF-PQ recall/cost trade-off (20K vectors, 96-d) ==");
    println!(
        "{:>8} {:>14} {:>10}",
        "nprobe", "scan fraction", "recall@10"
    );
    for nprobe in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let approx: Vec<_> = queries.iter().map(|q| ivf.search(q, 10, nprobe)).collect();
        let recall = recall_at_k(&exact, &approx, 10);
        println!(
            "{:>8} {:>13.1}% {:>10.3}",
            nprobe,
            ivf.scan_fraction(nprobe) * 100.0,
            recall
        );
    }

    // Calibrate the retrieval cost model from this machine's PQ scanner.
    let report = calibrate_scan_throughput(4_096, 0.2);
    println!(
        "\nmeasured single-thread PQ scan throughput: {:.2} GB/s",
        report.scan_throughput_per_core_gbps
    );
    let calibrated_cpu = report.apply_to(&CpuServerSpec::epyc_milan());
    let sim = RetrievalSimulator::new(calibrated_cpu);
    let cost = sim.retrieval_cost(&RetrievalConfig::hyperscale_64b(), 16, 32)?;
    println!(
        "with that calibration, a 16-query batch over the paper's 64B-vector corpus \
         (32 servers) takes {:.1} ms and sustains {:.0} queries/s",
        cost.latency_s * 1e3,
        cost.throughput_qps
    );
    Ok(())
}
