//! Case III walk-through: multi-hop ("agentic") generation with iterative
//! retrievals.
//!
//! Explores how the batching of decoder-initiated retrievals interacts with
//! the decode batch size (§5.3, Figures 9 and 10): for a 70B generator that
//! retrieves four times per answer, sweep both batch sizes and report the
//! achieved TPOT and the slowdown caused purely by waiting for retrieval
//! batches to fill.
//!
//! Run with: `cargo run --release --example iterative_agent`

use rago::accel_sim::{AcceleratorGroup, InferenceSimulator};
use rago::hardware::{ClusterSpec, XpuSpec};
use rago::retrieval_sim::RetrievalSimulator;
use rago::schema::presets::{self, LlmSize};
use rago::serving_sim::iterative::{IterativeDecodeParams, IterativeDecodeSim};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = ClusterSpec::paper_default();
    let schema = presets::case3_iterative(LlmSize::B70, 4);
    let retrieval_cfg = schema.retrieval.as_ref().expect("case 3 retrieves");

    // Per-step decode cost and per-batch retrieval+prefix cost from the
    // analytical models.
    let sim = InferenceSimulator::new();
    let decode_group = AcceleratorGroup::new(XpuSpec::default(), 16);
    let prefix_group = AcceleratorGroup::new(XpuSpec::default(), 16);
    let retrieval = RetrievalSimulator::new(cluster.cpu.clone());

    println!("== achieved worst-case TPOT for 4 retrievals/sequence ==");
    println!(
        "{:>14} {:>12} {:>12} {:>12}",
        "decode batch", "iter batch", "TPOT (ms)", "slowdown"
    );
    for decode_batch in [16u32, 64, 256] {
        let decode = sim.best_decode_cost(
            &schema.generative_llm,
            schema.main_prefix_tokens(),
            schema.sequence.decode_tokens,
            decode_batch,
            &decode_group,
        )?;
        for iter_batch in [1u32, 4, 16, 64] {
            let retrieval_cost = retrieval.retrieval_cost(retrieval_cfg, iter_batch, 32)?;
            let reprefix = sim.best_prefix_cost(
                &schema.generative_llm,
                schema.main_prefix_tokens(),
                iter_batch,
                &prefix_group,
            )?;
            let result = IterativeDecodeSim::new(IterativeDecodeParams {
                decode_batch,
                iterative_batch: iter_batch,
                decode_len: schema.sequence.decode_tokens,
                retrievals_per_sequence: 3, // one retrieval precedes decoding
                step_latency_s: decode.step_latency_s,
                retrieval_prefix_latency_s: retrieval_cost.latency_s + reprefix.latency_s,
                seed: 11,
            })
            .run();
            println!(
                "{:>14} {:>12} {:>12.1} {:>11.2}x",
                decode_batch,
                iter_batch,
                result.tpot_worst_s * 1e3,
                result.normalized_decode_latency
            );
        }
    }
    println!("\nlower iterative batches keep decoding busy at small decode batches;");
    println!("large decode batches amortize the wait and prefer larger retrieval batches.");
    Ok(())
}
