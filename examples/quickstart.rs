//! Quickstart: optimize the serving schedule of a basic RAG workload.
//!
//! Builds the paper's Case-I workload (hyperscale retrieval in front of an
//! 8B generative LLM), runs the RAGO optimizer against the default 128-XPU
//! cluster, and prints the Pareto frontier of TTFT versus QPS/chip together
//! with the schedules that achieve its extremes.
//!
//! Run with: `cargo run --release --example quickstart`

use rago::core::{Rago, SearchOptions};
use rago::hardware::ClusterSpec;
use rago::schema::presets::{self, LlmSize};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = presets::case1_hyperscale(LlmSize::B8, 1);
    let cluster = ClusterSpec::paper_default();
    println!(
        "workload: {} | cluster: {} XPUs ({}), {} CPU servers",
        schema.name,
        cluster.total_xpus(),
        cluster.xpu.name,
        cluster.num_servers
    );

    let rago = Rago::new(schema, cluster);
    let frontier = rago.optimize(&SearchOptions::fast())?;

    println!(
        "\nevaluated {} schedules, {} on the Pareto frontier:",
        frontier.evaluated_schedules,
        frontier.len()
    );
    println!(
        "{:>10} {:>12} {:>10} {:>8}  schedule",
        "TTFT (ms)", "QPS/chip", "QPS", "XPUs"
    );
    for point in frontier.iter() {
        println!(
            "{:>10.1} {:>12.3} {:>10.1} {:>8}  {}",
            point.performance.ttft_s * 1e3,
            point.performance.qps_per_chip,
            point.performance.qps,
            point.performance.total_xpus,
            point.schedule.describe()
        );
    }

    let latency_opt = frontier.min_ttft().expect("non-empty frontier");
    let throughput_opt = frontier.max_qps_per_chip().expect("non-empty frontier");
    println!(
        "\nlatency-optimal schedule:    {}",
        latency_opt.schedule.describe()
    );
    println!(
        "throughput-optimal schedule: {}",
        throughput_opt.schedule.describe()
    );
    Ok(())
}
